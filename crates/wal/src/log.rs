//! The segmented write-ahead log: append, group sync, rotation, stitched
//! scan and watermark-driven retention.
//!
//! The log is a **directory** of numbered segment files (`wal.000001`,
//! `wal.000002`, …) sharing one monotone LSN space. Every segment starts
//! with a [`SegmentHeaderRecord`] — a normal CRC-framed entry consuming
//! one LSN — naming its sequence number, base LSN and the checkpoint
//! epoch current at creation. The log stores opaque payloads above that
//! — the commit-record encoding lives in `graphsi-core` — framed and
//! checksummed per entry.
//!
//! A transaction is durable once its entry has been appended **and** the
//! covering file has been synced; the commit pipeline batches syncs
//! (group commit) by calling [`SegmentedWal::append`] for every
//! concurrent committer and a single [`SegmentedWal::sync_appended`]
//! afterwards. The group-commit leader also drives **rotation**
//! ([`SegmentedWal::rotate_if_needed`]): once the active segment passes
//! its size threshold a new segment is created and its header made
//! durable off the append lock, so no commit ever blocks on a rotation
//! fsync. Old segments are reclaimed by the checkpointer through the
//! retention watermark ([`SegmentedWal::release_upto`]): a segment whose
//! entries are all checkpointed and durable is unlinked.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::error::{Result, WalError};
use crate::record::{payload_kind, LogEntry, PayloadKind, SegmentHeaderRecord};

/// When the log file is synced to stable storage.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SyncPolicy {
    /// Sync after every append (safest, slowest).
    #[default]
    Always,
    /// Sync only when [`SegmentedWal::sync`] is called explicitly (group
    /// commit) or at checkpoints. A crash may lose the most recent
    /// commits but never corrupts the log.
    OnDemand,
}

/// Result of scanning the log from disk.
#[derive(Clone, Debug, Default)]
pub struct WalScan {
    /// The valid entries, in append order, stitched across segments
    /// (segment headers included — consumers classify by payload kind).
    pub entries: Vec<LogEntry>,
    /// `true` if the scan stopped early because of a torn or corrupt tail.
    pub truncated_tail: bool,
    /// Number of bytes of valid log data (across all scanned segments).
    pub valid_bytes: u64,
    /// Number of segment files the scan stitched together.
    pub segments: usize,
}

/// Returns the file name of segment `seq`.
fn segment_file_name(seq: u64) -> String {
    format!("wal.{seq:06}")
}

/// Parses a segment sequence number out of a `wal.NNNNNN` file name.
fn parse_segment_file_name(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("wal.")?;
    if digits.len() < 6 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Makes a directory entry change (segment created or unlinked) durable.
fn sync_dir(dir: &Path) -> Result<()> {
    let f = File::open(dir).map_err(|e| WalError::io("opening WAL directory for sync", e))?;
    f.sync_all()
        .map_err(|e| WalError::io("syncing WAL directory", e))
}

/// The segment currently receiving appends.
struct ActiveSegment {
    seq: u64,
    path: PathBuf,
    file: File,
    first_lsn: u64,
    /// Valid appended bytes (the append offset).
    bytes: u64,
    unsynced: bool,
}

/// A segment sealed by rotation: append-complete, delete-eligible once
/// the retention watermark passes its last LSN.
struct SealedSegment {
    seq: u64,
    path: PathBuf,
    /// Kept open while the segment still has unsynced data (a group sync
    /// that spans a rotation must fsync it); closed once durable.
    file: Option<File>,
    first_lsn: u64,
    last_lsn: u64,
    bytes: u64,
    unsynced: bool,
}

struct WalInner {
    active: ActiveSegment,
    /// Sealed segments, oldest first (contiguous sequence numbers).
    sealed: Vec<SealedSegment>,
    next_lsn: u64,
    /// Highest LSN known to have reached stable storage.
    synced_lsn: u64,
}

/// One scanned segment file, before stitching.
struct SegmentScan {
    entries: Vec<LogEntry>,
    valid_bytes: u64,
    /// `false` if the file ended in a torn or corrupt tail.
    clean: bool,
}

/// The segmented write-ahead log.
pub struct SegmentedWal {
    dir: PathBuf,
    sync_policy: SyncPolicy,
    /// Rotation threshold: once the active segment reaches this many
    /// bytes, [`SegmentedWal::rotate_if_needed`] seals it.
    segment_bytes: u64,
    inner: Mutex<WalInner>,
    /// Crash-testing hook: number of upcoming sync operations that fail
    /// with an injected I/O error instead of reaching the kernel. See
    /// [`SegmentedWal::fail_syncs`].
    injected_sync_failures: AtomicU32,
    /// Current checkpoint epoch, stamped into new segment headers.
    epoch: AtomicU64,
    /// Segment files created over this handle's lifetime (including the
    /// one open created or adopted).
    segments_created: AtomicU64,
    /// Segment files deleted by [`SegmentedWal::release_upto`].
    segments_deleted: AtomicU64,
}

impl SegmentedWal {
    /// Opens (creating if necessary) the segmented log in directory `dir`.
    ///
    /// Existing segments are stitched in sequence order. The scan stops
    /// at the first torn or corrupt point; everything behind it was never
    /// durable (the durable watermark cannot pass an unsynced region), so
    /// the torn segment is truncated there and any later segments are
    /// removed — in the common crash this is simply a torn tail in the
    /// last segment, or a rotated segment whose header never reached the
    /// disk. New appends then start from a clean boundary.
    pub fn open(
        dir: impl AsRef<Path>,
        sync_policy: SyncPolicy,
        segment_bytes: u64,
    ) -> Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir).map_err(|e| WalError::io("creating WAL directory", e))?;
        let mut seqs = Self::list_segments(&dir)?;
        seqs.sort_unstable();
        if let Some(gap) = seqs.windows(2).find(|w| w[1] != w[0] + 1) {
            return Err(WalError::Corrupt {
                offset: 0,
                reason: format!("segment sequence gap: {} is followed by {}", gap[0], gap[1]),
            });
        }

        // Stitch: stop at the first anomaly, truncate there, drop later
        // segments.
        let mut kept: Vec<(u64, PathBuf, u64, u64, u64)> = Vec::new(); // seq, path, first, last, bytes
        let mut max_epoch = 0u64;
        let mut next_lsn = 1u64;
        let mut removed_later = false;
        for (i, &seq) in seqs.iter().enumerate() {
            let path = dir.join(segment_file_name(seq));
            if removed_later {
                std::fs::remove_file(&path)
                    .map_err(|e| WalError::io("removing dead WAL segment", e))?;
                continue;
            }
            let scan = Self::scan_one(&path)?;
            let header_ok = match scan.entries.first() {
                Some(first) => match SegmentHeaderRecord::decode(&first.payload, 0) {
                    Ok(h) => {
                        if h.segment_seq != seq || h.base_lsn != first.lsn {
                            return Err(WalError::Corrupt {
                                offset: 0,
                                reason: format!(
                                    "segment {seq} header names segment {} base {}",
                                    h.segment_seq, h.base_lsn
                                ),
                            });
                        }
                        if i > 0 && !kept.is_empty() && first.lsn != next_lsn {
                            return Err(WalError::Corrupt {
                                offset: 0,
                                reason: format!(
                                    "segment {seq} starts at LSN {} but {} was expected",
                                    first.lsn, next_lsn
                                ),
                            });
                        }
                        max_epoch = max_epoch.max(h.epoch);
                        true
                    }
                    // A CRC-valid first entry that is not a header: the
                    // rotation never completed (torn header region).
                    Err(_) => false,
                },
                None => false,
            };
            if !header_ok {
                // Headerless segment: the crash hit between segment
                // creation and the header reaching disk. Nothing in it
                // was durable; drop the file and everything after it.
                std::fs::remove_file(&path)
                    .map_err(|e| WalError::io("removing headerless WAL segment", e))?;
                removed_later = true;
                continue;
            }
            if let Some(last) = scan.entries.last() {
                next_lsn = last.lsn + 1;
            }
            let first_lsn = scan.entries[0].lsn;
            let last_lsn = scan.entries[scan.entries.len() - 1].lsn;
            if !scan.clean {
                // Torn tail: truncate and drop any later segments (their
                // entries were appended after the tear, hence never
                // durable either).
                let f = OpenOptions::new()
                    .write(true)
                    .open(&path)
                    .map_err(|source| WalError::OpenFailed {
                        path: path.clone(),
                        source,
                    })?;
                f.set_len(scan.valid_bytes)
                    .map_err(|e| WalError::io("truncating torn WAL tail", e))?;
                removed_later = true;
            }
            kept.push((seq, path, first_lsn, last_lsn, scan.valid_bytes));
        }
        if removed_later {
            sync_dir(&dir)?;
        }

        let created = AtomicU64::new(0);
        let (active, sealed) = match kept.pop() {
            Some((seq, path, first_lsn, _last, bytes)) => {
                let file = OpenOptions::new()
                    .read(true)
                    .write(true)
                    .open(&path)
                    .map_err(|source| WalError::OpenFailed {
                        path: path.clone(),
                        source,
                    })?;
                let sealed = kept
                    .into_iter()
                    .map(|(seq, path, first_lsn, last_lsn, bytes)| SealedSegment {
                        seq,
                        path,
                        file: None,
                        first_lsn,
                        last_lsn,
                        bytes,
                        unsynced: false,
                    })
                    .collect();
                (
                    ActiveSegment {
                        seq,
                        path,
                        file,
                        first_lsn,
                        bytes,
                        unsynced: false,
                    },
                    sealed,
                )
            }
            None => {
                // Fresh log: create segment 1 whose header takes LSN 1.
                let (active, lsn) = Self::create_segment(&dir, 1, next_lsn.max(1), 0)?;
                created.fetch_add(1, Ordering::Relaxed);
                next_lsn = lsn + 1;
                (active, Vec::new())
            }
        };

        Ok(SegmentedWal {
            dir,
            sync_policy,
            segment_bytes: segment_bytes.max(1),
            // Lock-order rank: see the README's lock-rank map. Ranked
            // above the commit pipeline's batcher — the group leader
            // appends its range-abort record while holding the batcher.
            inner: Mutex::with_rank(
                WalInner {
                    active,
                    sealed,
                    next_lsn,
                    synced_lsn: next_lsn - 1,
                },
                2650,
                "wal.inner",
            ),
            injected_sync_failures: AtomicU32::new(0),
            epoch: AtomicU64::new(max_epoch),
            segments_created: created,
            segments_deleted: AtomicU64::new(0),
        })
    }

    /// Lists the segment sequence numbers present in `dir`.
    fn list_segments(dir: &Path) -> Result<Vec<u64>> {
        let mut seqs = Vec::new();
        let entries =
            std::fs::read_dir(dir).map_err(|e| WalError::io("listing WAL directory", e))?;
        for entry in entries {
            let entry = entry.map_err(|e| WalError::io("listing WAL directory", e))?;
            if let Some(seq) = entry.file_name().to_str().and_then(parse_segment_file_name) {
                seqs.push(seq);
            }
        }
        Ok(seqs)
    }

    /// Creates segment file `seq` with a durable header whose LSN is
    /// `lsn`, returning the active-segment state and the header LSN.
    fn create_segment(dir: &Path, seq: u64, lsn: u64, epoch: u64) -> Result<(ActiveSegment, u64)> {
        let path = dir.join(segment_file_name(seq));
        let header = SegmentHeaderRecord {
            segment_seq: seq,
            base_lsn: lsn,
            epoch,
        };
        let frame = crate::record::encode_frame(lsn, &header.encode());
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)
            .map_err(|source| WalError::OpenFailed {
                path: path.clone(),
                source,
            })?;
        file.write_all(&frame)
            .map_err(|e| WalError::io("writing WAL segment header", e))?;
        file.sync_data()
            .map_err(|e| WalError::io("syncing WAL segment header", e))?;
        sync_dir(dir)?;
        Ok((
            ActiveSegment {
                seq,
                path,
                file,
                first_lsn: lsn,
                bytes: frame.len() as u64,
                unsynced: false,
            },
            lsn,
        ))
    }

    /// Makes the next `n` sync operations ([`SegmentedWal::sync`] and
    /// [`SegmentedWal::sync_appended`]) fail with an injected I/O error
    /// without touching the files. A crash-testing hook: a real `fsync`
    /// failure cannot be provoked deterministically, yet the commit
    /// pipeline's failed-sync paths (aborting the batch, writing abort
    /// records) need coverage. Appends are unaffected, exactly like a
    /// kernel-level sync failure: the data is in the log, it just was not
    /// made durable.
    pub fn fail_syncs(&self, n: u32) {
        self.injected_sync_failures.store(n, Ordering::SeqCst);
    }

    /// Consumes one injected failure if armed.
    fn take_injected_failure(&self) -> Option<WalError> {
        let counter = &self.injected_sync_failures;
        let mut current = counter.load(Ordering::SeqCst);
        while current > 0 {
            match counter.compare_exchange(current, current - 1, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => {
                    return Some(WalError::io(
                        "syncing WAL",
                        std::io::Error::other("injected sync failure"),
                    ))
                }
                Err(observed) => current = observed,
            }
        }
        None
    }

    /// Directory the segment files live in.
    pub fn path(&self) -> &Path {
        &self.dir
    }

    /// The sync policy this log was opened with.
    pub fn sync_policy(&self) -> SyncPolicy {
        self.sync_policy
    }

    /// The rotation threshold the log was opened with.
    pub fn segment_bytes(&self) -> u64 {
        self.segment_bytes
    }

    /// Appends a payload to the active segment, returning its LSN. Syncs
    /// immediately under [`SyncPolicy::Always`]. Never rotates — rotation
    /// is driven separately ([`SegmentedWal::rotate_if_needed`]) so the
    /// append path stays short.
    pub fn append(&self, payload: &[u8]) -> Result<u64> {
        let mut guard = self.inner.lock();
        let inner = &mut *guard;
        let lsn = inner.next_lsn;
        let bytes = crate::record::encode_frame(lsn, payload);
        let active = &mut inner.active;
        active
            .file
            .seek(SeekFrom::Start(active.bytes))
            .map_err(|e| WalError::io("seeking WAL", e))?;
        active
            .file
            .write_all(&bytes)
            .map_err(|e| WalError::io("appending WAL entry", e))?;
        inner.next_lsn += 1;
        active.bytes += bytes.len() as u64;
        active.unsynced = true;
        if self.sync_policy == SyncPolicy::Always {
            active
                .file
                .sync_data()
                .map_err(|e| WalError::io("syncing WAL", e))?;
            active.unsynced = false;
            if inner.sealed.iter().all(|s| !s.unsynced) {
                inner.synced_lsn = lsn;
            }
        }
        Ok(lsn)
    }

    /// Appends a payload and forces it to stable storage regardless of the
    /// sync policy.
    pub fn append_and_sync(&self, payload: &[u8]) -> Result<u64> {
        let lsn = self.append(payload)?;
        self.sync()?;
        Ok(lsn)
    }

    /// Forces all appended entries to stable storage (every segment with
    /// unsynced data), holding the append lock throughout.
    pub fn sync(&self) -> Result<()> {
        let mut guard = self.inner.lock();
        let inner = &mut *guard;
        let dirty = inner.active.unsynced || inner.sealed.iter().any(|s| s.unsynced);
        if !dirty {
            return Ok(());
        }
        if let Some(err) = self.take_injected_failure() {
            return Err(err);
        }
        for sealed in inner.sealed.iter_mut().filter(|s| s.unsynced) {
            if let Some(file) = &sealed.file {
                file.sync_data()
                    .map_err(|e| WalError::io("syncing sealed WAL segment", e))?;
            }
            sealed.unsynced = false;
            sealed.file = None;
        }
        if inner.active.unsynced {
            inner
                .active
                .file
                .sync_data()
                .map_err(|e| WalError::io("syncing WAL", e))?;
            inner.active.unsynced = false;
        }
        inner.synced_lsn = inner.next_lsn - 1;
        Ok(())
    }

    /// Makes every entry appended so far durable **without blocking
    /// concurrent appends**, and returns the highest LSN guaranteed stable.
    ///
    /// This is the group-commit leader's sync: the target LSN and the set
    /// of files holding unsynced data are snapshotted under the append
    /// lock, but the `fsync`s themselves run on cloned handles to the
    /// same file descriptions, so followers of the *next* batch keep
    /// appending while this batch is flushed. A batch that spans a
    /// rotation syncs both the sealed tail and the new active segment.
    /// Entries appended after the target snapshot may or may not be
    /// covered; they stay marked unsynced and the next sync picks them up.
    pub fn sync_appended(&self) -> Result<u64> {
        let (target, files) = {
            let inner = self.inner.lock();
            if inner.synced_lsn >= inner.next_lsn - 1 {
                return Ok(inner.synced_lsn);
            }
            let mut files = Vec::new();
            for sealed in inner.sealed.iter().filter(|s| s.unsynced) {
                if let Some(file) = &sealed.file {
                    files.push(
                        file.try_clone()
                            .map_err(|e| WalError::io("cloning WAL handle for group sync", e))?,
                    );
                }
            }
            if inner.active.unsynced {
                files.push(
                    inner
                        .active
                        .file
                        .try_clone()
                        .map_err(|e| WalError::io("cloning WAL handle for group sync", e))?,
                );
            }
            (inner.next_lsn - 1, files)
        };
        if let Some(err) = self.take_injected_failure() {
            return Err(err);
        }
        for file in &files {
            file.sync_data()
                .map_err(|e| WalError::io("group-syncing WAL", e))?;
        }
        let mut guard = self.inner.lock();
        let inner = &mut *guard;
        if target > inner.synced_lsn {
            inner.synced_lsn = target;
        }
        for sealed in inner.sealed.iter_mut() {
            if sealed.unsynced && sealed.last_lsn <= inner.synced_lsn {
                sealed.unsynced = false;
                sealed.file = None;
            }
        }
        inner.active.unsynced = inner.next_lsn - 1 > inner.synced_lsn;
        Ok(target)
    }

    /// Seals the active segment and switches appends to a new one if the
    /// active segment has reached the size threshold. Returns whether a
    /// rotation happened.
    ///
    /// The append lock is held only for the cheap part (creating the file
    /// and writing the ~50-byte header frame); the fsyncs making the new
    /// segment durable — one on the header, one on the directory entry —
    /// run after the lock is released, so concurrent committers keep
    /// appending to the *new* segment while the switch is made durable.
    /// That is the whole cost of a segment switch: one extra data fsync
    /// (plus the directory entry) paid by whoever drove the rotation,
    /// never by a committer. The group-commit leader calls this after
    /// each successful batch sync.
    ///
    /// Crash safety: if the process dies before the header reaches disk,
    /// recovery finds a headerless last segment and deletes it — every
    /// entry appended to the new segment was non-durable by definition
    /// (the durable watermark cannot pass the unsynced header).
    pub fn rotate_if_needed(&self) -> Result<bool> {
        {
            let inner = self.inner.lock();
            if inner.active.bytes < self.segment_bytes {
                return Ok(false);
            }
        }
        let mut guard = self.inner.lock();
        let inner = &mut *guard;
        if inner.active.bytes < self.segment_bytes {
            return Ok(false); // another rotator won the race
        }
        let seq = inner.active.seq + 1;
        let path = self.dir.join(segment_file_name(seq));
        let lsn = inner.next_lsn;
        let header = SegmentHeaderRecord {
            segment_seq: seq,
            base_lsn: lsn,
            epoch: self.epoch.load(Ordering::SeqCst),
        };
        let frame = crate::record::encode_frame(lsn, &header.encode());
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)
            .map_err(|source| WalError::OpenFailed {
                path: path.clone(),
                source,
            })?;
        file.write_all(&frame)
            .map_err(|e| WalError::io("writing WAL segment header", e))?;
        let sync_handle = file
            .try_clone()
            .map_err(|e| WalError::io("cloning WAL segment handle", e))?;
        inner.next_lsn += 1;
        let old = std::mem::replace(
            &mut inner.active,
            ActiveSegment {
                seq,
                path,
                file,
                first_lsn: lsn,
                bytes: frame.len() as u64,
                unsynced: true,
            },
        );
        inner.sealed.push(SealedSegment {
            seq: old.seq,
            path: old.path,
            file: old.unsynced.then_some(old.file),
            first_lsn: old.first_lsn,
            last_lsn: lsn - 1,
            bytes: old.bytes,
            unsynced: old.unsynced,
        });
        drop(guard);
        // The rotation fsyncs, off the append lock: header, then the
        // directory entry. The header stays marked unsynced until a group
        // sync covers its LSN — these fsyncs are about making the *file*
        // exist durably so recovery never sees a later segment without
        // this one.
        sync_handle
            .sync_data()
            .map_err(|e| WalError::io("syncing WAL segment header", e))?;
        sync_dir(&self.dir)?;
        self.segments_created.fetch_add(1, Ordering::Relaxed);
        Ok(true)
    }

    /// Deletes every sealed segment whose entries are all durable and at
    /// or below `lsn` — the retention watermark, advanced by the
    /// checkpointer once a checkpoint has flushed everything up to that
    /// point. Returns the number of segments deleted. The active segment
    /// is never deleted.
    pub fn release_upto(&self, lsn: u64) -> Result<u64> {
        let victims: Vec<PathBuf> = {
            let mut inner = self.inner.lock();
            debug_assert!(
                inner.sealed.windows(2).all(|w| w[0].seq < w[1].seq),
                "sealed segments must stay ordered by sequence number"
            );
            // Delete an oldest-first *prefix* only: stopping at the first
            // surviving segment keeps the retained sequence gap-free (a
            // gap reads as corruption on reopen).
            let keep_from = inner
                .sealed
                .iter()
                .position(|sealed| sealed.last_lsn > lsn || sealed.unsynced)
                .unwrap_or(inner.sealed.len());
            inner.sealed.drain(..keep_from).map(|s| s.path).collect()
        };
        if victims.is_empty() {
            return Ok(0);
        }
        for path in &victims {
            std::fs::remove_file(path)
                .map_err(|e| WalError::io("unlinking released WAL segment", e))?;
        }
        sync_dir(&self.dir)?;
        self.segments_deleted
            .fetch_add(victims.len() as u64, Ordering::Relaxed);
        Ok(victims.len() as u64)
    }

    /// First LSN still retained in the log (the oldest segment's header).
    pub fn first_retained_lsn(&self) -> u64 {
        let inner = self.inner.lock();
        inner
            .sealed
            .first()
            .map(|s| s.first_lsn)
            .unwrap_or(inner.active.first_lsn)
    }

    /// Highest LSN known durable on stable storage.
    pub fn durable_lsn(&self) -> u64 {
        self.inner.lock().synced_lsn
    }

    /// Highest LSN appended so far (durable or not).
    pub fn last_appended_lsn(&self) -> u64 {
        self.inner.lock().next_lsn - 1
    }

    /// Scans the retained log from disk and returns every valid entry,
    /// stitched across segments in order.
    pub fn scan(&self) -> Result<WalScan> {
        let paths: Vec<PathBuf> = {
            let inner = self.inner.lock();
            inner
                .sealed
                .iter()
                .map(|s| s.path.clone())
                .chain(std::iter::once(inner.active.path.clone()))
                .collect()
        };
        let mut scan = WalScan::default();
        for (i, path) in paths.iter().enumerate() {
            let one = Self::scan_one(path)?;
            scan.valid_bytes += one.valid_bytes;
            scan.entries.extend(one.entries);
            scan.segments += 1;
            if !one.clean {
                scan.truncated_tail = true;
                if i + 1 < paths.len() {
                    // A tear before the last segment: everything after it
                    // was appended after the tear and never became
                    // durable. Stop stitching.
                    break;
                }
            }
        }
        Ok(scan)
    }

    /// Number of segment files currently retained (sealed + active).
    pub fn segment_count(&self) -> usize {
        self.inner.lock().sealed.len() + 1
    }

    /// Total bytes of retained log data across all segments — the value
    /// bounded by checkpointing: once a checkpoint releases old segments
    /// this drops back to the active suffix.
    pub fn retained_bytes(&self) -> u64 {
        let inner = self.inner.lock();
        inner.sealed.iter().map(|s| s.bytes).sum::<u64>() + inner.active.bytes
    }

    /// Alias of [`SegmentedWal::retained_bytes`] (the pre-segmentation
    /// single-file size measure).
    pub fn size_bytes(&self) -> u64 {
        self.retained_bytes()
    }

    /// The LSN the next append will receive.
    pub fn next_lsn(&self) -> u64 {
        self.inner.lock().next_lsn
    }

    /// Segment files created over this handle's lifetime.
    pub fn segments_created(&self) -> u64 {
        self.segments_created.load(Ordering::Relaxed)
    }

    /// Segment files deleted by the retention watermark.
    pub fn segments_deleted(&self) -> u64 {
        self.segments_deleted.load(Ordering::Relaxed)
    }

    /// The current checkpoint epoch (stamped into new segment headers).
    pub fn checkpoint_epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Advances the checkpoint epoch and returns the new value.
    pub fn advance_epoch(&self) -> u64 {
        self.epoch.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Raises the checkpoint epoch to at least `epoch` (recovery feeds
    /// the highest completed epoch it saw in the log back in).
    pub fn raise_epoch(&self, epoch: u64) {
        self.epoch.fetch_max(epoch, Ordering::SeqCst);
    }

    /// Scans one segment file. Torn or corrupt tails are not errors: the
    /// scan reports what was valid and `clean: false`.
    fn scan_one(path: &Path) -> Result<SegmentScan> {
        let mut file = match File::open(path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok(SegmentScan {
                    entries: Vec::new(),
                    valid_bytes: 0,
                    clean: true,
                })
            }
            Err(e) => {
                return Err(WalError::OpenFailed {
                    path: path.to_path_buf(),
                    source: e,
                })
            }
        };
        let mut buf = Vec::new();
        file.read_to_end(&mut buf)
            .map_err(|e| WalError::io("reading WAL segment", e))?;
        let mut entries = Vec::new();
        let mut offset = 0usize;
        let mut clean = true;
        while offset < buf.len() {
            match LogEntry::decode(&buf[offset..], offset as u64) {
                Ok(Some((entry, consumed))) => {
                    entries.push(entry);
                    offset += consumed;
                }
                Ok(None) | Err(_) => {
                    // Torn or corrupt tail — recover everything before it.
                    clean = false;
                    break;
                }
            }
        }
        Ok(SegmentScan {
            entries,
            valid_bytes: offset as u64,
            clean,
        })
    }
}

impl std::fmt::Debug for SegmentedWal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SegmentedWal")
            .field("dir", &self.dir)
            .field("next_lsn", &self.next_lsn())
            .field("segments", &self.segment_count())
            .field("retained_bytes", &self.retained_bytes())
            .finish()
    }
}

/// Classifies whether a scanned entry carries database state (commit /
/// abort records) or log bookkeeping (segment headers, checkpoint
/// markers). Convenience for consumers stitching recovery state. Strict:
/// an entry counts as bookkeeping only if it fully decodes as one of the
/// bookkeeping records, not merely by its first byte.
pub fn is_bookkeeping(entry: &LogEntry) -> bool {
    use crate::record::{CheckpointBeginRecord, CheckpointEndRecord};
    match payload_kind(&entry.payload, 0) {
        Ok(PayloadKind::SegmentHeader) => SegmentHeaderRecord::decode(&entry.payload, 0).is_ok(),
        Ok(PayloadKind::CheckpointBegin) => {
            CheckpointBeginRecord::decode(&entry.payload, 0).is_ok()
        }
        Ok(PayloadKind::CheckpointEnd) => CheckpointEndRecord::decode(&entry.payload, 0).is_ok(),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphsi_storage::test_util::TempDir;

    const SEG: u64 = 64; // tiny rotation threshold for tests
    const BIG: u64 = 64 * 1024 * 1024;

    fn wal_dir(dir: &TempDir) -> PathBuf {
        dir.path().join("wal")
    }

    fn open(dir: &TempDir, policy: SyncPolicy, segment_bytes: u64) -> SegmentedWal {
        SegmentedWal::open(wal_dir(dir), policy, segment_bytes).unwrap()
    }

    /// Entries that are not segment headers / checkpoint markers.
    fn data_entries(scan: &WalScan) -> Vec<&LogEntry> {
        scan.entries.iter().filter(|e| !is_bookkeeping(e)).collect()
    }

    #[test]
    fn append_scan_roundtrip() {
        let dir = TempDir::new("wal_roundtrip");
        let wal = open(&dir, SyncPolicy::Always, BIG);
        let first = wal.append(b"first").unwrap();
        assert_eq!(first, 2, "LSN 1 is the segment header");
        assert_eq!(wal.append(b"second").unwrap(), 3);
        let scan = wal.scan().unwrap();
        let data = data_entries(&scan);
        assert_eq!(data.len(), 2);
        assert_eq!(data[0].payload, b"first");
        assert_eq!(data[1].lsn, 3);
        assert!(!scan.truncated_tail);
        assert_eq!(scan.segments, 1);
    }

    #[test]
    fn segment_header_is_first_entry() {
        let dir = TempDir::new("wal_header");
        let wal = open(&dir, SyncPolicy::Always, BIG);
        let scan = wal.scan().unwrap();
        assert_eq!(scan.entries.len(), 1);
        let header = SegmentHeaderRecord::decode(&scan.entries[0].payload, 0).unwrap();
        assert_eq!(header.segment_seq, 1);
        assert_eq!(header.base_lsn, 1);
        assert_eq!(header.epoch, 0);
    }

    #[test]
    fn reopen_continues_lsn_sequence() {
        let dir = TempDir::new("wal_reopen");
        let (a, b) = {
            let wal = open(&dir, SyncPolicy::Always, BIG);
            (wal.append(b"a").unwrap(), wal.append(b"b").unwrap())
        };
        let wal = open(&dir, SyncPolicy::Always, BIG);
        assert_eq!(wal.next_lsn(), b + 1);
        assert_eq!(wal.append(b"c").unwrap(), b + 1);
        let scan = wal.scan().unwrap();
        assert_eq!(data_entries(&scan).len(), 3);
        assert_eq!(data_entries(&scan)[0].lsn, a);
    }

    #[test]
    fn rotation_seals_and_stitches() {
        let dir = TempDir::new("wal_rotate");
        let wal = open(&dir, SyncPolicy::OnDemand, SEG);
        let mut lsns = Vec::new();
        for i in 0..20u8 {
            lsns.push(wal.append(&[i; 16]).unwrap());
            wal.sync_appended().unwrap();
            wal.rotate_if_needed().unwrap();
        }
        assert!(wal.segment_count() > 1, "tiny threshold must rotate");
        assert!(wal.segments_created() > 1);
        let scan = wal.scan().unwrap();
        assert_eq!(scan.segments, wal.segment_count());
        let data = data_entries(&scan);
        assert_eq!(data.len(), 20);
        // One monotone LSN space across segments, headers interleaved.
        let scanned: Vec<u64> = data.iter().map(|e| e.lsn).collect();
        assert_eq!(scanned, lsns);
        let all_lsns: Vec<u64> = scan.entries.iter().map(|e| e.lsn).collect();
        let mut sorted = all_lsns.clone();
        sorted.sort_unstable();
        assert_eq!(all_lsns, sorted, "stitched scan is in LSN order");

        // Reopen stitches the same entries.
        drop(wal);
        let wal = open(&dir, SyncPolicy::OnDemand, SEG);
        let rescan = wal.scan().unwrap();
        assert_eq!(
            data_entries(&rescan)
                .iter()
                .map(|e| e.lsn)
                .collect::<Vec<_>>(),
            lsns
        );
    }

    #[test]
    fn release_upto_deletes_checkpointed_segments() {
        let dir = TempDir::new("wal_release");
        let wal = open(&dir, SyncPolicy::OnDemand, SEG);
        for i in 0..20u8 {
            wal.append(&[i; 16]).unwrap();
            wal.sync_appended().unwrap();
            wal.rotate_if_needed().unwrap();
        }
        let segments = wal.segment_count();
        assert!(segments > 2);
        let retained_before = wal.retained_bytes();
        let watermark = wal.last_appended_lsn();
        let deleted = wal.release_upto(watermark).unwrap();
        assert_eq!(deleted as usize, segments - 1, "active is never deleted");
        assert_eq!(wal.segments_deleted(), deleted);
        assert_eq!(wal.segment_count(), 1);
        assert!(wal.retained_bytes() < retained_before);
        // The files are really gone.
        let remaining = SegmentedWal::list_segments(&wal_dir(&dir)).unwrap();
        assert_eq!(remaining.len(), 1);
        // LSNs keep increasing and the log still appends fine.
        let lsn = wal.append(b"after release").unwrap();
        assert_eq!(lsn, watermark + 1);
        // Reopen after release: the sequence no longer starts at 1.
        drop(wal);
        let wal = open(&dir, SyncPolicy::OnDemand, SEG);
        assert_eq!(wal.next_lsn(), lsn + 1);
    }

    #[test]
    fn release_never_deletes_unsynced_or_uncovered_segments() {
        let dir = TempDir::new("wal_release_guard");
        let wal = open(&dir, SyncPolicy::OnDemand, SEG);
        for i in 0..8u8 {
            wal.append(&[i; 16]).unwrap();
            wal.sync_appended().unwrap();
            wal.rotate_if_needed().unwrap();
        }
        // Unsynced tail in the freshly-rotated sealed segment.
        wal.append(b"unsynced tail").unwrap();
        let segments = wal.segment_count();
        // A watermark below the first retained LSN deletes nothing.
        assert_eq!(wal.release_upto(0).unwrap(), 0);
        assert_eq!(wal.segment_count(), segments);
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let dir = TempDir::new("wal_torn");
        {
            let wal = open(&dir, SyncPolicy::Always, BIG);
            wal.append(b"complete entry").unwrap();
        }
        // Simulate a crash mid-append: append garbage that looks like a
        // partial entry to the (only) segment file.
        {
            let mut f = OpenOptions::new()
                .append(true)
                .open(wal_dir(&dir).join(segment_file_name(1)))
                .unwrap();
            f.write_all(&crate::record::ENTRY_MAGIC.to_le_bytes())
                .unwrap();
            f.write_all(&[200u8, 0, 0, 0, 1, 2, 3]).unwrap();
        }
        let wal = open(&dir, SyncPolicy::Always, BIG);
        let scan = wal.scan().unwrap();
        assert_eq!(data_entries(&scan).len(), 1);
        assert!(!scan.truncated_tail, "tail was truncated at open time");
        wal.append(b"after recovery").unwrap();
        assert_eq!(data_entries(&wal.scan().unwrap()).len(), 2);
    }

    #[test]
    fn headerless_last_segment_is_deleted_on_open() {
        let dir = TempDir::new("wal_headerless");
        {
            let wal = open(&dir, SyncPolicy::OnDemand, SEG);
            for i in 0..8u8 {
                wal.append(&[i; 16]).unwrap();
                wal.sync_appended().unwrap();
                wal.rotate_if_needed().unwrap();
            }
        }
        // Simulate a crash after segment creation but before the header
        // reached the disk: an empty next segment file.
        let seqs = SegmentedWal::list_segments(&wal_dir(&dir)).unwrap();
        let next = seqs.iter().max().unwrap() + 1;
        std::fs::write(wal_dir(&dir).join(segment_file_name(next)), b"").unwrap();
        let wal = open(&dir, SyncPolicy::OnDemand, SEG);
        let remaining = SegmentedWal::list_segments(&wal_dir(&dir)).unwrap();
        assert!(!remaining.contains(&next), "headerless segment deleted");
        // Appends continue in the adopted last segment.
        wal.append(b"continues").unwrap();
        assert!(!wal.scan().unwrap().truncated_tail);
    }

    #[test]
    fn torn_header_last_segment_is_deleted_on_open() {
        let dir = TempDir::new("wal_torn_header");
        {
            let wal = open(&dir, SyncPolicy::OnDemand, SEG);
            for i in 0..8u8 {
                wal.append(&[i; 16]).unwrap();
                wal.sync_appended().unwrap();
                wal.rotate_if_needed().unwrap();
            }
        }
        let seqs = SegmentedWal::list_segments(&wal_dir(&dir)).unwrap();
        let next = seqs.iter().max().unwrap() + 1;
        // A partial header frame (first half only).
        let header = SegmentHeaderRecord {
            segment_seq: next,
            base_lsn: 999,
            epoch: 0,
        };
        let frame = crate::record::encode_frame(999, &header.encode());
        std::fs::write(
            wal_dir(&dir).join(segment_file_name(next)),
            &frame[..frame.len() / 2],
        )
        .unwrap();
        let wal = open(&dir, SyncPolicy::OnDemand, SEG);
        let remaining = SegmentedWal::list_segments(&wal_dir(&dir)).unwrap();
        assert!(!remaining.contains(&next));
        wal.append(b"continues").unwrap();
    }

    #[test]
    fn segment_sequence_gap_is_corruption() {
        let dir = TempDir::new("wal_gap");
        {
            let wal = open(&dir, SyncPolicy::OnDemand, SEG);
            for i in 0..12u8 {
                wal.append(&[i; 16]).unwrap();
                wal.sync_appended().unwrap();
                wal.rotate_if_needed().unwrap();
            }
            assert!(wal.segment_count() >= 3);
        }
        // Remove a *middle* segment (never a legal retention state —
        // release deletes oldest-first).
        let seqs = SegmentedWal::list_segments(&wal_dir(&dir)).unwrap();
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        let middle = sorted[sorted.len() / 2];
        std::fs::remove_file(wal_dir(&dir).join(segment_file_name(middle))).unwrap();
        assert!(matches!(
            SegmentedWal::open(wal_dir(&dir), SyncPolicy::OnDemand, SEG),
            Err(WalError::Corrupt { .. })
        ));
    }

    #[test]
    fn on_demand_sync_batches() {
        let dir = TempDir::new("wal_group");
        let wal = open(&dir, SyncPolicy::OnDemand, BIG);
        for i in 0..10u8 {
            wal.append(&[i]).unwrap();
        }
        wal.sync().unwrap();
        assert_eq!(data_entries(&wal.scan().unwrap()).len(), 10);
    }

    #[test]
    fn empty_log_scans_headers_only() {
        let dir = TempDir::new("wal_empty");
        let wal = open(&dir, SyncPolicy::Always, BIG);
        let scan = wal.scan().unwrap();
        assert!(data_entries(&scan).is_empty());
        assert_eq!(scan.entries.len(), 1, "just the segment header");
        assert_eq!(wal.next_lsn(), 2);
    }

    #[test]
    fn sync_appended_reports_durable_watermark() {
        let dir = TempDir::new("wal_sync_appended");
        let wal = open(&dir, SyncPolicy::OnDemand, BIG);
        assert_eq!(wal.durable_lsn(), 1, "header is durable at open");
        assert_eq!(wal.last_appended_lsn(), 1);
        wal.append(b"a").unwrap();
        wal.append(b"b").unwrap();
        assert_eq!(wal.last_appended_lsn(), 3);
        assert_eq!(wal.durable_lsn(), 1, "nothing synced yet");
        assert_eq!(wal.sync_appended().unwrap(), 3);
        assert_eq!(wal.durable_lsn(), 3);
        // Idempotent when nothing new was appended.
        assert_eq!(wal.sync_appended().unwrap(), 3);
        wal.append(b"c").unwrap();
        assert_eq!(wal.durable_lsn(), 3);
        assert_eq!(wal.sync_appended().unwrap(), 4);
    }

    #[test]
    fn sync_spans_rotation() {
        let dir = TempDir::new("wal_sync_spans");
        let wal = open(&dir, SyncPolicy::OnDemand, SEG);
        // Fill past the threshold without syncing, rotate, append more:
        // one sync must cover the sealed tail and the new active segment.
        for i in 0..4u8 {
            wal.append(&[i; 24]).unwrap();
        }
        assert!(wal.rotate_if_needed().unwrap());
        wal.append(b"in the new segment").unwrap();
        let target = wal.last_appended_lsn();
        assert_eq!(wal.sync_appended().unwrap(), target);
        assert_eq!(wal.durable_lsn(), target);
        // Reopen: everything survives in order.
        drop(wal);
        let wal = open(&dir, SyncPolicy::OnDemand, SEG);
        assert_eq!(wal.next_lsn(), target + 1);
    }

    #[test]
    fn always_policy_keeps_durable_watermark_current() {
        let dir = TempDir::new("wal_always_watermark");
        let wal = open(&dir, SyncPolicy::Always, BIG);
        assert_eq!(wal.sync_policy(), SyncPolicy::Always);
        let a = wal.append(b"a").unwrap();
        assert_eq!(wal.durable_lsn(), a);
        let b = wal.append(b"b").unwrap();
        assert_eq!(wal.durable_lsn(), b);
    }

    #[test]
    fn injected_sync_failures_fail_then_clear() {
        let dir = TempDir::new("wal_inject");
        let wal = open(&dir, SyncPolicy::OnDemand, BIG);
        let a = wal.append(b"a").unwrap();
        wal.fail_syncs(1);
        assert!(wal.sync_appended().is_err());
        assert!(wal.durable_lsn() < a, "a failed sync advances nothing");
        // The injection is consumed: the next sync succeeds and the data
        // (still in the log) becomes durable.
        assert_eq!(wal.sync_appended().unwrap(), a);
        assert_eq!(wal.durable_lsn(), a);
        wal.append(b"b").unwrap();
        wal.fail_syncs(1);
        assert!(wal.sync().is_err());
        wal.sync().unwrap();
        assert_eq!(data_entries(&wal.scan().unwrap()).len(), 2);
    }

    #[test]
    fn epoch_is_persisted_in_rotated_headers() {
        let dir = TempDir::new("wal_epoch");
        {
            let wal = open(&dir, SyncPolicy::OnDemand, SEG);
            assert_eq!(wal.checkpoint_epoch(), 0);
            assert_eq!(wal.advance_epoch(), 1);
            assert_eq!(wal.advance_epoch(), 2);
            for i in 0..4u8 {
                wal.append(&[i; 24]).unwrap();
            }
            wal.sync_appended().unwrap();
            assert!(wal.rotate_if_needed().unwrap());
        }
        // Reopen recovers the epoch from the newest segment header.
        let wal = open(&dir, SyncPolicy::OnDemand, SEG);
        assert_eq!(wal.checkpoint_epoch(), 2);
        wal.raise_epoch(5);
        assert_eq!(wal.checkpoint_epoch(), 5);
        wal.raise_epoch(3);
        assert_eq!(wal.checkpoint_epoch(), 5, "raise is a max");
    }

    #[test]
    fn appends_proceed_while_group_sync_runs() {
        use std::sync::Arc;
        let dir = TempDir::new("wal_overlap");
        let wal = Arc::new(SegmentedWal::open(wal_dir(&dir), SyncPolicy::OnDemand, BIG).unwrap());
        wal.append(b"seed").unwrap();
        let syncer = {
            let wal = Arc::clone(&wal);
            std::thread::spawn(move || {
                for _ in 0..50 {
                    wal.sync_appended().unwrap();
                }
            })
        };
        for i in 0..200u8 {
            wal.append(&[i]).unwrap();
        }
        syncer.join().unwrap();
        wal.sync().unwrap();
        assert_eq!(wal.durable_lsn(), 202);
        assert_eq!(data_entries(&wal.scan().unwrap()).len(), 201);
    }

    #[test]
    fn concurrent_appends_and_rotations_get_unique_lsns() {
        use std::sync::Arc;
        let dir = TempDir::new("wal_concurrent");
        let wal = Arc::new(SegmentedWal::open(wal_dir(&dir), SyncPolicy::OnDemand, 256).unwrap());
        let mut handles = Vec::new();
        for t in 0..4u8 {
            let wal = Arc::clone(&wal);
            handles.push(std::thread::spawn(move || {
                (0..100u8)
                    .map(|i| {
                        let lsn = wal.append(&[t, i]).unwrap();
                        if i % 8 == 0 {
                            wal.sync_appended().unwrap();
                            wal.rotate_if_needed().unwrap();
                        }
                        lsn
                    })
                    .collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 400);
        wal.sync().unwrap();
        assert!(wal.segment_count() > 1, "rotations happened");
        let scan = wal.scan().unwrap();
        assert_eq!(data_entries(&scan).len(), 400);
        let lsns: Vec<u64> = scan.entries.iter().map(|e| e.lsn).collect();
        let mut sorted = lsns.clone();
        sorted.sort_unstable();
        assert_eq!(lsns, sorted, "stitched scan stays in LSN order");
    }
}
