//! Error type for the write-ahead log.

use std::fmt;
use std::io;
use std::path::PathBuf;

/// Errors raised by the write-ahead log.
#[derive(Debug)]
pub enum WalError {
    /// An underlying I/O operation failed.
    Io {
        /// Description of the failing operation.
        context: String,
        /// The underlying error.
        source: io::Error,
    },
    /// The log file could not be opened.
    OpenFailed {
        /// Path of the log file.
        path: PathBuf,
        /// The underlying error.
        source: io::Error,
    },
    /// A log entry failed its checksum or framing validation. Entries after
    /// a corrupt one are never returned.
    Corrupt {
        /// Byte offset of the corrupt entry.
        offset: u64,
        /// Human readable description.
        reason: String,
    },
}

impl WalError {
    /// Convenience constructor for [`WalError::Io`].
    pub fn io(context: impl Into<String>, source: io::Error) -> Self {
        WalError::Io {
            context: context.into(),
            source,
        }
    }
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io { context, source } => {
                write!(f, "WAL I/O error while {context}: {source}")
            }
            WalError::OpenFailed { path, source } => {
                write!(f, "failed to open WAL {}: {source}", path.display())
            }
            WalError::Corrupt { offset, reason } => {
                write!(f, "corrupt WAL entry at offset {offset}: {reason}")
            }
        }
    }
}

impl std::error::Error for WalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WalError::Io { source, .. } | WalError::OpenFailed { source, .. } => Some(source),
            WalError::Corrupt { .. } => None,
        }
    }
}

/// Result alias used throughout the WAL crate.
pub type Result<T> = std::result::Result<T, WalError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = WalError::io("appending", io::Error::other("disk full"));
        assert!(e.to_string().contains("appending"));
        let e = WalError::Corrupt {
            offset: 16,
            reason: "bad checksum".into(),
        };
        assert!(e.to_string().contains("offset 16"));
        let e = WalError::OpenFailed {
            path: PathBuf::from("/nope/wal.log"),
            source: io::Error::new(io::ErrorKind::NotFound, "missing"),
        };
        assert!(e.to_string().contains("/nope/wal.log"));
    }

    #[test]
    fn io_source_preserved() {
        let e = WalError::io("x", io::Error::other("inner"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
