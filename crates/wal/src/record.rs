//! Log entry framing.
//!
//! Each entry is framed as:
//!
//! ```text
//! +---------+---------+---------+---------+------------------+
//! | magic   | len     | lsn     | crc32   | payload (len)    |
//! | u32 LE  | u32 LE  | u64 LE  | u32 LE  | bytes            |
//! +---------+---------+---------+---------+------------------+
//! ```
//!
//! The checksum covers the LSN and the payload, so both truncated (torn)
//! tails and bit flips are detected on read.

use crate::crc::crc32_parts;
use crate::error::{Result, WalError};

/// Magic marker beginning every log entry ("WALE").
pub const ENTRY_MAGIC: u32 = 0x5741_4C45;
/// Size of the fixed entry header in bytes.
pub const HEADER_SIZE: usize = 4 + 4 + 8 + 4;
/// Maximum payload size accepted (guards against reading garbage lengths
/// from a corrupt log).
pub const MAX_PAYLOAD: usize = 64 * 1024 * 1024;

/// One entry of the write-ahead log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogEntry {
    /// Log sequence number (monotonically increasing, starting at 1).
    pub lsn: u64,
    /// Opaque payload supplied by the layer above (the commit-record
    /// encoding lives in `graphsi-core`).
    pub payload: Vec<u8>,
}

/// Serialises one framed entry from a borrowed payload — the append path
/// uses this directly so it never clones the payload into a [`LogEntry`]
/// first.
pub fn encode_frame(lsn: u64, payload: &[u8]) -> Vec<u8> {
    let lsn_bytes = lsn.to_le_bytes();
    let crc = crc32_parts(&[&lsn_bytes, payload]);
    let mut out = Vec::with_capacity(HEADER_SIZE + payload.len());
    out.extend_from_slice(&ENTRY_MAGIC.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&lsn_bytes);
    out.extend_from_slice(&crc.to_le_bytes());
    out.extend_from_slice(payload);
    out
}

impl LogEntry {
    /// Creates an entry.
    pub fn new(lsn: u64, payload: Vec<u8>) -> Self {
        LogEntry { lsn, payload }
    }

    /// Serialises the entry (header + payload) into a byte buffer.
    pub fn encode(&self) -> Vec<u8> {
        encode_frame(self.lsn, &self.payload)
    }

    /// Attempts to decode one entry from the beginning of `buf`.
    ///
    /// Returns `Ok(None)` if `buf` holds a prefix of an entry (a torn tail
    /// after a crash — not an error), `Ok(Some((entry, consumed)))` on
    /// success and `Err` on framing or checksum violations.
    pub fn decode(buf: &[u8], offset: u64) -> Result<Option<(LogEntry, usize)>> {
        if buf.len() < HEADER_SIZE {
            return Ok(None);
        }
        let magic = u32::from_le_bytes(buf[0..4].try_into().unwrap());
        if magic != ENTRY_MAGIC {
            return Err(WalError::Corrupt {
                offset,
                reason: format!("bad magic {magic:#010x}"),
            });
        }
        let len = u32::from_le_bytes(buf[4..8].try_into().unwrap()) as usize;
        if len > MAX_PAYLOAD {
            return Err(WalError::Corrupt {
                offset,
                reason: format!("payload length {len} exceeds maximum"),
            });
        }
        if buf.len() < HEADER_SIZE + len {
            return Ok(None);
        }
        let lsn = u64::from_le_bytes(buf[8..16].try_into().unwrap());
        let stored_crc = u32::from_le_bytes(buf[16..20].try_into().unwrap());
        let payload = &buf[HEADER_SIZE..HEADER_SIZE + len];
        let actual_crc = crc32_parts(&[&buf[8..16], payload]);
        if stored_crc != actual_crc {
            return Err(WalError::Corrupt {
                offset,
                reason: "checksum mismatch".to_owned(),
            });
        }
        Ok(Some((
            LogEntry {
                lsn,
                payload: payload.to_vec(),
            },
            HEADER_SIZE + len,
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn encode_decode_roundtrip() {
        let entry = LogEntry::new(7, vec![1, 2, 3, 4, 5]);
        let bytes = entry.encode();
        let (decoded, consumed) = LogEntry::decode(&bytes, 0).unwrap().unwrap();
        assert_eq!(decoded, entry);
        assert_eq!(consumed, bytes.len());
    }

    #[test]
    fn empty_payload_roundtrip() {
        let entry = LogEntry::new(1, Vec::new());
        let bytes = entry.encode();
        let (decoded, _) = LogEntry::decode(&bytes, 0).unwrap().unwrap();
        assert_eq!(decoded.payload, Vec::<u8>::new());
    }

    #[test]
    fn torn_tail_is_not_an_error() {
        let entry = LogEntry::new(3, vec![9; 100]);
        let bytes = entry.encode();
        // Cut anywhere inside the entry.
        for cut in [0, 3, HEADER_SIZE - 1, HEADER_SIZE + 10, bytes.len() - 1] {
            assert!(
                LogEntry::decode(&bytes[..cut], 0).unwrap().is_none(),
                "cut {cut}"
            );
        }
    }

    #[test]
    fn bad_magic_is_corruption() {
        let mut bytes = LogEntry::new(1, vec![1]).encode();
        bytes[0] ^= 0xFF;
        assert!(matches!(
            LogEntry::decode(&bytes, 42),
            Err(WalError::Corrupt { offset: 42, .. })
        ));
    }

    #[test]
    fn flipped_payload_bit_is_corruption() {
        let mut bytes = LogEntry::new(1, vec![0xAA; 16]).encode();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        assert!(matches!(
            LogEntry::decode(&bytes, 0),
            Err(WalError::Corrupt { .. })
        ));
    }

    #[test]
    fn insane_length_is_corruption() {
        let mut bytes = LogEntry::new(1, vec![1, 2, 3]).encode();
        bytes[4..8].copy_from_slice(&(u32::MAX).to_le_bytes());
        assert!(matches!(
            LogEntry::decode(&bytes, 0),
            Err(WalError::Corrupt { .. })
        ));
    }

    proptest! {
        #[test]
        fn prop_roundtrip(lsn in 0u64..u64::MAX, payload in proptest::collection::vec(proptest::num::u8::ANY, 0..2048)) {
            let entry = LogEntry::new(lsn, payload);
            let bytes = entry.encode();
            let (decoded, consumed) = LogEntry::decode(&bytes, 0).unwrap().unwrap();
            prop_assert_eq!(consumed, bytes.len());
            prop_assert_eq!(decoded, entry);
        }
    }
}
