//! Log entry framing.
//!
//! Each entry is framed as:
//!
//! ```text
//! +---------+---------+---------+---------+------------------+
//! | magic   | len     | lsn     | crc32   | payload (len)    |
//! | u32 LE  | u32 LE  | u64 LE  | u32 LE  | bytes            |
//! +---------+---------+---------+---------+------------------+
//! ```
//!
//! The checksum covers the LSN and the payload, so both truncated (torn)
//! tails and bit flips are detected on read.

use crate::crc::crc32_parts;
use crate::error::{Result, WalError};

/// Magic marker beginning every log entry ("WALE").
pub const ENTRY_MAGIC: u32 = 0x5741_4C45;

/// First byte of a typed payload carrying a commit record (the record body
/// itself is encoded by the layer above).
pub const PAYLOAD_KIND_COMMIT: u8 = 0x01;
/// First byte of a typed payload carrying an [`AbortRecord`].
pub const PAYLOAD_KIND_ABORT: u8 = 0x02;
/// First byte of a typed payload carrying an [`AbortRangeRecord`].
pub const PAYLOAD_KIND_ABORT_RANGE: u8 = 0x03;
/// First byte of a typed payload carrying a [`SegmentHeaderRecord`].
pub const PAYLOAD_KIND_SEGMENT_HEADER: u8 = 0x04;
/// First byte of a typed payload carrying a [`CheckpointBeginRecord`].
pub const PAYLOAD_KIND_CHECKPOINT_BEGIN: u8 = 0x05;
/// First byte of a typed payload carrying a [`CheckpointEndRecord`].
pub const PAYLOAD_KIND_CHECKPOINT_END: u8 = 0x06;

/// The kind of a typed log payload, read from its first byte.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PayloadKind {
    /// A commit record: replay applies it (unless an [`AbortRecord`] or
    /// [`AbortRangeRecord`] invalidates it).
    Commit,
    /// An abort record: replay must skip the commit record carrying the
    /// same commit timestamp.
    Abort,
    /// A range abort record: replay must skip every commit record whose
    /// LSN falls in the range.
    AbortRange,
    /// A segment header: the first record of every WAL segment file,
    /// carrying no database state (replay skips it).
    SegmentHeader,
    /// The start marker of a fuzzy checkpoint: everything committed at or
    /// below its `begin_ts` will be in the stores once the matching
    /// [`CheckpointEndRecord`] appears.
    CheckpointBegin,
    /// The completion marker of a fuzzy checkpoint: replay may start after
    /// the matching [`CheckpointBeginRecord`].
    CheckpointEnd,
}

/// Classifies a typed payload by its kind byte. The log itself stores
/// opaque payloads; this tagging convention is shared between the commit
/// pipeline (which writes all kinds) and recovery (which must tell them
/// apart before decoding).
pub fn payload_kind(payload: &[u8], offset: u64) -> Result<PayloadKind> {
    match payload.first() {
        Some(&PAYLOAD_KIND_COMMIT) => Ok(PayloadKind::Commit),
        Some(&PAYLOAD_KIND_ABORT) => Ok(PayloadKind::Abort),
        Some(&PAYLOAD_KIND_ABORT_RANGE) => Ok(PayloadKind::AbortRange),
        Some(&PAYLOAD_KIND_SEGMENT_HEADER) => Ok(PayloadKind::SegmentHeader),
        Some(&PAYLOAD_KIND_CHECKPOINT_BEGIN) => Ok(PayloadKind::CheckpointBegin),
        Some(&PAYLOAD_KIND_CHECKPOINT_END) => Ok(PayloadKind::CheckpointEnd),
        Some(&other) => Err(WalError::Corrupt {
            offset,
            reason: format!("unknown payload kind {other:#04x}"),
        }),
        None => Err(WalError::Corrupt {
            offset,
            reason: "empty payload".to_owned(),
        }),
    }
}

/// An abort (invalidation) record.
///
/// When a committer is failed *after* its commit record reached the log —
/// its group sync failed, or its store apply failed once the record was
/// already durable — the caller observes an abort, yet the commit record
/// stays behind. A later successful sync can then make that record durable
/// and crash recovery would resurrect a transaction the application saw
/// fail. The pipeline therefore appends (and syncs) an `AbortRecord`
/// naming the dead commit timestamp; replay collects these first and skips
/// every invalidated commit record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AbortRecord {
    /// Commit timestamp of the invalidated commit record (raw value — the
    /// log layer does not depend on the timestamp newtype).
    pub commit_ts: u64,
}

/// Encoded size of an [`AbortRecord`] payload: kind byte + timestamp.
pub const ABORT_RECORD_SIZE: usize = 1 + 8;

/// Converts a slice into a fixed-width array, reporting a typed
/// corruption error (rather than panicking) if the width disagrees.
fn field<const N: usize>(bytes: &[u8], offset: u64, what: &str) -> Result<[u8; N]> {
    bytes.try_into().map_err(|_| WalError::Corrupt {
        offset,
        reason: format!("{what} field is not {N} bytes wide"),
    })
}

impl AbortRecord {
    /// Serialises the record as a typed payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(ABORT_RECORD_SIZE);
        out.push(PAYLOAD_KIND_ABORT);
        out.extend_from_slice(&self.commit_ts.to_le_bytes());
        out
    }

    /// Deserialises a payload previously produced by
    /// [`AbortRecord::encode`].
    pub fn decode(payload: &[u8], offset: u64) -> Result<Self> {
        if payload.len() != ABORT_RECORD_SIZE || payload[0] != PAYLOAD_KIND_ABORT {
            return Err(WalError::Corrupt {
                offset,
                reason: "malformed abort record".to_owned(),
            });
        }
        Ok(AbortRecord {
            commit_ts: u64::from_le_bytes(field(&payload[1..9], offset, "abort timestamp")?),
        })
    }
}

/// A range abort (invalidation) record: every commit record with
/// `from_lsn <= lsn <= to_lsn` belongs to a committer whose group sync
/// failed and whose caller observed the abort.
///
/// The failing group-commit leader appends one of these for the whole
/// failed batch *before releasing the batcher* — so no later leader can
/// issue a sync that durably persists the failed commit records without
/// also persisting their invalidation. Records in the range were never
/// durable when the sync failed (the durable watermark had not reached
/// them), and every committer owning one is failed by the batcher, so the
/// range invalidates no acknowledged commit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AbortRangeRecord {
    /// First invalidated LSN (inclusive).
    pub from_lsn: u64,
    /// Last invalidated LSN (inclusive).
    pub to_lsn: u64,
}

/// Encoded size of an [`AbortRangeRecord`] payload.
pub const ABORT_RANGE_RECORD_SIZE: usize = 1 + 8 + 8;

impl AbortRangeRecord {
    /// Serialises the record as a typed payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(ABORT_RANGE_RECORD_SIZE);
        out.push(PAYLOAD_KIND_ABORT_RANGE);
        out.extend_from_slice(&self.from_lsn.to_le_bytes());
        out.extend_from_slice(&self.to_lsn.to_le_bytes());
        out
    }

    /// Deserialises a payload previously produced by
    /// [`AbortRangeRecord::encode`].
    pub fn decode(payload: &[u8], offset: u64) -> Result<Self> {
        if payload.len() != ABORT_RANGE_RECORD_SIZE || payload[0] != PAYLOAD_KIND_ABORT_RANGE {
            return Err(WalError::Corrupt {
                offset,
                reason: "malformed abort-range record".to_owned(),
            });
        }
        Ok(AbortRangeRecord {
            from_lsn: u64::from_le_bytes(field(&payload[1..9], offset, "abort-range from")?),
            to_lsn: u64::from_le_bytes(field(&payload[9..17], offset, "abort-range to")?),
        })
    }

    /// Returns `true` if `lsn` is invalidated by this record.
    pub fn covers(&self, lsn: u64) -> bool {
        self.from_lsn <= lsn && lsn <= self.to_lsn
    }
}

/// Magic marker inside every [`SegmentHeaderRecord`] payload ("GSEG").
pub const SEGMENT_HEADER_MAGIC: u32 = 0x4753_4547;

/// The first record of every WAL segment file.
///
/// A segment header is a normal CRC-framed log entry (so the existing
/// checksum scheme covers it) that consumes one LSN of the global space.
/// It names the segment so a stitched scan can verify it is reading the
/// file it thinks it is: `segment_seq` must match the file name,
/// `base_lsn` must equal the header entry's own LSN, and `epoch` records
/// the checkpoint epoch current when the segment was created.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SegmentHeaderRecord {
    /// The segment's sequence number (matches the `wal.%06d` file name).
    pub segment_seq: u64,
    /// The segment's first LSN — the LSN of the header entry itself.
    pub base_lsn: u64,
    /// Checkpoint epoch current when the segment was created.
    pub epoch: u64,
}

/// Encoded size of a [`SegmentHeaderRecord`] payload.
pub const SEGMENT_HEADER_RECORD_SIZE: usize = 1 + 4 + 8 + 8 + 8;

impl SegmentHeaderRecord {
    /// Serialises the record as a typed payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(SEGMENT_HEADER_RECORD_SIZE);
        out.push(PAYLOAD_KIND_SEGMENT_HEADER);
        out.extend_from_slice(&SEGMENT_HEADER_MAGIC.to_le_bytes());
        out.extend_from_slice(&self.segment_seq.to_le_bytes());
        out.extend_from_slice(&self.base_lsn.to_le_bytes());
        out.extend_from_slice(&self.epoch.to_le_bytes());
        out
    }

    /// Deserialises a payload previously produced by
    /// [`SegmentHeaderRecord::encode`].
    pub fn decode(payload: &[u8], offset: u64) -> Result<Self> {
        if payload.len() != SEGMENT_HEADER_RECORD_SIZE || payload[0] != PAYLOAD_KIND_SEGMENT_HEADER
        {
            return Err(WalError::Corrupt {
                offset,
                reason: "malformed segment header record".to_owned(),
            });
        }
        let magic = u32::from_le_bytes(field(&payload[1..5], offset, "segment header magic")?);
        if magic != SEGMENT_HEADER_MAGIC {
            return Err(WalError::Corrupt {
                offset,
                reason: format!("bad segment header magic {magic:#010x}"),
            });
        }
        Ok(SegmentHeaderRecord {
            segment_seq: u64::from_le_bytes(field(&payload[5..13], offset, "segment seq")?),
            base_lsn: u64::from_le_bytes(field(&payload[13..21], offset, "segment base lsn")?),
            epoch: u64::from_le_bytes(field(&payload[21..29], offset, "segment epoch")?),
        })
    }
}

/// The start marker of a fuzzy (non-quiescing) checkpoint.
///
/// The checkpointer appends this, then flushes dirty store state *while
/// commits keep flowing*. On its own the record promises nothing — only
/// the matching [`CheckpointEndRecord`] (same `epoch`) certifies that
/// every commit with timestamp `<= begin_ts` is in the stores, letting
/// recovery start its replay after this record's LSN. An unpaired begin
/// (crash mid-checkpoint) is ignored by recovery.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CheckpointBeginRecord {
    /// The checkpoint epoch (monotone per database).
    pub epoch: u64,
    /// Newest commit timestamp the checkpoint promises to flush.
    pub begin_ts: u64,
}

/// Encoded size of a [`CheckpointBeginRecord`] payload.
pub const CHECKPOINT_BEGIN_RECORD_SIZE: usize = 1 + 8 + 8;

impl CheckpointBeginRecord {
    /// Serialises the record as a typed payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(CHECKPOINT_BEGIN_RECORD_SIZE);
        out.push(PAYLOAD_KIND_CHECKPOINT_BEGIN);
        out.extend_from_slice(&self.epoch.to_le_bytes());
        out.extend_from_slice(&self.begin_ts.to_le_bytes());
        out
    }

    /// Deserialises a payload previously produced by
    /// [`CheckpointBeginRecord::encode`].
    pub fn decode(payload: &[u8], offset: u64) -> Result<Self> {
        if payload.len() != CHECKPOINT_BEGIN_RECORD_SIZE
            || payload[0] != PAYLOAD_KIND_CHECKPOINT_BEGIN
        {
            return Err(WalError::Corrupt {
                offset,
                reason: "malformed checkpoint-begin record".to_owned(),
            });
        }
        Ok(CheckpointBeginRecord {
            epoch: u64::from_le_bytes(field(&payload[1..9], offset, "checkpoint epoch")?),
            begin_ts: u64::from_le_bytes(field(&payload[9..17], offset, "checkpoint begin ts")?),
        })
    }
}

/// The completion marker of a fuzzy checkpoint: pairs with the
/// [`CheckpointBeginRecord`] carrying the same `epoch`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CheckpointEndRecord {
    /// The checkpoint epoch this record completes.
    pub epoch: u64,
    /// Newest commit timestamp guaranteed flushed to the stores.
    pub stable_ts: u64,
}

/// Encoded size of a [`CheckpointEndRecord`] payload.
pub const CHECKPOINT_END_RECORD_SIZE: usize = 1 + 8 + 8;

impl CheckpointEndRecord {
    /// Serialises the record as a typed payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(CHECKPOINT_END_RECORD_SIZE);
        out.push(PAYLOAD_KIND_CHECKPOINT_END);
        out.extend_from_slice(&self.epoch.to_le_bytes());
        out.extend_from_slice(&self.stable_ts.to_le_bytes());
        out
    }

    /// Deserialises a payload previously produced by
    /// [`CheckpointEndRecord::encode`].
    pub fn decode(payload: &[u8], offset: u64) -> Result<Self> {
        if payload.len() != CHECKPOINT_END_RECORD_SIZE || payload[0] != PAYLOAD_KIND_CHECKPOINT_END
        {
            return Err(WalError::Corrupt {
                offset,
                reason: "malformed checkpoint-end record".to_owned(),
            });
        }
        Ok(CheckpointEndRecord {
            epoch: u64::from_le_bytes(field(&payload[1..9], offset, "checkpoint epoch")?),
            stable_ts: u64::from_le_bytes(field(&payload[9..17], offset, "checkpoint stable ts")?),
        })
    }
}

/// Size of the fixed entry header in bytes.
pub const HEADER_SIZE: usize = 4 + 4 + 8 + 4;
/// Maximum payload size accepted (guards against reading garbage lengths
/// from a corrupt log).
pub const MAX_PAYLOAD: usize = 64 * 1024 * 1024;

/// One entry of the write-ahead log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogEntry {
    /// Log sequence number (monotonically increasing, starting at 1).
    pub lsn: u64,
    /// Opaque payload supplied by the layer above (the commit-record
    /// encoding lives in `graphsi-core`).
    pub payload: Vec<u8>,
}

/// Serialises one framed entry from a borrowed payload — the append path
/// uses this directly so it never clones the payload into a [`LogEntry`]
/// first.
pub fn encode_frame(lsn: u64, payload: &[u8]) -> Vec<u8> {
    let lsn_bytes = lsn.to_le_bytes();
    let crc = crc32_parts(&[&lsn_bytes, payload]);
    let mut out = Vec::with_capacity(HEADER_SIZE + payload.len());
    out.extend_from_slice(&ENTRY_MAGIC.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&lsn_bytes);
    out.extend_from_slice(&crc.to_le_bytes());
    out.extend_from_slice(payload);
    out
}

impl LogEntry {
    /// Creates an entry.
    pub fn new(lsn: u64, payload: Vec<u8>) -> Self {
        LogEntry { lsn, payload }
    }

    /// Serialises the entry (header + payload) into a byte buffer.
    pub fn encode(&self) -> Vec<u8> {
        encode_frame(self.lsn, &self.payload)
    }

    /// Attempts to decode one entry from the beginning of `buf`.
    ///
    /// Returns `Ok(None)` if `buf` holds a prefix of an entry (a torn tail
    /// after a crash — not an error), `Ok(Some((entry, consumed)))` on
    /// success and `Err` on framing or checksum violations.
    pub fn decode(buf: &[u8], offset: u64) -> Result<Option<(LogEntry, usize)>> {
        if buf.len() < HEADER_SIZE {
            return Ok(None);
        }
        let magic = u32::from_le_bytes(field(&buf[0..4], offset, "entry magic")?);
        if magic != ENTRY_MAGIC {
            return Err(WalError::Corrupt {
                offset,
                reason: format!("bad magic {magic:#010x}"),
            });
        }
        let len = u32::from_le_bytes(field(&buf[4..8], offset, "entry length")?) as usize;
        if len > MAX_PAYLOAD {
            return Err(WalError::Corrupt {
                offset,
                reason: format!("payload length {len} exceeds maximum"),
            });
        }
        if buf.len() < HEADER_SIZE + len {
            return Ok(None);
        }
        let lsn = u64::from_le_bytes(field(&buf[8..16], offset, "entry lsn")?);
        let stored_crc = u32::from_le_bytes(field(&buf[16..20], offset, "entry checksum")?);
        let payload = &buf[HEADER_SIZE..HEADER_SIZE + len];
        let actual_crc = crc32_parts(&[&buf[8..16], payload]);
        if stored_crc != actual_crc {
            return Err(WalError::Corrupt {
                offset,
                reason: "checksum mismatch".to_owned(),
            });
        }
        Ok(Some((
            LogEntry {
                lsn,
                payload: payload.to_vec(),
            },
            HEADER_SIZE + len,
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn encode_decode_roundtrip() {
        let entry = LogEntry::new(7, vec![1, 2, 3, 4, 5]);
        let bytes = entry.encode();
        let (decoded, consumed) = LogEntry::decode(&bytes, 0).unwrap().unwrap();
        assert_eq!(decoded, entry);
        assert_eq!(consumed, bytes.len());
    }

    #[test]
    fn empty_payload_roundtrip() {
        let entry = LogEntry::new(1, Vec::new());
        let bytes = entry.encode();
        let (decoded, _) = LogEntry::decode(&bytes, 0).unwrap().unwrap();
        assert_eq!(decoded.payload, Vec::<u8>::new());
    }

    #[test]
    fn torn_tail_is_not_an_error() {
        let entry = LogEntry::new(3, vec![9; 100]);
        let bytes = entry.encode();
        // Cut anywhere inside the entry.
        for cut in [0, 3, HEADER_SIZE - 1, HEADER_SIZE + 10, bytes.len() - 1] {
            assert!(
                LogEntry::decode(&bytes[..cut], 0).unwrap().is_none(),
                "cut {cut}"
            );
        }
    }

    #[test]
    fn bad_magic_is_corruption() {
        let mut bytes = LogEntry::new(1, vec![1]).encode();
        bytes[0] ^= 0xFF;
        assert!(matches!(
            LogEntry::decode(&bytes, 42),
            Err(WalError::Corrupt { offset: 42, .. })
        ));
    }

    #[test]
    fn flipped_payload_bit_is_corruption() {
        let mut bytes = LogEntry::new(1, vec![0xAA; 16]).encode();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        assert!(matches!(
            LogEntry::decode(&bytes, 0),
            Err(WalError::Corrupt { .. })
        ));
    }

    #[test]
    fn insane_length_is_corruption() {
        let mut bytes = LogEntry::new(1, vec![1, 2, 3]).encode();
        bytes[4..8].copy_from_slice(&(u32::MAX).to_le_bytes());
        assert!(matches!(
            LogEntry::decode(&bytes, 0),
            Err(WalError::Corrupt { .. })
        ));
    }

    #[test]
    fn abort_record_roundtrip() {
        let record = AbortRecord { commit_ts: 7781 };
        let bytes = record.encode();
        assert_eq!(bytes.len(), ABORT_RECORD_SIZE);
        assert_eq!(payload_kind(&bytes, 0).unwrap(), PayloadKind::Abort);
        assert_eq!(AbortRecord::decode(&bytes, 0).unwrap(), record);
    }

    #[test]
    fn payload_kind_rejects_garbage() {
        assert!(payload_kind(&[], 3).is_err());
        assert!(payload_kind(&[0xFF], 3).is_err());
        assert_eq!(
            payload_kind(&[PAYLOAD_KIND_COMMIT, 1, 2], 0).unwrap(),
            PayloadKind::Commit
        );
    }

    #[test]
    fn abort_range_record_roundtrip_and_coverage() {
        let record = AbortRangeRecord {
            from_lsn: 5,
            to_lsn: 9,
        };
        let bytes = record.encode();
        assert_eq!(bytes.len(), ABORT_RANGE_RECORD_SIZE);
        assert_eq!(payload_kind(&bytes, 0).unwrap(), PayloadKind::AbortRange);
        assert_eq!(AbortRangeRecord::decode(&bytes, 0).unwrap(), record);
        assert!(!record.covers(4));
        assert!(record.covers(5));
        assert!(record.covers(9));
        assert!(!record.covers(10));
        assert!(AbortRangeRecord::decode(&bytes[..10], 0).is_err());
    }

    #[test]
    fn segment_header_record_roundtrip() {
        let record = SegmentHeaderRecord {
            segment_seq: 12,
            base_lsn: 4811,
            epoch: 3,
        };
        let bytes = record.encode();
        assert_eq!(bytes.len(), SEGMENT_HEADER_RECORD_SIZE);
        assert_eq!(payload_kind(&bytes, 0).unwrap(), PayloadKind::SegmentHeader);
        assert_eq!(SegmentHeaderRecord::decode(&bytes, 0).unwrap(), record);
        // Truncation, wrong kind and a flipped magic are all typed errors.
        assert!(SegmentHeaderRecord::decode(&bytes[..bytes.len() - 1], 0).is_err());
        let mut wrong_kind = bytes.clone();
        wrong_kind[0] = PAYLOAD_KIND_COMMIT;
        assert!(SegmentHeaderRecord::decode(&wrong_kind, 0).is_err());
        let mut bad_magic = bytes.clone();
        bad_magic[1] ^= 0xFF;
        assert!(SegmentHeaderRecord::decode(&bad_magic, 0).is_err());
    }

    #[test]
    fn checkpoint_records_roundtrip() {
        let begin = CheckpointBeginRecord {
            epoch: 7,
            begin_ts: 991,
        };
        let bytes = begin.encode();
        assert_eq!(bytes.len(), CHECKPOINT_BEGIN_RECORD_SIZE);
        assert_eq!(
            payload_kind(&bytes, 0).unwrap(),
            PayloadKind::CheckpointBegin
        );
        assert_eq!(CheckpointBeginRecord::decode(&bytes, 0).unwrap(), begin);
        assert!(CheckpointBeginRecord::decode(&bytes[..5], 0).is_err());

        let end = CheckpointEndRecord {
            epoch: 7,
            stable_ts: 1003,
        };
        let bytes = end.encode();
        assert_eq!(bytes.len(), CHECKPOINT_END_RECORD_SIZE);
        assert_eq!(payload_kind(&bytes, 0).unwrap(), PayloadKind::CheckpointEnd);
        assert_eq!(CheckpointEndRecord::decode(&bytes, 0).unwrap(), end);
        // Kinds are not interchangeable.
        assert!(CheckpointBeginRecord::decode(&bytes, 0).is_err());
    }

    #[test]
    fn truncated_abort_record_is_rejected() {
        let bytes = AbortRecord { commit_ts: 1 }.encode();
        assert!(AbortRecord::decode(&bytes[..bytes.len() - 1], 0).is_err());
        let mut wrong_kind = bytes.clone();
        wrong_kind[0] = PAYLOAD_KIND_COMMIT;
        assert!(AbortRecord::decode(&wrong_kind, 0).is_err());
    }

    proptest! {
        #[test]
        fn prop_roundtrip(lsn in 0u64..u64::MAX, payload in proptest::collection::vec(proptest::num::u8::ANY, 0..2048)) {
            let entry = LogEntry::new(lsn, payload);
            let bytes = entry.encode();
            let (decoded, consumed) = LogEntry::decode(&bytes, 0).unwrap().unwrap();
            prop_assert_eq!(consumed, bytes.len());
            prop_assert_eq!(decoded, entry);
        }
    }
}
