//! A small CRC-32 (IEEE 802.3 polynomial) implementation used to checksum
//! log entries. Implemented in-tree to keep the workspace's dependency set
//! minimal.

const POLY: u32 = 0xEDB8_8320;

/// Computes the CRC-32 checksum of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (POLY & mask);
        }
    }
    !crc
}

/// Computes the CRC-32 of several slices as if they were concatenated.
pub fn crc32_parts(parts: &[&[u8]]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for part in parts {
        for &byte in *part {
            crc ^= u32::from(byte);
            for _ in 0..8 {
                let mask = (crc & 1).wrapping_neg();
                crc = (crc >> 1) ^ (POLY & mask);
            }
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn known_vectors() {
        // Standard CRC-32 test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn parts_match_concatenation() {
        let whole = crc32(b"hello world");
        let split = crc32_parts(&[b"hello", b" ", b"world"]);
        assert_eq!(whole, split);
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = b"some log entry payload".to_vec();
        let before = crc32(&data);
        data[3] ^= 0x01;
        assert_ne!(before, crc32(&data));
    }

    proptest! {
        #[test]
        fn prop_crc_is_deterministic(data in proptest::collection::vec(proptest::num::u8::ANY, 0..512)) {
            prop_assert_eq!(crc32(&data), crc32(&data));
        }

        #[test]
        fn prop_parts_equal_whole(
            a in proptest::collection::vec(proptest::num::u8::ANY, 0..128),
            b in proptest::collection::vec(proptest::num::u8::ANY, 0..128),
        ) {
            let mut whole = a.clone();
            whole.extend_from_slice(&b);
            prop_assert_eq!(crc32(&whole), crc32_parts(&[&a, &b]));
        }
    }
}
