//! Per-client session state machines.
//!
//! A session owns at most one open [`Transaction`] — the server-side
//! image of the paper's client transaction. The `Transaction` type was
//! built for exactly this: it is owned, `Send + 'static`, and rolls
//! itself back on drop, so a session that dies with a transaction open
//! (client disconnect, idle timeout) releases its locks simply by
//! dropping the state.
//!
//! With no transaction open, requests autocommit: reads run under
//! `GraphDb::read` (a read-only snapshot that never touches the lock
//! manager) and writes under `GraphDb::write_with_retry` (which absorbs
//! transient write-write conflicts with jittered backoff). Inside an
//! explicit `BEGIN … COMMIT`, conflicts are *not* retried server-side —
//! the client has seen snapshot state and must decide itself, so they
//! surface as typed `CONFLICT` errors exactly as the paper's
//! first-updater-wins rule dictates.

use std::time::Instant;

use graphsi_core::{
    DbError, GraphDb, NodeId, PropertyValue, RelationshipId, Result, Row, Transaction,
};
use parking_lot::Mutex;

use crate::protocol::{ErrorCode, Request, Response, WireNode, WireRow};

/// One connected client's server-side state.
pub(crate) struct Session {
    /// The mutable state; the connection thread and the sweeper contend
    /// for this lock (the sweeper only ever `try_lock`s, so it can never
    /// stall a live session).
    pub(crate) inner: Mutex<SessionInner>,
}

/// The lock-protected part of a [`Session`].
pub(crate) struct SessionInner {
    /// The open explicit transaction, if any.
    pub(crate) txn: Option<Transaction>,
    /// Whether the open transaction was begun read-only (routing hint:
    /// read-only sessions stay off the write pool).
    pub(crate) txn_read_only: bool,
    /// Set by the sweeper when it aborts an idle transaction; the next
    /// request on the session reports `IDLE_TIMEOUT` once, then clears.
    pub(crate) timed_out: bool,
    /// Last time the session executed a request (sweeper input).
    pub(crate) last_activity: Instant,
}

impl Session {
    pub(crate) fn new() -> Self {
        Session {
            // Lock-order rank: see the README's lock-rank map. Held
            // across whole db calls, so it must rank below all core
            // locks; the sweeper only ever try_locks it.
            inner: Mutex::with_rank(
                SessionInner {
                    txn: None,
                    txn_read_only: false,
                    timed_out: false,
                    last_activity: Instant::now(),
                },
                150,
                "server.session",
            ),
        }
    }

    /// True when the session holds an open read-write transaction — such
    /// requests must stay on the write pool even if the individual
    /// request is a read, because the transaction may hold locks.
    pub(crate) fn holds_write_txn(&self) -> bool {
        let inner = self.inner.lock();
        inner.txn.is_some() && !inner.txn_read_only
    }

    /// Executes one request against this session.
    pub(crate) fn execute(&self, db: &GraphDb, request: Request) -> Response {
        let mut inner = self.inner.lock();
        inner.last_activity = Instant::now();

        // Surface a sweeper abort exactly once, instead of confusing the
        // client with an InvalidState on its next COMMIT.
        if inner.timed_out {
            inner.timed_out = false;
            return Response::Error {
                code: ErrorCode::IdleTimeout,
                message: "transaction aborted after idle timeout; its locks were released".into(),
            };
        }

        match request {
            Request::Begin {
                read_only,
                isolation,
            } => {
                if inner.txn.is_some() {
                    return invalid_state("a transaction is already open on this session");
                }
                let mut opts = db.txn().isolation(isolation);
                if read_only {
                    opts = opts.read_only();
                }
                inner.txn = Some(opts.begin());
                inner.txn_read_only = read_only;
                Response::Ok
            }
            Request::Commit => match inner.txn.take() {
                None => invalid_state("no transaction open on this session"),
                Some(txn) => match txn.commit() {
                    Ok(ts) => Response::Committed {
                        commit_ts: ts.raw(),
                    },
                    Err(e) => error_response(&e),
                },
            },
            Request::Rollback => match inner.txn.take() {
                None => invalid_state("no transaction open on this session"),
                Some(txn) => {
                    txn.rollback();
                    Response::Ok
                }
            },
            request => match inner.txn.as_mut() {
                Some(txn) => Self::execute_in_txn(txn, request),
                None => Self::execute_autocommit(db, request),
            },
        }
    }

    /// Runs a data request inside the session's open transaction.
    fn execute_in_txn(txn: &mut Transaction, request: Request) -> Response {
        match apply(txn, request) {
            Ok(response) => response,
            Err(e) => error_response(&e),
        }
    }

    /// Runs a data request with no open transaction: single-shot
    /// autocommit. Reads take the no-lock snapshot path; writes go
    /// through the retry loop so transient conflicts between autocommit
    /// writers never reach the client.
    fn execute_autocommit(db: &GraphDb, request: Request) -> Response {
        let result = if request_is_read(&request) {
            db.read(|txn| {
                // `apply` needs `&mut` only for the write ops, which
                // `request_is_read` already excluded.
                apply_read(txn, request.clone())
            })
        } else {
            db.write_with_retry(|txn| apply(txn, request.clone()))
        };
        match result {
            Ok(response) => response,
            Err(e) => error_response(&e),
        }
    }

    /// Called by the sweeper (with `inner` already locked) when the
    /// session idled past the deadline with a transaction open. Drops the
    /// transaction — `Transaction::drop` rolls it back, releasing every
    /// lock it held.
    pub(crate) fn abort_idle(inner: &mut SessionInner) {
        inner.txn = None;
        inner.txn_read_only = false;
        inner.timed_out = true;
    }
}

/// True for requests that never write (safe on a read-only snapshot).
pub(crate) fn request_is_read(request: &Request) -> bool {
    matches!(
        request,
        Request::GetNode { .. }
            | Request::NodeProperty { .. }
            | Request::LabelQuery { .. }
            | Request::RangeQuery { .. }
    )
}

/// Executes one data request against a transaction.
fn apply(txn: &mut Transaction, request: Request) -> Result<Response> {
    match request {
        Request::CreateNode { labels, properties } => {
            let label_refs: Vec<&str> = labels.iter().map(String::as_str).collect();
            let prop_refs: Vec<(&str, PropertyValue)> = properties
                .iter()
                .map(|(k, v)| (k.as_str(), v.clone()))
                .collect();
            let id = txn.create_node(&label_refs, &prop_refs)?;
            Ok(Response::NodeId { id: id.raw() })
        }
        Request::SetNodeProperty { id, key, value } => {
            txn.set_node_property(NodeId::new(id), &key, value)?;
            Ok(Response::Ok)
        }
        Request::RemoveNodeProperty { id, key } => {
            txn.remove_node_property(NodeId::new(id), &key)?;
            Ok(Response::Ok)
        }
        Request::DeleteNode { id } => {
            txn.delete_node(NodeId::new(id))?;
            Ok(Response::Ok)
        }
        Request::CreateRelationship {
            source,
            target,
            rel_type,
            properties,
        } => {
            let prop_refs: Vec<(&str, PropertyValue)> = properties
                .iter()
                .map(|(k, v)| (k.as_str(), v.clone()))
                .collect();
            let id = txn.create_relationship(
                NodeId::new(source),
                NodeId::new(target),
                &rel_type,
                &prop_refs,
            )?;
            Ok(Response::RelationshipId { id: id.raw() })
        }
        Request::DeleteRelationship { id } => {
            txn.delete_relationship(RelationshipId::new(id))?;
            Ok(Response::Ok)
        }
        read => apply_read(txn, read),
    }
}

/// Executes one read request (the subset valid on `&Transaction`).
fn apply_read(txn: &Transaction, request: Request) -> Result<Response> {
    match request {
        Request::GetNode { id } => {
            let node = txn.get_node(NodeId::new(id))?.map(|n| WireNode {
                id: n.id.raw(),
                labels: n.labels,
                properties: n.properties.into_iter().collect(),
            });
            Ok(Response::Node { node })
        }
        Request::NodeProperty { id, key } => {
            let value = txn.node_property(NodeId::new(id), &key)?;
            Ok(Response::Value { value })
        }
        Request::LabelQuery {
            label,
            limit,
            projection,
        } => {
            let mut q = txn.query().nodes_with_label(&label);
            if limit > 0 {
                q = q.limit(limit as usize);
            }
            if !projection.is_empty() {
                q = q.project(projection);
            }
            Ok(rows_response(q.rows()?))
        }
        Request::RangeQuery {
            key,
            lo,
            hi,
            limit,
            projection,
            order,
        } => {
            let mut q = txn.query();
            q = match (lo, hi) {
                (Some(lo), Some(hi)) => q.filter_property_range(&key, lo..=hi),
                (Some(lo), None) => q.filter_property_range(&key, lo..),
                (None, Some(hi)) => q.filter_property_range(&key, ..=hi),
                (None, None) => {
                    return Err(DbError::InvalidQuery(
                        "range query needs at least one bound".into(),
                    ))
                }
            };
            // Ordered + limited = a top-k the planner serves straight off
            // the index walk (early-exiting the cursor); plain limit stays
            // an unordered truncation.
            q = match (order, limit) {
                (0, 0) => q,
                (0, n) => q.limit(n as usize),
                (1, 0) => q.order_by(&key),
                (1, n) => q.top_k(&key, n as usize),
                (2, 0) => q.order_by_desc(&key),
                (2, n) => q.top_k_desc(&key, n as usize),
                (o, _) => {
                    return Err(DbError::InvalidQuery(format!(
                        "unknown range-query order {o}"
                    )))
                }
            };
            if !projection.is_empty() {
                q = q.project(projection);
            }
            Ok(rows_response(q.rows()?))
        }
        Request::Sleep { ms } => {
            std::thread::sleep(std::time::Duration::from_millis(u64::from(ms)));
            Ok(Response::Ok)
        }
        other => Err(DbError::InvalidQuery(format!(
            "request not valid here: {other:?}"
        ))),
    }
}

fn rows_response(rows: Vec<Row>) -> Response {
    Response::Rows {
        rows: rows
            .into_iter()
            .map(|r| WireRow {
                node: r.node.raw(),
                rel: r.rel.map(RelationshipId::raw),
                properties: r.properties,
            })
            .collect(),
    }
}

fn invalid_state(message: &str) -> Response {
    Response::Error {
        code: ErrorCode::InvalidState,
        message: message.into(),
    }
}

/// Maps a database error onto the wire's stable error classes.
pub(crate) fn error_response(e: &DbError) -> Response {
    let code = if e.is_conflict() {
        ErrorCode::Conflict
    } else {
        match e {
            DbError::NodeNotFound(_) | DbError::RelationshipNotFound(_) => ErrorCode::NotFound,
            DbError::ReadOnlyTransaction => ErrorCode::ReadOnly,
            DbError::TransactionClosed => ErrorCode::InvalidState,
            DbError::InvalidQuery(_) | DbError::ReservedName(_) => ErrorCode::Protocol,
            DbError::Internal(_) => ErrorCode::Internal,
            _ => ErrorCode::Internal,
        }
    };
    Response::Error {
        code,
        message: e.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphsi_core::{DbConfig, IsolationLevel};
    use graphsi_storage::test_util::TempDir;

    fn open_db(name: &str) -> (TempDir, GraphDb) {
        let dir = TempDir::new(name);
        let db = GraphDb::open(dir.path(), DbConfig::default()).unwrap();
        (dir, db)
    }

    #[test]
    fn autocommit_create_and_read_round_trip() {
        let (_dir, db) = open_db("session_autocommit");
        let session = Session::new();
        let resp = session.execute(
            &db,
            Request::CreateNode {
                labels: vec!["Person".into()],
                properties: vec![("age".into(), PropertyValue::Int(30))],
            },
        );
        let Response::NodeId { id } = resp else {
            panic!("unexpected response: {resp:?}");
        };
        let resp = session.execute(&db, Request::GetNode { id });
        let Response::Node { node: Some(node) } = resp else {
            panic!("unexpected response: {resp:?}");
        };
        assert_eq!(node.labels, vec!["Person".to_string()]);
        assert_eq!(
            node.properties,
            vec![("age".to_string(), PropertyValue::Int(30))]
        );
    }

    #[test]
    fn explicit_transaction_isolates_until_commit() {
        let (_dir, db) = open_db("session_txn");
        let writer = Session::new();
        let reader = Session::new();

        assert_eq!(
            writer.execute(
                &db,
                Request::Begin {
                    read_only: false,
                    isolation: IsolationLevel::SnapshotIsolation,
                }
            ),
            Response::Ok
        );
        let Response::NodeId { id } = writer.execute(
            &db,
            Request::CreateNode {
                labels: vec!["Draft".into()],
                properties: vec![],
            },
        ) else {
            panic!("create failed");
        };
        // Invisible to other sessions before commit.
        assert_eq!(
            reader.execute(&db, Request::GetNode { id }),
            Response::Node { node: None }
        );
        let Response::Committed { .. } = writer.execute(&db, Request::Commit) else {
            panic!("commit failed");
        };
        let Response::Node { node: Some(_) } = reader.execute(&db, Request::GetNode { id }) else {
            panic!("node invisible after commit");
        };
    }

    #[test]
    fn state_machine_rejects_out_of_order_commands() {
        let (_dir, db) = open_db("session_state");
        let session = Session::new();
        for bad in [Request::Commit, Request::Rollback] {
            let resp = session.execute(&db, bad);
            assert!(
                matches!(
                    resp,
                    Response::Error {
                        code: ErrorCode::InvalidState,
                        ..
                    }
                ),
                "expected InvalidState, got {resp:?}"
            );
        }
        session.execute(
            &db,
            Request::Begin {
                read_only: false,
                isolation: IsolationLevel::SnapshotIsolation,
            },
        );
        // Nested BEGIN.
        let resp = session.execute(
            &db,
            Request::Begin {
                read_only: false,
                isolation: IsolationLevel::SnapshotIsolation,
            },
        );
        assert!(matches!(
            resp,
            Response::Error {
                code: ErrorCode::InvalidState,
                ..
            }
        ));
    }

    #[test]
    fn read_only_transactions_reject_writes_with_typed_code() {
        let (_dir, db) = open_db("session_read_only");
        let session = Session::new();
        session.execute(
            &db,
            Request::Begin {
                read_only: true,
                isolation: IsolationLevel::SnapshotIsolation,
            },
        );
        assert!(!session.holds_write_txn());
        let resp = session.execute(
            &db,
            Request::CreateNode {
                labels: vec!["X".into()],
                properties: vec![],
            },
        );
        assert!(matches!(
            resp,
            Response::Error {
                code: ErrorCode::ReadOnly,
                ..
            }
        ));
    }

    #[test]
    fn conflicts_inside_explicit_transactions_surface_as_conflict() {
        let (_dir, db) = open_db("session_conflict");
        let mut setup = db.begin();
        let node = setup.create_node(&["Hot"], &[]).unwrap();
        setup.commit().unwrap();

        let s1 = Session::new();
        let s2 = Session::new();
        for s in [&s1, &s2] {
            s.execute(
                &db,
                Request::Begin {
                    read_only: false,
                    isolation: IsolationLevel::SnapshotIsolation,
                },
            );
        }
        assert!(s1.holds_write_txn());
        let ok = s1.execute(
            &db,
            Request::SetNodeProperty {
                id: node.raw(),
                key: "v".into(),
                value: PropertyValue::Int(1),
            },
        );
        assert_eq!(ok, Response::Ok);
        // The second writer hits first-updater-wins on the same node.
        let resp = s2.execute(
            &db,
            Request::SetNodeProperty {
                id: node.raw(),
                key: "v".into(),
                value: PropertyValue::Int(2),
            },
        );
        assert!(
            matches!(
                resp,
                Response::Error {
                    code: ErrorCode::Conflict,
                    ..
                }
            ),
            "expected Conflict, got {resp:?}"
        );
        assert!(matches!(
            s1.execute(&db, Request::Commit),
            Response::Committed { .. }
        ));
    }

    #[test]
    fn idle_abort_reports_timeout_once_then_recovers() {
        let (_dir, db) = open_db("session_idle");
        let session = Session::new();
        session.execute(
            &db,
            Request::Begin {
                read_only: false,
                isolation: IsolationLevel::SnapshotIsolation,
            },
        );
        {
            let mut inner = session.inner.lock();
            Session::abort_idle(&mut inner);
        }
        let resp = session.execute(&db, Request::Commit);
        assert!(matches!(
            resp,
            Response::Error {
                code: ErrorCode::IdleTimeout,
                ..
            }
        ));
        // The session is usable again afterwards.
        assert_eq!(
            session.execute(
                &db,
                Request::Begin {
                    read_only: false,
                    isolation: IsolationLevel::SnapshotIsolation,
                }
            ),
            Response::Ok
        );
        assert!(matches!(
            session.execute(&db, Request::Rollback),
            Response::Ok
        ));
    }

    #[test]
    fn range_query_rides_the_planner() {
        let (_dir, db) = open_db("session_range");
        let session = Session::new();
        for age in [10, 20, 30, 40] {
            session.execute(
                &db,
                Request::CreateNode {
                    labels: vec!["P".into()],
                    properties: vec![("age".into(), PropertyValue::Int(age))],
                },
            );
        }
        let resp = session.execute(
            &db,
            Request::RangeQuery {
                key: "age".into(),
                lo: Some(PropertyValue::Int(15)),
                hi: Some(PropertyValue::Int(35)),
                limit: 0,
                projection: vec!["age".into()],
                order: 0,
            },
        );
        let Response::Rows { rows } = resp else {
            panic!("unexpected response: {resp:?}");
        };
        let mut ages: Vec<i64> = rows
            .iter()
            .map(|r| match r.property("age") {
                Some(PropertyValue::Int(v)) => *v,
                other => panic!("bad projection: {other:?}"),
            })
            .collect();
        ages.sort_unstable();
        assert_eq!(ages, vec![20, 30]);
        // A range with no bounds is a protocol error.
        let resp = session.execute(
            &db,
            Request::RangeQuery {
                key: "age".into(),
                lo: None,
                hi: None,
                limit: 0,
                projection: vec![],
                order: 0,
            },
        );
        assert!(matches!(
            resp,
            Response::Error {
                code: ErrorCode::Protocol,
                ..
            }
        ));
    }

    #[test]
    fn ordered_range_query_serves_topk_off_the_index() {
        let (_dir, db) = open_db("session_topk");
        let session = Session::new();
        for score in [50, 10, 40, 20, 30] {
            session.execute(
                &db,
                Request::CreateNode {
                    labels: vec!["P".into()],
                    properties: vec![("score".into(), PropertyValue::Int(score))],
                },
            );
        }
        let scores = |resp: Response| -> Vec<i64> {
            let Response::Rows { rows } = resp else {
                panic!("unexpected response: {resp:?}");
            };
            rows.iter()
                .map(|r| match r.property("score") {
                    Some(PropertyValue::Int(v)) => *v,
                    other => panic!("bad projection: {other:?}"),
                })
                .collect()
        };
        // Descending top-3, served off the reverse index walk: wire order
        // IS the result order.
        let resp = session.execute(
            &db,
            Request::RangeQuery {
                key: "score".into(),
                lo: Some(PropertyValue::Int(0)),
                hi: None,
                limit: 3,
                projection: vec!["score".into()],
                order: 2,
            },
        );
        assert_eq!(scores(resp), vec![50, 40, 30]);
        // Ascending full order.
        let resp = session.execute(
            &db,
            Request::RangeQuery {
                key: "score".into(),
                lo: Some(PropertyValue::Int(15)),
                hi: Some(PropertyValue::Int(45)),
                limit: 0,
                projection: vec!["score".into()],
                order: 1,
            },
        );
        assert_eq!(scores(resp), vec![20, 30, 40]);
    }
}
