//! The serving layer: a concurrent TCP front-end over
//! [`graphsi_core::GraphDb`].
//!
//! The paper evaluates snapshot isolation inside a *server* — many
//! clients, each running transactions over a connection — while the
//! engine below this crate is an embedded library. This crate closes
//! that gap without changing the engine: `GraphDb` is a cheaply cloned
//! handle and `Transaction` is owned, `Send` and rolls back on drop, so
//! a network session can hold one across requests exactly like the
//! paper's client transactions.
//!
//! What lives here:
//!
//! - [`protocol`] — the length-prefixed wire format (hand-rolled
//!   little-endian encoding; no external serialisation).
//! - [`Server`] — accept loop, per-connection threads, bounded
//!   read/write worker pools, idle-session sweeper.
//! - [`Client`] — a minimal blocking client, used by the tests, the
//!   example and the saturation experiment.
//! - [`ServerMetrics`] — saturation counters (`sessions_active`,
//!   `rejected_overload`, queue-depth peak, log2 latency histogram)
//!   exposed together with the database counters via the `METRICS`
//!   command.
//!
//! Overload never queues invisibly: both admission points (session
//! limit at accept, bounded pool queue at dispatch) reject with a typed
//! `OVERLOADED` response the client can back off on.

#![warn(missing_docs)]

pub mod client;
pub mod metrics;
mod pool;
pub mod protocol;
mod server;
mod session;

pub use client::{Client, ClientError, ClientResult};
pub use metrics::{ServerMetrics, ServerMetricsSnapshot, LATENCY_BUCKETS};
pub use protocol::{ErrorCode, ProtoError, Request, Response, WireNode, WireRow};
pub use server::{Server, ServerConfig};
