//! `graphsi-serve` — stand-alone graphsi server.
//!
//! ```text
//! graphsi-serve --dir ./data --addr 127.0.0.1:7687 \
//!     --read-workers 2 --write-workers 2 --queue-depth 64 \
//!     --max-sessions 1024 --idle-timeout-ms 30000
//! ```
//!
//! Opens (or creates) the database under `--dir` and serves it until the
//! process is killed. Flags are parsed by hand — the tree takes no
//! external dependencies.

use std::time::Duration;

use graphsi_core::{DbConfig, GraphDb};
use graphsi_server::{Server, ServerConfig};

struct Args {
    dir: String,
    addr: String,
    config: ServerConfig,
}

fn usage() -> ! {
    eprintln!(
        "usage: graphsi-serve --dir <path> [--addr <host:port>] [--read-workers <n>]\n\
         \u{20}       [--write-workers <n>] [--queue-depth <n>] [--max-sessions <n>]\n\
         \u{20}       [--idle-timeout-ms <n>]"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        dir: String::new(),
        addr: "127.0.0.1:7687".into(),
        config: ServerConfig::default(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "--dir" => args.dir = value("--dir"),
            "--addr" => args.addr = value("--addr"),
            "--read-workers" => args.config.read_workers = parse_num(&value("--read-workers")),
            "--write-workers" => args.config.write_workers = parse_num(&value("--write-workers")),
            "--queue-depth" => args.config.queue_depth = parse_num(&value("--queue-depth")),
            "--max-sessions" => args.config.max_sessions = parse_num(&value("--max-sessions")),
            "--idle-timeout-ms" => {
                args.config.idle_timeout =
                    Duration::from_millis(parse_num::<u64>(&value("--idle-timeout-ms")))
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag: {other}");
                usage()
            }
        }
    }
    if args.dir.is_empty() {
        eprintln!("--dir is required");
        usage()
    }
    args
}

fn parse_num<T: std::str::FromStr>(s: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("invalid number: {s}");
        usage()
    })
}

fn main() {
    let args = parse_args();
    let db = match GraphDb::open(&args.dir, DbConfig::default()) {
        Ok(db) => db,
        Err(e) => {
            eprintln!("failed to open database at {}: {e}", args.dir);
            std::process::exit(1);
        }
    };
    let server = match Server::bind(db, &args.addr, args.config.clone()) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("failed to bind {}: {e}", args.addr);
            std::process::exit(1);
        }
    };
    println!(
        "graphsi-serve listening on {} (read workers {}, write workers {}, queue depth {}, \
         max sessions {}, idle timeout {:?})",
        server.local_addr(),
        args.config.read_workers,
        args.config.write_workers,
        args.config.queue_depth,
        args.config.max_sessions,
        args.config.idle_timeout,
    );
    // Serve until killed.
    loop {
        std::thread::park();
    }
}
