//! The wire protocol: length-prefixed frames carrying manually encoded
//! request/response payloads.
//!
//! Every frame is:
//!
//! ```text
//! +---------+---------+------------------+
//! | magic   | len     | payload (len)    |
//! | u32 LE  | u32 LE  | bytes            |
//! +---------+---------+------------------+
//! ```
//!
//! and every payload starts with a one-byte opcode, in the same manual
//! little-endian style `wal::record` frames log entries with (the
//! environment is offline — no serde). TCP already checksums the stream,
//! so unlike the WAL frame there is no CRC; the magic word still rejects
//! desynchronised or non-protocol peers early.
//!
//! The protocol is strictly request→response: a client sends one frame
//! and reads exactly one frame back, so neither side ever needs request
//! IDs or reordering. `PING`, `HEALTH`, `METRICS` and `VERIFY` are answered inline
//! by the connection thread (probes must respond even when the worker
//! pools are saturated); everything else is executed by a pooled worker
//! and may be rejected with [`Response::Overloaded`] when the admission
//! queue is full.

use std::io::{Read, Write};

use graphsi_core::{IsolationLevel, PropertyValue};

/// Magic marker beginning every frame ("GSP1").
pub const FRAME_MAGIC: u32 = 0x4753_5031;

/// Size of the fixed frame header in bytes.
pub const FRAME_HEADER_SIZE: usize = 8;

/// Maximum payload size accepted (guards against garbage lengths from a
/// desynchronised peer).
pub const MAX_FRAME_PAYLOAD: usize = 16 * 1024 * 1024;

/// Errors of the wire layer.
#[derive(Debug)]
pub enum ProtoError {
    /// The underlying socket failed (including clean disconnects, which
    /// surface as `UnexpectedEof`).
    Io(std::io::Error),
    /// A frame or payload violated the format.
    Malformed(String),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "protocol i/o error: {e}"),
            ProtoError::Malformed(reason) => write!(f, "malformed frame: {reason}"),
        }
    }
}

impl std::error::Error for ProtoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtoError::Io(e) => Some(e),
            ProtoError::Malformed(_) => None,
        }
    }
}

impl From<std::io::Error> for ProtoError {
    fn from(e: std::io::Error) -> Self {
        ProtoError::Io(e)
    }
}

/// Result alias of the wire layer.
pub type ProtoResult<T> = std::result::Result<T, ProtoError>;

/// Writes one frame (header + payload) to `w` and flushes it.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> ProtoResult<()> {
    debug_assert!(payload.len() <= MAX_FRAME_PAYLOAD);
    let mut buf = Vec::with_capacity(FRAME_HEADER_SIZE + payload.len());
    buf.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(payload);
    w.write_all(&buf)?;
    w.flush()?;
    Ok(())
}

/// Incremental frame decoder: accumulates bytes across reads, so it works
/// both on blocking sockets (the client) and on sockets with a read
/// timeout (the server's connection threads, which poll for shutdown
/// between timeouts).
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
}

impl FrameReader {
    /// Creates an empty reader.
    pub fn new() -> Self {
        Self::default()
    }

    /// Tries to extract one complete frame payload, reading more bytes
    /// from `r` as needed.
    ///
    /// Returns `Ok(Some(payload))` when a frame is complete,
    /// `Ok(None)` when the read timed out before a frame completed (the
    /// caller polls again), and `Err` on disconnect (`UnexpectedEof`),
    /// I/O failure or framing violation.
    pub fn poll_frame(&mut self, r: &mut impl Read) -> ProtoResult<Option<Vec<u8>>> {
        loop {
            if let Some(payload) = self.take_complete_frame()? {
                return Ok(Some(payload));
            }
            let mut chunk = [0u8; 4096];
            match r.read(&mut chunk) {
                Ok(0) => {
                    return Err(ProtoError::Io(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "peer closed the connection",
                    )))
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Ok(None)
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(ProtoError::Io(e)),
            }
        }
    }

    /// Blocking form of [`FrameReader::poll_frame`]: loops until a frame
    /// completes or the connection fails. Only sensible on sockets with
    /// no read timeout (the client side).
    pub fn read_frame(&mut self, r: &mut impl Read) -> ProtoResult<Vec<u8>> {
        loop {
            if let Some(payload) = self.poll_frame(r)? {
                return Ok(payload);
            }
        }
    }

    fn take_complete_frame(&mut self) -> ProtoResult<Option<Vec<u8>>> {
        if self.buf.len() < FRAME_HEADER_SIZE {
            return Ok(None);
        }
        let magic = u32::from_le_bytes(
            self.buf[0..4]
                .try_into()
                .map_err(|_| bad_field_width("frame magic"))?,
        );
        if magic != FRAME_MAGIC {
            return Err(ProtoError::Malformed(format!("bad magic {magic:#010x}")));
        }
        let len = u32::from_le_bytes(
            self.buf[4..8]
                .try_into()
                .map_err(|_| bad_field_width("frame length"))?,
        ) as usize;
        if len > MAX_FRAME_PAYLOAD {
            return Err(ProtoError::Malformed(format!(
                "payload length {len} exceeds maximum"
            )));
        }
        if self.buf.len() < FRAME_HEADER_SIZE + len {
            return Ok(None);
        }
        let payload = self.buf[FRAME_HEADER_SIZE..FRAME_HEADER_SIZE + len].to_vec();
        self.buf.drain(..FRAME_HEADER_SIZE + len);
        Ok(Some(payload))
    }
}

// ---------------------------------------------------------------------
// Payload primitives
// ---------------------------------------------------------------------

fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_value(out: &mut Vec<u8>, v: &PropertyValue) {
    match v {
        PropertyValue::Bool(b) => {
            put_u8(out, 0);
            put_u8(out, u8::from(*b));
        }
        PropertyValue::Int(i) => {
            put_u8(out, 1);
            out.extend_from_slice(&i.to_le_bytes());
        }
        PropertyValue::Float(f) => {
            put_u8(out, 2);
            out.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        PropertyValue::String(s) => {
            put_u8(out, 3);
            put_str(out, s);
        }
    }
}

fn put_opt_value(out: &mut Vec<u8>, v: &Option<PropertyValue>) {
    match v {
        None => put_u8(out, 0),
        Some(v) => {
            put_u8(out, 1);
            put_value(out, v);
        }
    }
}

fn put_strings(out: &mut Vec<u8>, items: &[String]) {
    put_u32(out, items.len() as u32);
    for s in items {
        put_str(out, s);
    }
}

fn put_props(out: &mut Vec<u8>, props: &[(String, PropertyValue)]) {
    put_u32(out, props.len() as u32);
    for (k, v) in props {
        put_str(out, k);
        put_value(out, v);
    }
}

/// Bounds-checked payload cursor used by every decoder.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

fn bad_field_width(what: &str) -> ProtoError {
    ProtoError::Malformed(format!("{what} field has the wrong byte width"))
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn bytes(&mut self, n: usize) -> ProtoResult<&'a [u8]> {
        if self.buf.len() - self.pos < n {
            return Err(ProtoError::Malformed(format!(
                "payload truncated at offset {} (wanted {n} more bytes)",
                self.pos
            )));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> ProtoResult<u8> {
        Ok(self.bytes(1)?[0])
    }

    fn u32(&mut self) -> ProtoResult<u32> {
        let bytes = self
            .bytes(4)?
            .try_into()
            .map_err(|_| bad_field_width("u32"))?;
        Ok(u32::from_le_bytes(bytes))
    }

    fn u64(&mut self) -> ProtoResult<u64> {
        let bytes = self
            .bytes(8)?
            .try_into()
            .map_err(|_| bad_field_width("u64"))?;
        Ok(u64::from_le_bytes(bytes))
    }

    fn i64(&mut self) -> ProtoResult<i64> {
        let bytes = self
            .bytes(8)?
            .try_into()
            .map_err(|_| bad_field_width("i64"))?;
        Ok(i64::from_le_bytes(bytes))
    }

    fn string(&mut self) -> ProtoResult<String> {
        let len = self.u32()? as usize;
        let bytes = self.bytes(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| ProtoError::Malformed("invalid utf-8 in string".into()))
    }

    fn value(&mut self) -> ProtoResult<PropertyValue> {
        match self.u8()? {
            0 => Ok(PropertyValue::Bool(self.u8()? != 0)),
            1 => Ok(PropertyValue::Int(self.i64()?)),
            2 => Ok(PropertyValue::Float(f64::from_bits(self.u64()?))),
            3 => Ok(PropertyValue::String(self.string()?)),
            tag => Err(ProtoError::Malformed(format!("unknown value tag {tag}"))),
        }
    }

    fn opt_value(&mut self) -> ProtoResult<Option<PropertyValue>> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.value()?)),
            tag => Err(ProtoError::Malformed(format!("bad option tag {tag}"))),
        }
    }

    fn strings(&mut self) -> ProtoResult<Vec<String>> {
        let n = self.u32()? as usize;
        let mut out = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            out.push(self.string()?);
        }
        Ok(out)
    }

    fn props(&mut self) -> ProtoResult<Vec<(String, PropertyValue)>> {
        let n = self.u32()? as usize;
        let mut out = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            let key = self.string()?;
            let value = self.value()?;
            out.push((key, value));
        }
        Ok(out)
    }

    fn finish(&self) -> ProtoResult<()> {
        if self.pos != self.buf.len() {
            return Err(ProtoError::Malformed(format!(
                "{} trailing bytes after payload",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------

mod req_op {
    pub const PING: u8 = 0x01;
    pub const HEALTH: u8 = 0x02;
    pub const METRICS: u8 = 0x03;
    pub const VERIFY: u8 = 0x04;
    pub const BEGIN: u8 = 0x10;
    pub const COMMIT: u8 = 0x11;
    pub const ROLLBACK: u8 = 0x12;
    pub const CREATE_NODE: u8 = 0x20;
    pub const GET_NODE: u8 = 0x21;
    pub const SET_NODE_PROPERTY: u8 = 0x22;
    pub const REMOVE_NODE_PROPERTY: u8 = 0x23;
    pub const DELETE_NODE: u8 = 0x24;
    pub const CREATE_RELATIONSHIP: u8 = 0x25;
    pub const DELETE_RELATIONSHIP: u8 = 0x26;
    pub const NODE_PROPERTY: u8 = 0x27;
    pub const LABEL_QUERY: u8 = 0x30;
    pub const RANGE_QUERY: u8 = 0x31;
    pub const SLEEP: u8 = 0x40;
}

/// One client request. See the module docs for the framing; the session
/// state machine in [`crate::session`] defines the semantics.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Liveness probe, answered inline (never queued, never shed).
    Ping,
    /// Health probe: readiness plus a few load gauges, answered inline.
    Health,
    /// Plaintext metrics dump (`name value` lines: the server's own
    /// `server_*` counters followed by the database counters in
    /// `DbMetricsSnapshot::to_text` format), answered inline.
    Metrics,
    /// Runs the online integrity verifier and returns its plaintext
    /// report (`VerifyReport::to_text` format). Answered inline like the
    /// other admin probes — the verifier takes its own read snapshot, so
    /// it never touches the session's transaction state.
    Verify,
    /// Opens an explicit transaction on this session.
    Begin {
        /// Read-only snapshot transaction: routed to the read pool, never
        /// touches the lock manager.
        read_only: bool,
        /// Isolation level for the transaction.
        isolation: IsolationLevel,
    },
    /// Commits the session's open transaction.
    Commit,
    /// Rolls the session's open transaction back.
    Rollback,
    /// Creates a node (autocommits when no transaction is open).
    CreateNode {
        /// Label names.
        labels: Vec<String>,
        /// Initial properties.
        properties: Vec<(String, PropertyValue)>,
    },
    /// Reads a node with all labels and properties.
    GetNode {
        /// Node ID.
        id: u64,
    },
    /// Sets one node property (autocommits when no transaction is open).
    SetNodeProperty {
        /// Node ID.
        id: u64,
        /// Property name.
        key: String,
        /// New value.
        value: PropertyValue,
    },
    /// Removes one node property.
    RemoveNodeProperty {
        /// Node ID.
        id: u64,
        /// Property name.
        key: String,
    },
    /// Deletes a node.
    DeleteNode {
        /// Node ID.
        id: u64,
    },
    /// Creates a relationship.
    CreateRelationship {
        /// Source node ID.
        source: u64,
        /// Target node ID.
        target: u64,
        /// Relationship type name.
        rel_type: String,
        /// Initial properties.
        properties: Vec<(String, PropertyValue)>,
    },
    /// Deletes a relationship.
    DeleteRelationship {
        /// Relationship ID.
        id: u64,
    },
    /// Reads one property of a node.
    NodeProperty {
        /// Node ID.
        id: u64,
        /// Property name.
        key: String,
    },
    /// Streams the nodes carrying a label (index-backed), optionally
    /// projecting properties per row.
    LabelQuery {
        /// Label name.
        label: String,
        /// Maximum rows returned (0 = unlimited).
        limit: u32,
        /// Property names to project per row (empty = none).
        projection: Vec<String>,
    },
    /// Streams the nodes whose property lies in an inclusive range,
    /// riding the planner's range-postings pushdown. At least one bound
    /// must be present.
    RangeQuery {
        /// Property name.
        key: String,
        /// Inclusive lower bound.
        lo: Option<PropertyValue>,
        /// Inclusive upper bound.
        hi: Option<PropertyValue>,
        /// Maximum rows returned (0 = unlimited).
        limit: u32,
        /// Property names to project per row (empty = none).
        projection: Vec<String>,
        /// Row ordering over `key`: `0` = unordered, `1` = ascending,
        /// `2` = descending. With a nonzero `limit`, an ordered query is a
        /// top-k the planner serves straight off the index walk.
        order: u8,
    },
    /// Testing/debug aid: occupies a pooled worker for `ms` milliseconds
    /// (the admission-control analogue of the core's
    /// `inject_wal_sync_failures` hook — it lets tests saturate the
    /// worker pool deterministically).
    Sleep {
        /// How long the worker sleeps.
        ms: u32,
    },
}

impl Request {
    /// Serialises the request payload (opcode + body).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Ping => put_u8(&mut out, req_op::PING),
            Request::Health => put_u8(&mut out, req_op::HEALTH),
            Request::Metrics => put_u8(&mut out, req_op::METRICS),
            Request::Verify => put_u8(&mut out, req_op::VERIFY),
            Request::Begin {
                read_only,
                isolation,
            } => {
                put_u8(&mut out, req_op::BEGIN);
                put_u8(&mut out, u8::from(*read_only));
                put_u8(
                    &mut out,
                    match isolation {
                        IsolationLevel::SnapshotIsolation => 0,
                        IsolationLevel::ReadCommitted => 1,
                    },
                );
            }
            Request::Commit => put_u8(&mut out, req_op::COMMIT),
            Request::Rollback => put_u8(&mut out, req_op::ROLLBACK),
            Request::CreateNode { labels, properties } => {
                put_u8(&mut out, req_op::CREATE_NODE);
                put_strings(&mut out, labels);
                put_props(&mut out, properties);
            }
            Request::GetNode { id } => {
                put_u8(&mut out, req_op::GET_NODE);
                put_u64(&mut out, *id);
            }
            Request::SetNodeProperty { id, key, value } => {
                put_u8(&mut out, req_op::SET_NODE_PROPERTY);
                put_u64(&mut out, *id);
                put_str(&mut out, key);
                put_value(&mut out, value);
            }
            Request::RemoveNodeProperty { id, key } => {
                put_u8(&mut out, req_op::REMOVE_NODE_PROPERTY);
                put_u64(&mut out, *id);
                put_str(&mut out, key);
            }
            Request::DeleteNode { id } => {
                put_u8(&mut out, req_op::DELETE_NODE);
                put_u64(&mut out, *id);
            }
            Request::CreateRelationship {
                source,
                target,
                rel_type,
                properties,
            } => {
                put_u8(&mut out, req_op::CREATE_RELATIONSHIP);
                put_u64(&mut out, *source);
                put_u64(&mut out, *target);
                put_str(&mut out, rel_type);
                put_props(&mut out, properties);
            }
            Request::DeleteRelationship { id } => {
                put_u8(&mut out, req_op::DELETE_RELATIONSHIP);
                put_u64(&mut out, *id);
            }
            Request::NodeProperty { id, key } => {
                put_u8(&mut out, req_op::NODE_PROPERTY);
                put_u64(&mut out, *id);
                put_str(&mut out, key);
            }
            Request::LabelQuery {
                label,
                limit,
                projection,
            } => {
                put_u8(&mut out, req_op::LABEL_QUERY);
                put_str(&mut out, label);
                put_u32(&mut out, *limit);
                put_strings(&mut out, projection);
            }
            Request::RangeQuery {
                key,
                lo,
                hi,
                limit,
                projection,
                order,
            } => {
                put_u8(&mut out, req_op::RANGE_QUERY);
                put_str(&mut out, key);
                put_opt_value(&mut out, lo);
                put_opt_value(&mut out, hi);
                put_u32(&mut out, *limit);
                put_strings(&mut out, projection);
                put_u8(&mut out, *order);
            }
            Request::Sleep { ms } => {
                put_u8(&mut out, req_op::SLEEP);
                put_u32(&mut out, *ms);
            }
        }
        out
    }

    /// Deserialises a request payload.
    pub fn decode(payload: &[u8]) -> ProtoResult<Self> {
        let mut c = Cursor::new(payload);
        let request = match c.u8()? {
            req_op::PING => Request::Ping,
            req_op::HEALTH => Request::Health,
            req_op::METRICS => Request::Metrics,
            req_op::VERIFY => Request::Verify,
            req_op::BEGIN => Request::Begin {
                read_only: c.u8()? != 0,
                isolation: match c.u8()? {
                    0 => IsolationLevel::SnapshotIsolation,
                    1 => IsolationLevel::ReadCommitted,
                    other => {
                        return Err(ProtoError::Malformed(format!(
                            "unknown isolation level {other}"
                        )))
                    }
                },
            },
            req_op::COMMIT => Request::Commit,
            req_op::ROLLBACK => Request::Rollback,
            req_op::CREATE_NODE => Request::CreateNode {
                labels: c.strings()?,
                properties: c.props()?,
            },
            req_op::GET_NODE => Request::GetNode { id: c.u64()? },
            req_op::SET_NODE_PROPERTY => Request::SetNodeProperty {
                id: c.u64()?,
                key: c.string()?,
                value: c.value()?,
            },
            req_op::REMOVE_NODE_PROPERTY => Request::RemoveNodeProperty {
                id: c.u64()?,
                key: c.string()?,
            },
            req_op::DELETE_NODE => Request::DeleteNode { id: c.u64()? },
            req_op::CREATE_RELATIONSHIP => Request::CreateRelationship {
                source: c.u64()?,
                target: c.u64()?,
                rel_type: c.string()?,
                properties: c.props()?,
            },
            req_op::DELETE_RELATIONSHIP => Request::DeleteRelationship { id: c.u64()? },
            req_op::NODE_PROPERTY => Request::NodeProperty {
                id: c.u64()?,
                key: c.string()?,
            },
            req_op::LABEL_QUERY => Request::LabelQuery {
                label: c.string()?,
                limit: c.u32()?,
                projection: c.strings()?,
            },
            req_op::RANGE_QUERY => Request::RangeQuery {
                key: c.string()?,
                lo: c.opt_value()?,
                hi: c.opt_value()?,
                limit: c.u32()?,
                projection: c.strings()?,
                order: match c.u8()? {
                    o @ 0..=2 => o,
                    other => {
                        return Err(ProtoError::Malformed(format!(
                            "unknown range-query order {other}"
                        )))
                    }
                },
            },
            req_op::SLEEP => Request::Sleep { ms: c.u32()? },
            op => {
                return Err(ProtoError::Malformed(format!(
                    "unknown request op {op:#04x}"
                )))
            }
        };
        c.finish()?;
        Ok(request)
    }
}

// ---------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------

mod resp_op {
    pub const OK: u8 = 0x01;
    pub const PONG: u8 = 0x02;
    pub const COMMITTED: u8 = 0x03;
    pub const NODE_ID: u8 = 0x04;
    pub const RELATIONSHIP_ID: u8 = 0x05;
    pub const NODE: u8 = 0x06;
    pub const VALUE: u8 = 0x07;
    pub const ROWS: u8 = 0x08;
    pub const TEXT: u8 = 0x09;
    pub const ERROR: u8 = 0x0A;
    pub const OVERLOADED: u8 = 0x0B;
}

/// Typed error classes a session can fail a request with, stable across
/// the wire (message texts are informational only).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// Malformed or semantically invalid request.
    Protocol = 1,
    /// Retryable concurrency conflict (write-write conflict, deadlock,
    /// lock timeout) — begin again and retry.
    Conflict = 2,
    /// Entity not found in the session's snapshot.
    NotFound = 3,
    /// The request is invalid in the session's current transaction state
    /// (e.g. `COMMIT` without `BEGIN`, nested `BEGIN`).
    InvalidState = 4,
    /// The session's transaction sat idle past the server's idle timeout
    /// and was aborted; its locks are released. Begin a new transaction.
    IdleTimeout = 5,
    /// A write was attempted through a read-only transaction.
    ReadOnly = 6,
    /// Any other server-side failure.
    Internal = 7,
}

impl ErrorCode {
    fn from_u8(v: u8) -> ProtoResult<Self> {
        Ok(match v {
            1 => ErrorCode::Protocol,
            2 => ErrorCode::Conflict,
            3 => ErrorCode::NotFound,
            4 => ErrorCode::InvalidState,
            5 => ErrorCode::IdleTimeout,
            6 => ErrorCode::ReadOnly,
            7 => ErrorCode::Internal,
            other => return Err(ProtoError::Malformed(format!("unknown error code {other}"))),
        })
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            ErrorCode::Protocol => "PROTOCOL",
            ErrorCode::Conflict => "CONFLICT",
            ErrorCode::NotFound => "NOT_FOUND",
            ErrorCode::InvalidState => "INVALID_STATE",
            ErrorCode::IdleTimeout => "IDLE_TIMEOUT",
            ErrorCode::ReadOnly => "READ_ONLY",
            ErrorCode::Internal => "INTERNAL",
        };
        f.write_str(name)
    }
}

/// A node materialised for the wire.
#[derive(Clone, Debug, PartialEq)]
pub struct WireNode {
    /// Node ID.
    pub id: u64,
    /// Label names.
    pub labels: Vec<String>,
    /// Properties as `(name, value)` pairs, sorted by name.
    pub properties: Vec<(String, PropertyValue)>,
}

/// One query result row: the node, the relationship the last expansion
/// traversed (absent for source rows) and the projected properties.
#[derive(Clone, Debug, PartialEq)]
pub struct WireRow {
    /// Result node ID.
    pub node: u64,
    /// Traversed relationship ID, if the query expanded.
    pub rel: Option<u64>,
    /// Projected `(name, value)` pairs, in projection order.
    pub properties: Vec<(String, PropertyValue)>,
}

impl WireRow {
    /// The projected value of `name`, if present.
    pub fn property(&self, name: &str) -> Option<&PropertyValue> {
        self.properties
            .iter()
            .find_map(|(n, v)| (n == name).then_some(v))
    }
}

/// One server response.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Success with no payload.
    Ok,
    /// Answer to [`Request::Ping`].
    Pong,
    /// A commit succeeded at this timestamp.
    Committed {
        /// The commit timestamp (raw).
        commit_ts: u64,
    },
    /// A node was created.
    NodeId {
        /// The new node's ID.
        id: u64,
    },
    /// A relationship was created.
    RelationshipId {
        /// The new relationship's ID.
        id: u64,
    },
    /// Answer to [`Request::GetNode`]; `None` when the node is invisible
    /// to the session's snapshot.
    Node {
        /// The node, if visible.
        node: Option<WireNode>,
    },
    /// Answer to [`Request::NodeProperty`].
    Value {
        /// The value, if the property is present.
        value: Option<PropertyValue>,
    },
    /// Answer to the query requests.
    Rows {
        /// Result rows, in stream order.
        rows: Vec<WireRow>,
    },
    /// Plaintext answer (`HEALTH`, `METRICS`, `VERIFY`).
    Text {
        /// The text.
        text: String,
    },
    /// The request failed.
    Error {
        /// Stable error class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// The request was **rejected before execution** because an admission
    /// limit was hit (worker-pool queue full, or session limit reached at
    /// connect time). Nothing was executed; the client may back off and
    /// retry.
    Overloaded {
        /// Which limit rejected the request.
        message: String,
    },
}

impl Response {
    /// Serialises the response payload (opcode + body).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::Ok => put_u8(&mut out, resp_op::OK),
            Response::Pong => put_u8(&mut out, resp_op::PONG),
            Response::Committed { commit_ts } => {
                put_u8(&mut out, resp_op::COMMITTED);
                put_u64(&mut out, *commit_ts);
            }
            Response::NodeId { id } => {
                put_u8(&mut out, resp_op::NODE_ID);
                put_u64(&mut out, *id);
            }
            Response::RelationshipId { id } => {
                put_u8(&mut out, resp_op::RELATIONSHIP_ID);
                put_u64(&mut out, *id);
            }
            Response::Node { node } => {
                put_u8(&mut out, resp_op::NODE);
                match node {
                    None => put_u8(&mut out, 0),
                    Some(n) => {
                        put_u8(&mut out, 1);
                        put_u64(&mut out, n.id);
                        put_strings(&mut out, &n.labels);
                        put_props(&mut out, &n.properties);
                    }
                }
            }
            Response::Value { value } => {
                put_u8(&mut out, resp_op::VALUE);
                put_opt_value(&mut out, value);
            }
            Response::Rows { rows } => {
                put_u8(&mut out, resp_op::ROWS);
                put_u32(&mut out, rows.len() as u32);
                for row in rows {
                    put_u64(&mut out, row.node);
                    match row.rel {
                        None => put_u8(&mut out, 0),
                        Some(rel) => {
                            put_u8(&mut out, 1);
                            put_u64(&mut out, rel);
                        }
                    }
                    put_props(&mut out, &row.properties);
                }
            }
            Response::Text { text } => {
                put_u8(&mut out, resp_op::TEXT);
                put_str(&mut out, text);
            }
            Response::Error { code, message } => {
                put_u8(&mut out, resp_op::ERROR);
                put_u8(&mut out, *code as u8);
                put_str(&mut out, message);
            }
            Response::Overloaded { message } => {
                put_u8(&mut out, resp_op::OVERLOADED);
                put_str(&mut out, message);
            }
        }
        out
    }

    /// Deserialises a response payload.
    pub fn decode(payload: &[u8]) -> ProtoResult<Self> {
        let mut c = Cursor::new(payload);
        let response = match c.u8()? {
            resp_op::OK => Response::Ok,
            resp_op::PONG => Response::Pong,
            resp_op::COMMITTED => Response::Committed {
                commit_ts: c.u64()?,
            },
            resp_op::NODE_ID => Response::NodeId { id: c.u64()? },
            resp_op::RELATIONSHIP_ID => Response::RelationshipId { id: c.u64()? },
            resp_op::NODE => Response::Node {
                node: match c.u8()? {
                    0 => None,
                    1 => Some(WireNode {
                        id: c.u64()?,
                        labels: c.strings()?,
                        properties: c.props()?,
                    }),
                    tag => return Err(ProtoError::Malformed(format!("bad option tag {tag}"))),
                },
            },
            resp_op::VALUE => Response::Value {
                value: c.opt_value()?,
            },
            resp_op::ROWS => {
                let n = c.u32()? as usize;
                let mut rows = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    let node = c.u64()?;
                    let rel = match c.u8()? {
                        0 => None,
                        1 => Some(c.u64()?),
                        tag => return Err(ProtoError::Malformed(format!("bad option tag {tag}"))),
                    };
                    let properties = c.props()?;
                    rows.push(WireRow {
                        node,
                        rel,
                        properties,
                    });
                }
                Response::Rows { rows }
            }
            resp_op::TEXT => Response::Text { text: c.string()? },
            resp_op::ERROR => Response::Error {
                code: ErrorCode::from_u8(c.u8()?)?,
                message: c.string()?,
            },
            resp_op::OVERLOADED => Response::Overloaded {
                message: c.string()?,
            },
            op => {
                return Err(ProtoError::Malformed(format!(
                    "unknown response op {op:#04x}"
                )))
            }
        };
        c.finish()?;
        Ok(response)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: Request) {
        let bytes = req.encode();
        assert_eq!(Request::decode(&bytes).unwrap(), req);
    }

    fn roundtrip_response(resp: Response) {
        let bytes = resp.encode();
        assert_eq!(Response::decode(&bytes).unwrap(), resp);
    }

    #[test]
    fn every_request_round_trips() {
        roundtrip_request(Request::Ping);
        roundtrip_request(Request::Health);
        roundtrip_request(Request::Metrics);
        roundtrip_request(Request::Verify);
        roundtrip_request(Request::Begin {
            read_only: true,
            isolation: IsolationLevel::ReadCommitted,
        });
        roundtrip_request(Request::Begin {
            read_only: false,
            isolation: IsolationLevel::SnapshotIsolation,
        });
        roundtrip_request(Request::Commit);
        roundtrip_request(Request::Rollback);
        roundtrip_request(Request::CreateNode {
            labels: vec!["Person".into(), "Admin".into()],
            properties: vec![
                ("name".into(), PropertyValue::String("ada".into())),
                ("age".into(), PropertyValue::Int(36)),
                ("score".into(), PropertyValue::Float(0.5)),
                ("active".into(), PropertyValue::Bool(true)),
            ],
        });
        roundtrip_request(Request::GetNode { id: 7 });
        roundtrip_request(Request::SetNodeProperty {
            id: 7,
            key: "age".into(),
            value: PropertyValue::Int(37),
        });
        roundtrip_request(Request::RemoveNodeProperty {
            id: 7,
            key: "age".into(),
        });
        roundtrip_request(Request::DeleteNode { id: 7 });
        roundtrip_request(Request::CreateRelationship {
            source: 1,
            target: 2,
            rel_type: "KNOWS".into(),
            properties: vec![("since".into(), PropertyValue::Int(2016))],
        });
        roundtrip_request(Request::DeleteRelationship { id: 3 });
        roundtrip_request(Request::NodeProperty {
            id: 7,
            key: "age".into(),
        });
        roundtrip_request(Request::LabelQuery {
            label: "Person".into(),
            limit: 10,
            projection: vec!["age".into()],
        });
        roundtrip_request(Request::RangeQuery {
            key: "age".into(),
            lo: Some(PropertyValue::Int(18)),
            hi: None,
            limit: 0,
            projection: vec![],
            order: 0,
        });
        roundtrip_request(Request::RangeQuery {
            key: "score".into(),
            lo: None,
            hi: Some(PropertyValue::Int(100)),
            limit: 10,
            projection: vec!["score".into()],
            order: 2,
        });
        roundtrip_request(Request::Sleep { ms: 25 });
    }

    #[test]
    fn every_response_round_trips() {
        roundtrip_response(Response::Ok);
        roundtrip_response(Response::Pong);
        roundtrip_response(Response::Committed { commit_ts: 42 });
        roundtrip_response(Response::NodeId { id: 9 });
        roundtrip_response(Response::RelationshipId { id: 4 });
        roundtrip_response(Response::Node { node: None });
        roundtrip_response(Response::Node {
            node: Some(WireNode {
                id: 9,
                labels: vec!["Person".into()],
                properties: vec![("age".into(), PropertyValue::Int(36))],
            }),
        });
        roundtrip_response(Response::Value { value: None });
        roundtrip_response(Response::Value {
            value: Some(PropertyValue::String("x".into())),
        });
        roundtrip_response(Response::Rows {
            rows: vec![
                WireRow {
                    node: 1,
                    rel: None,
                    properties: vec![],
                },
                WireRow {
                    node: 2,
                    rel: Some(77),
                    properties: vec![("age".into(), PropertyValue::Int(30))],
                },
            ],
        });
        roundtrip_response(Response::Text {
            text: "commits 7\n".into(),
        });
        roundtrip_response(Response::Error {
            code: ErrorCode::Conflict,
            message: "write-write conflict".into(),
        });
        roundtrip_response(Response::Overloaded {
            message: "admission queue full".into(),
        });
    }

    #[test]
    fn float_values_round_trip_bit_exactly() {
        for f in [0.0, -0.0, 1.5, f64::NAN, f64::INFINITY, f64::MIN_POSITIVE] {
            let req = Request::SetNodeProperty {
                id: 1,
                key: "f".into(),
                value: PropertyValue::Float(f),
            };
            let decoded = Request::decode(&req.encode()).unwrap();
            match decoded {
                Request::SetNodeProperty {
                    value: PropertyValue::Float(g),
                    ..
                } => assert_eq!(f.to_bits(), g.to_bits()),
                other => panic!("unexpected decode: {other:?}"),
            }
        }
    }

    #[test]
    fn malformed_payloads_are_rejected() {
        assert!(Request::decode(&[]).is_err());
        assert!(Request::decode(&[0xEE]).is_err());
        // Truncated body.
        let bytes = Request::GetNode { id: 7 }.encode();
        assert!(Request::decode(&bytes[..bytes.len() - 1]).is_err());
        // Trailing garbage.
        let mut bytes = Request::Ping.encode();
        bytes.push(0);
        assert!(Request::decode(&bytes).is_err());
        // Unknown value tag.
        let mut bytes = Request::SetNodeProperty {
            id: 1,
            key: "k".into(),
            value: PropertyValue::Bool(true),
        }
        .encode();
        let tag_pos = bytes.len() - 2;
        bytes[tag_pos] = 9;
        assert!(Request::decode(&bytes).is_err());
        assert!(Response::decode(&[0xEE]).is_err());
    }

    #[test]
    fn frames_round_trip_through_the_reader() {
        let payload_a = Request::Ping.encode();
        let payload_b = Request::GetNode { id: 3 }.encode();
        let mut stream = Vec::new();
        write_frame(&mut stream, &payload_a).unwrap();
        write_frame(&mut stream, &payload_b).unwrap();

        let mut reader = FrameReader::new();
        let mut cursor = std::io::Cursor::new(stream);
        assert_eq!(reader.read_frame(&mut cursor).unwrap(), payload_a);
        assert_eq!(reader.read_frame(&mut cursor).unwrap(), payload_b);
        // The stream is exhausted: the next read observes EOF.
        assert!(matches!(
            reader.read_frame(&mut cursor),
            Err(ProtoError::Io(_))
        ));
    }

    /// A reader fed one byte at a time (worst-case fragmentation) still
    /// reassembles frames losslessly.
    #[test]
    fn fragmented_frames_reassemble() {
        struct OneByte<'a>(&'a [u8], usize);
        impl Read for OneByte<'_> {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if self.1 >= self.0.len() {
                    return Ok(0);
                }
                buf[0] = self.0[self.1];
                self.1 += 1;
                Ok(1)
            }
        }
        let payload = Request::CreateNode {
            labels: vec!["A".into()],
            properties: vec![("k".into(), PropertyValue::Int(1))],
        }
        .encode();
        let mut framed = Vec::new();
        write_frame(&mut framed, &payload).unwrap();
        let mut reader = FrameReader::new();
        let mut src = OneByte(&framed, 0);
        assert_eq!(reader.read_frame(&mut src).unwrap(), payload);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut framed = Vec::new();
        write_frame(&mut framed, &Request::Ping.encode()).unwrap();
        framed[0] ^= 0xFF;
        let mut reader = FrameReader::new();
        let mut cursor = std::io::Cursor::new(framed);
        assert!(matches!(
            reader.read_frame(&mut cursor),
            Err(ProtoError::Malformed(_))
        ));
    }

    #[test]
    fn insane_frame_length_is_rejected() {
        let mut framed = Vec::new();
        write_frame(&mut framed, &Request::Ping.encode()).unwrap();
        framed[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut reader = FrameReader::new();
        let mut cursor = std::io::Cursor::new(framed);
        assert!(matches!(
            reader.read_frame(&mut cursor),
            Err(ProtoError::Malformed(_))
        ));
    }
}
