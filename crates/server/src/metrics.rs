//! Saturation and latency metrics of the serving layer.
//!
//! The database's own counters live in `graphsi_core::metrics`; this
//! module tracks what only the server can see — session churn, admission
//! rejections, queue depth and per-request latency. The `METRICS` command
//! concatenates both: the database counters first (in
//! `DbMetricsSnapshot::to_text` format, so the core's `from_text` parser
//! round-trips on the combined dump and simply ignores the prefixed
//! server lines), then one `server_*` line per counter here.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of power-of-two latency buckets: bucket `i` counts requests
/// whose latency in microseconds satisfies `2^i <= us < 2^(i+1)` (bucket
/// 0 also absorbs sub-microsecond requests, the last bucket absorbs
/// everything slower).
pub const LATENCY_BUCKETS: usize = 28;

/// Shared, lock-free counters of one running server.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    /// Currently connected sessions.
    sessions_active: AtomicU64,
    /// Sessions accepted since startup.
    sessions_total: AtomicU64,
    /// Connections rejected at accept time (session limit).
    rejected_sessions: AtomicU64,
    /// Requests executed (whether they succeeded or failed).
    requests_total: AtomicU64,
    /// Requests rejected with `OVERLOADED` (admission queue full).
    rejected_overload: AtomicU64,
    /// Transactions aborted by the idle-session sweeper.
    idle_timeout_aborts: AtomicU64,
    /// Transactions rolled back because the client disconnected mid-txn.
    disconnect_rollbacks: AtomicU64,
    /// High-water mark of queued-but-not-yet-executing requests.
    queue_depth_peak: AtomicU64,
    /// Log2 latency histogram over executed requests (µs).
    latency_us: [AtomicU64; LATENCY_BUCKETS],
}

/// Applies a macro to every scalar counter of [`ServerMetricsSnapshot`],
/// by name (the latency histogram is handled separately). Mirrors
/// `for_each_counter!` in `graphsi_core::metrics`: both halves of the
/// text codec expand from this single list, and the exhaustiveness guard
/// below turns a field missing from the list into a compile error.
macro_rules! for_each_server_counter {
    ($m:ident) => {
        $m! {
            sessions_active,
            sessions_total,
            rejected_sessions,
            requests_total,
            rejected_overload,
            idle_timeout_aborts,
            disconnect_rollbacks,
            queue_depth_peak
        }
    };
}

impl ServerMetrics {
    /// Creates zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn session_opened(&self) {
        self.sessions_active.fetch_add(1, Ordering::Relaxed);
        self.sessions_total.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn session_closed(&self) {
        self.sessions_active.fetch_sub(1, Ordering::Relaxed);
    }

    pub(crate) fn record_rejected_session(&self) {
        self.rejected_sessions.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_rejected_overload(&self) {
        self.rejected_overload.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_idle_timeout_abort(&self) {
        self.idle_timeout_aborts.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_disconnect_rollback(&self) {
        self.disconnect_rollbacks.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_queue_depth(&self, depth: u64) {
        self.queue_depth_peak.fetch_max(depth, Ordering::Relaxed);
    }

    /// Records one executed request and its latency.
    pub(crate) fn record_request(&self, latency_us: u64) {
        self.requests_total.fetch_add(1, Ordering::Relaxed);
        let bucket = (63 - latency_us.max(1).leading_zeros() as usize).min(LATENCY_BUCKETS - 1);
        self.latency_us[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Takes a point-in-time copy of every counter.
    pub fn snapshot(&self) -> ServerMetricsSnapshot {
        let mut latency_us = [0u64; LATENCY_BUCKETS];
        for (out, bucket) in latency_us.iter_mut().zip(&self.latency_us) {
            *out = bucket.load(Ordering::Relaxed);
        }
        ServerMetricsSnapshot {
            sessions_active: self.sessions_active.load(Ordering::Relaxed),
            sessions_total: self.sessions_total.load(Ordering::Relaxed),
            rejected_sessions: self.rejected_sessions.load(Ordering::Relaxed),
            requests_total: self.requests_total.load(Ordering::Relaxed),
            rejected_overload: self.rejected_overload.load(Ordering::Relaxed),
            idle_timeout_aborts: self.idle_timeout_aborts.load(Ordering::Relaxed),
            disconnect_rollbacks: self.disconnect_rollbacks.load(Ordering::Relaxed),
            queue_depth_peak: self.queue_depth_peak.load(Ordering::Relaxed),
            latency_us,
        }
    }
}

/// Point-in-time copy of [`ServerMetrics`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServerMetricsSnapshot {
    /// Currently connected sessions.
    pub sessions_active: u64,
    /// Sessions accepted since startup.
    pub sessions_total: u64,
    /// Connections rejected at accept time (session limit).
    pub rejected_sessions: u64,
    /// Requests executed (whether they succeeded or failed).
    pub requests_total: u64,
    /// Requests rejected with `OVERLOADED` (admission queue full).
    pub rejected_overload: u64,
    /// Transactions aborted by the idle-session sweeper.
    pub idle_timeout_aborts: u64,
    /// Transactions rolled back because the client disconnected mid-txn.
    pub disconnect_rollbacks: u64,
    /// High-water mark of queued-but-not-yet-executing requests.
    pub queue_depth_peak: u64,
    /// Log2 latency histogram over executed requests (µs).
    pub latency_us: [u64; LATENCY_BUCKETS],
}

impl ServerMetricsSnapshot {
    /// Approximates the latency percentile `p` (0.0–1.0) in microseconds
    /// from the histogram: the upper edge of the bucket the percentile
    /// falls into. Returns 0 with no samples.
    pub fn latency_percentile_us(&self, p: f64) -> u64 {
        let total: u64 = self.latency_us.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((total as f64) * p.clamp(0.0, 1.0)).ceil() as u64;
        let mut seen = 0u64;
        for (i, count) in self.latency_us.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return 1u64 << (i + 1);
            }
        }
        1u64 << LATENCY_BUCKETS
    }

    /// Encodes the snapshot as `server_<name> <value>` lines, matching
    /// the shape of `DbMetricsSnapshot::to_text`. Histogram buckets are
    /// emitted as `server_latency_us_le_<upper>` cumulative counts.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let mut line = |name: &str, value: u64| {
            out.push_str("server_");
            out.push_str(name);
            out.push(' ');
            out.push_str(&value.to_string());
            out.push('\n');
        };
        macro_rules! emit {
            ($($field:ident),*) => {
                $(line(stringify!($field), self.$field);)*
            };
        }
        for_each_server_counter!(emit);
        let mut cumulative = 0u64;
        for (i, count) in self.latency_us.iter().enumerate() {
            cumulative += count;
            line(&format!("latency_us_le_{}", 1u64 << (i + 1)), cumulative);
        }
        out
    }

    /// Parses the `server_*` lines produced by
    /// [`ServerMetricsSnapshot::to_text`]. Lines without the `server_`
    /// prefix (e.g. the database counters of a combined `METRICS` dump),
    /// blank lines and `#` comments are skipped; unknown `server_*`
    /// counters are ignored so older scrapers keep working. Histogram
    /// buckets are reconstructed from their cumulative counts. A
    /// `server_*` line that is not `name value` with an unsigned integer
    /// value is an error.
    pub fn from_text(text: &str) -> std::result::Result<Self, String> {
        let mut snapshot = ServerMetricsSnapshot::default();
        let mut cumulative = [None::<u64>; LATENCY_BUCKETS];
        for line in text.lines() {
            let line = line.trim();
            let Some(rest) = line.strip_prefix("server_") else {
                continue;
            };
            let (name, value) = rest
                .split_once(' ')
                .ok_or_else(|| format!("malformed server metrics line {line:?}"))?;
            let value: u64 = value
                .trim()
                .parse()
                .map_err(|_| format!("non-integer value in server metrics line {line:?}"))?;
            if let Some(upper) = name.strip_prefix("latency_us_le_") {
                let upper: u64 = upper
                    .parse()
                    .map_err(|_| format!("bad latency bucket in line {line:?}"))?;
                // Bucket i has upper edge 2^(i+1).
                if upper.is_power_of_two() && upper > 1 {
                    let i = (upper.trailing_zeros() - 1) as usize;
                    if i < LATENCY_BUCKETS {
                        cumulative[i] = Some(value);
                    }
                }
                continue;
            }
            macro_rules! assign {
                ($($field:ident),*) => {
                    match name {
                        $(stringify!($field) => snapshot.$field = value,)*
                        _ => {}
                    }
                };
            }
            for_each_server_counter!(assign);
        }
        let mut prev = 0u64;
        for (out, cum) in snapshot.latency_us.iter_mut().zip(cumulative) {
            if let Some(cum) = cum {
                *out = cum.saturating_sub(prev);
                prev = cum;
            }
        }
        Ok(snapshot)
    }
}

// The exhaustiveness guard behind `for_each_server_counter!`: a scalar
// snapshot field missing from the list stops this from compiling.
macro_rules! server_counter_list_guard {
    ($($field:ident),*) => {
        #[allow(dead_code)]
        fn _server_counter_list_is_exhaustive(s: ServerMetricsSnapshot) {
            let ServerMetricsSnapshot { $($field: _,)* latency_us: _ } = s;
        }
    };
}
for_each_server_counter!(server_counter_list_guard);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_latencies_land_in_log2_buckets() {
        let m = ServerMetrics::new();
        m.record_request(0); // clamps into bucket 0
        m.record_request(1); // bucket 0
        m.record_request(2); // bucket 1
        m.record_request(3); // bucket 1
        m.record_request(1024); // bucket 10
        let s = m.snapshot();
        assert_eq!(s.requests_total, 5);
        assert_eq!(s.latency_us[0], 2);
        assert_eq!(s.latency_us[1], 2);
        assert_eq!(s.latency_us[10], 1);
        assert_eq!(s.latency_us.iter().sum::<u64>(), 5);
    }

    #[test]
    fn huge_latency_clamps_into_last_bucket() {
        let m = ServerMetrics::new();
        m.record_request(u64::MAX);
        assert_eq!(m.snapshot().latency_us[LATENCY_BUCKETS - 1], 1);
    }

    #[test]
    fn percentiles_walk_the_histogram() {
        let m = ServerMetrics::new();
        for _ in 0..99 {
            m.record_request(10); // bucket 3, upper edge 16
        }
        m.record_request(100_000); // bucket 16, upper edge 131072
        let s = m.snapshot();
        assert_eq!(s.latency_percentile_us(0.5), 16);
        assert_eq!(s.latency_percentile_us(0.99), 16);
        assert_eq!(s.latency_percentile_us(1.0), 131_072);
        assert_eq!(
            ServerMetricsSnapshot::default().latency_percentile_us(0.5),
            0
        );
    }

    #[test]
    fn queue_depth_keeps_the_peak() {
        let m = ServerMetrics::new();
        m.record_queue_depth(3);
        m.record_queue_depth(9);
        m.record_queue_depth(5);
        assert_eq!(m.snapshot().queue_depth_peak, 9);
    }

    #[test]
    fn text_dump_prefixes_every_line_with_server() {
        let m = ServerMetrics::new();
        m.session_opened();
        m.record_request(7);
        m.record_rejected_overload();
        let text = m.snapshot().to_text();
        assert!(text.lines().count() >= 8 + LATENCY_BUCKETS);
        for l in text.lines() {
            assert!(l.starts_with("server_"), "line missing prefix: {l}");
            assert_eq!(l.split(' ').count(), 2);
        }
        assert!(text.contains("server_sessions_active 1\n"));
        assert!(text.contains("server_requests_total 1\n"));
        assert!(text.contains("server_rejected_overload 1\n"));
    }

    /// Gives every scalar counter (and a few histogram buckets) a
    /// distinct non-zero value, expanding from the counter list so a
    /// counter dropped from the codec cannot round-trip.
    fn distinct_snapshot() -> ServerMetricsSnapshot {
        let mut s = ServerMetricsSnapshot::default();
        let mut next = 1u64;
        macro_rules! fill {
            ($($field:ident),*) => {
                $(
                    s.$field = next;
                    next += 1;
                )*
            };
        }
        for_each_server_counter!(fill);
        for (i, bucket) in s.latency_us.iter_mut().enumerate() {
            *bucket = (i as u64 * 7) % 5;
        }
        s
    }

    #[test]
    fn text_encoding_round_trips_every_counter() {
        let s = distinct_snapshot();
        let parsed = ServerMetricsSnapshot::from_text(&s.to_text()).unwrap();
        assert_eq!(parsed, s);
    }

    #[test]
    fn combined_metrics_dump_round_trips_both_halves() {
        // The METRICS command concatenates the database counters and the
        // server counters into one dump; each side's parser must
        // round-trip its own counters and ignore the other's lines.
        use graphsi_core::DbMetricsSnapshot;
        let db = DbMetricsSnapshot {
            commits: 11,
            wal_syncs: 3,
            predicate_pushdowns: 5,
            ..Default::default()
        };
        let server = distinct_snapshot();
        let combined = format!("{}{}", db.to_text(), server.to_text());
        assert_eq!(DbMetricsSnapshot::from_text(&combined).unwrap(), db);
        assert_eq!(ServerMetricsSnapshot::from_text(&combined).unwrap(), server);
    }

    #[test]
    fn from_text_rejects_malformed_server_lines() {
        assert!(ServerMetricsSnapshot::from_text("server_requests_total").is_err());
        assert!(ServerMetricsSnapshot::from_text("server_requests_total many").is_err());
        // Non-server lines are not ours to validate.
        assert!(ServerMetricsSnapshot::from_text("commits seven").is_ok());
    }
}
