//! Saturation and latency metrics of the serving layer.
//!
//! The database's own counters live in `graphsi_core::metrics`; this
//! module tracks what only the server can see — session churn, admission
//! rejections, queue depth and per-request latency. The `METRICS` command
//! concatenates both: the database counters first (in
//! `DbMetricsSnapshot::to_text` format, so the core's `from_text` parser
//! round-trips on the combined dump and simply ignores the prefixed
//! server lines), then one `server_*` line per counter here.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of power-of-two latency buckets: bucket `i` counts requests
/// whose latency in microseconds satisfies `2^i <= us < 2^(i+1)` (bucket
/// 0 also absorbs sub-microsecond requests, the last bucket absorbs
/// everything slower).
pub const LATENCY_BUCKETS: usize = 28;

/// Shared, lock-free counters of one running server.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    /// Currently connected sessions.
    sessions_active: AtomicU64,
    /// Sessions accepted since startup.
    sessions_total: AtomicU64,
    /// Connections rejected at accept time (session limit).
    rejected_sessions: AtomicU64,
    /// Requests executed (whether they succeeded or failed).
    requests_total: AtomicU64,
    /// Requests rejected with `OVERLOADED` (admission queue full).
    rejected_overload: AtomicU64,
    /// Transactions aborted by the idle-session sweeper.
    idle_timeout_aborts: AtomicU64,
    /// Transactions rolled back because the client disconnected mid-txn.
    disconnect_rollbacks: AtomicU64,
    /// High-water mark of queued-but-not-yet-executing requests.
    queue_depth_peak: AtomicU64,
    /// Log2 latency histogram over executed requests (µs).
    latency_us: [AtomicU64; LATENCY_BUCKETS],
}

impl ServerMetrics {
    /// Creates zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn session_opened(&self) {
        self.sessions_active.fetch_add(1, Ordering::Relaxed);
        self.sessions_total.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn session_closed(&self) {
        self.sessions_active.fetch_sub(1, Ordering::Relaxed);
    }

    pub(crate) fn record_rejected_session(&self) {
        self.rejected_sessions.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_rejected_overload(&self) {
        self.rejected_overload.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_idle_timeout_abort(&self) {
        self.idle_timeout_aborts.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_disconnect_rollback(&self) {
        self.disconnect_rollbacks.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_queue_depth(&self, depth: u64) {
        self.queue_depth_peak.fetch_max(depth, Ordering::Relaxed);
    }

    /// Records one executed request and its latency.
    pub(crate) fn record_request(&self, latency_us: u64) {
        self.requests_total.fetch_add(1, Ordering::Relaxed);
        let bucket = (63 - latency_us.max(1).leading_zeros() as usize).min(LATENCY_BUCKETS - 1);
        self.latency_us[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Takes a point-in-time copy of every counter.
    pub fn snapshot(&self) -> ServerMetricsSnapshot {
        let mut latency_us = [0u64; LATENCY_BUCKETS];
        for (out, bucket) in latency_us.iter_mut().zip(&self.latency_us) {
            *out = bucket.load(Ordering::Relaxed);
        }
        ServerMetricsSnapshot {
            sessions_active: self.sessions_active.load(Ordering::Relaxed),
            sessions_total: self.sessions_total.load(Ordering::Relaxed),
            rejected_sessions: self.rejected_sessions.load(Ordering::Relaxed),
            requests_total: self.requests_total.load(Ordering::Relaxed),
            rejected_overload: self.rejected_overload.load(Ordering::Relaxed),
            idle_timeout_aborts: self.idle_timeout_aborts.load(Ordering::Relaxed),
            disconnect_rollbacks: self.disconnect_rollbacks.load(Ordering::Relaxed),
            queue_depth_peak: self.queue_depth_peak.load(Ordering::Relaxed),
            latency_us,
        }
    }
}

/// Point-in-time copy of [`ServerMetrics`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServerMetricsSnapshot {
    /// Currently connected sessions.
    pub sessions_active: u64,
    /// Sessions accepted since startup.
    pub sessions_total: u64,
    /// Connections rejected at accept time (session limit).
    pub rejected_sessions: u64,
    /// Requests executed (whether they succeeded or failed).
    pub requests_total: u64,
    /// Requests rejected with `OVERLOADED` (admission queue full).
    pub rejected_overload: u64,
    /// Transactions aborted by the idle-session sweeper.
    pub idle_timeout_aborts: u64,
    /// Transactions rolled back because the client disconnected mid-txn.
    pub disconnect_rollbacks: u64,
    /// High-water mark of queued-but-not-yet-executing requests.
    pub queue_depth_peak: u64,
    /// Log2 latency histogram over executed requests (µs).
    pub latency_us: [u64; LATENCY_BUCKETS],
}

impl ServerMetricsSnapshot {
    /// Approximates the latency percentile `p` (0.0–1.0) in microseconds
    /// from the histogram: the upper edge of the bucket the percentile
    /// falls into. Returns 0 with no samples.
    pub fn latency_percentile_us(&self, p: f64) -> u64 {
        let total: u64 = self.latency_us.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((total as f64) * p.clamp(0.0, 1.0)).ceil() as u64;
        let mut seen = 0u64;
        for (i, count) in self.latency_us.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return 1u64 << (i + 1);
            }
        }
        1u64 << LATENCY_BUCKETS
    }

    /// Encodes the snapshot as `server_<name> <value>` lines, matching
    /// the shape of `DbMetricsSnapshot::to_text`. Histogram buckets are
    /// emitted as `server_latency_us_le_<upper>` cumulative counts.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let mut line = |name: &str, value: u64| {
            out.push_str("server_");
            out.push_str(name);
            out.push(' ');
            out.push_str(&value.to_string());
            out.push('\n');
        };
        line("sessions_active", self.sessions_active);
        line("sessions_total", self.sessions_total);
        line("rejected_sessions", self.rejected_sessions);
        line("requests_total", self.requests_total);
        line("rejected_overload", self.rejected_overload);
        line("idle_timeout_aborts", self.idle_timeout_aborts);
        line("disconnect_rollbacks", self.disconnect_rollbacks);
        line("queue_depth_peak", self.queue_depth_peak);
        let mut cumulative = 0u64;
        for (i, count) in self.latency_us.iter().enumerate() {
            cumulative += count;
            line(&format!("latency_us_le_{}", 1u64 << (i + 1)), cumulative);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_latencies_land_in_log2_buckets() {
        let m = ServerMetrics::new();
        m.record_request(0); // clamps into bucket 0
        m.record_request(1); // bucket 0
        m.record_request(2); // bucket 1
        m.record_request(3); // bucket 1
        m.record_request(1024); // bucket 10
        let s = m.snapshot();
        assert_eq!(s.requests_total, 5);
        assert_eq!(s.latency_us[0], 2);
        assert_eq!(s.latency_us[1], 2);
        assert_eq!(s.latency_us[10], 1);
        assert_eq!(s.latency_us.iter().sum::<u64>(), 5);
    }

    #[test]
    fn huge_latency_clamps_into_last_bucket() {
        let m = ServerMetrics::new();
        m.record_request(u64::MAX);
        assert_eq!(m.snapshot().latency_us[LATENCY_BUCKETS - 1], 1);
    }

    #[test]
    fn percentiles_walk_the_histogram() {
        let m = ServerMetrics::new();
        for _ in 0..99 {
            m.record_request(10); // bucket 3, upper edge 16
        }
        m.record_request(100_000); // bucket 16, upper edge 131072
        let s = m.snapshot();
        assert_eq!(s.latency_percentile_us(0.5), 16);
        assert_eq!(s.latency_percentile_us(0.99), 16);
        assert_eq!(s.latency_percentile_us(1.0), 131_072);
        assert_eq!(
            ServerMetricsSnapshot::default().latency_percentile_us(0.5),
            0
        );
    }

    #[test]
    fn queue_depth_keeps_the_peak() {
        let m = ServerMetrics::new();
        m.record_queue_depth(3);
        m.record_queue_depth(9);
        m.record_queue_depth(5);
        assert_eq!(m.snapshot().queue_depth_peak, 9);
    }

    #[test]
    fn text_dump_prefixes_every_line_with_server() {
        let m = ServerMetrics::new();
        m.session_opened();
        m.record_request(7);
        m.record_rejected_overload();
        let text = m.snapshot().to_text();
        assert!(text.lines().count() >= 8 + LATENCY_BUCKETS);
        for l in text.lines() {
            assert!(l.starts_with("server_"), "line missing prefix: {l}");
            assert_eq!(l.split(' ').count(), 2);
        }
        assert!(text.contains("server_sessions_active 1\n"));
        assert!(text.contains("server_requests_total 1\n"));
        assert!(text.contains("server_rejected_overload 1\n"));
    }
}
