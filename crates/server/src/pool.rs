//! Bounded worker pools with explicit admission control.
//!
//! A [`WorkerPool`] is a fixed set of threads draining one bounded
//! queue. Submission never blocks: [`WorkerPool::try_submit`] either
//! enqueues the job or reports [`SubmitError::QueueFull`] so the caller
//! can shed the request with a typed `OVERLOADED` response instead of
//! queueing it invisibly. The queue bound is what turns overload into
//! fast, observable rejection rather than unbounded memory growth and
//! collapsing latency — the admission-control half of the serving
//! layer's backpressure story (the other half is the split between read
//! and write pools, which keeps saturated writers from starving
//! read-only snapshot traffic).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::Mutex;

/// A unit of queued work.
pub(crate) type Job = Box<dyn FnOnce() + Send + 'static>;

/// Why a submission was rejected.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum SubmitError {
    /// The bounded queue is at capacity: shed the request.
    QueueFull,
    /// The pool is shutting down.
    Closed,
}

/// Fixed-size thread pool over one bounded MPMC queue.
pub(crate) struct WorkerPool {
    sender: Option<SyncSender<Job>>,
    workers: Vec<JoinHandle<()>>,
    /// Jobs enqueued but not yet started; sampled for the peak metric.
    depth: Arc<AtomicU64>,
}

impl WorkerPool {
    /// Spawns `workers` threads behind a queue of `queue_depth` slots.
    /// Fails only if the OS refuses to spawn a worker thread.
    pub(crate) fn new(name: &str, workers: usize, queue_depth: usize) -> std::io::Result<Self> {
        assert!(workers > 0, "a pool needs at least one worker");
        let (sender, receiver) = std::sync::mpsc::sync_channel::<Job>(queue_depth.max(1));
        // `mpsc` receivers are single-consumer; a mutex around the
        // receiver turns it into the MPMC queue the pool needs. Workers
        // hold the lock only while dequeuing, never while running a job.
        let receiver = Arc::new(Mutex::with_rank(receiver, 120, "server.pool_queue"));
        let depth = Arc::new(AtomicU64::new(0));
        let handles = (0..workers)
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                let depth = Arc::clone(&depth);
                std::thread::Builder::new()
                    .name(format!("graphsi-{name}-{i}"))
                    .spawn(move || worker_loop(&receiver, &depth))
            })
            .collect::<std::io::Result<Vec<_>>>()?;
        Ok(WorkerPool {
            sender: Some(sender),
            workers: handles,
            depth,
        })
    }

    /// Enqueues `job` without blocking. On success returns the queue
    /// depth observed right after the enqueue (for peak tracking).
    pub(crate) fn try_submit(&self, job: Job) -> Result<u64, SubmitError> {
        let sender = self.sender.as_ref().ok_or(SubmitError::Closed)?;
        // Increment before enqueuing: a worker may dequeue (and
        // decrement) the instant `try_send` returns, so counting after
        // the fact would underflow.
        let depth = self.depth.fetch_add(1, Ordering::Relaxed) + 1;
        match sender.try_send(job) {
            Ok(()) => Ok(depth),
            Err(e) => {
                self.depth.fetch_sub(1, Ordering::Relaxed);
                match e {
                    TrySendError::Full(_) => Err(SubmitError::QueueFull),
                    TrySendError::Disconnected(_) => Err(SubmitError::Closed),
                }
            }
        }
    }

    /// Stops accepting work and joins every worker after the queue
    /// drains.
    pub(crate) fn shutdown(&mut self) {
        drop(self.sender.take());
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(receiver: &Mutex<Receiver<Job>>, depth: &AtomicU64) {
    loop {
        let job = {
            let guard = receiver.lock();
            guard.recv()
        };
        match job {
            Ok(job) => {
                depth.fetch_sub(1, Ordering::Relaxed);
                job();
            }
            // Sender dropped and queue drained: shut down.
            Err(_) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::mpsc::sync_channel;
    use std::time::Duration;

    #[test]
    fn jobs_run_on_pool_threads() {
        // Queue sized to hold every job: submission must never shed even
        // if the workers haven't started draining yet.
        let pool = WorkerPool::new("test", 2, 16).unwrap();
        let counter = Arc::new(AtomicUsize::new(0));
        let (done_tx, done_rx) = sync_channel(16);
        for _ in 0..10 {
            let counter = Arc::clone(&counter);
            let done = done_tx.clone();
            pool.try_submit(Box::new(move || {
                counter.fetch_add(1, Ordering::SeqCst);
                let _ = done.send(());
            }))
            .unwrap();
        }
        for _ in 0..10 {
            done_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn full_queue_rejects_instead_of_blocking() {
        let pool = WorkerPool::new("test", 1, 1).unwrap();
        // Occupy the single worker.
        let (block_tx, block_rx) = sync_channel::<()>(0);
        let (running_tx, running_rx) = sync_channel::<()>(0);
        pool.try_submit(Box::new(move || {
            let _ = running_tx.send(());
            let _ = block_rx.recv();
        }))
        .unwrap();
        running_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        // Fill the one queue slot.
        pool.try_submit(Box::new(|| {})).unwrap();
        // The next submission must shed, not wait.
        let mut saw_reject = false;
        for _ in 0..100 {
            match pool.try_submit(Box::new(|| {})) {
                Err(SubmitError::QueueFull) => {
                    saw_reject = true;
                    break;
                }
                // A rare race: the worker dequeued the slot between our
                // two submits. Re-fill and retry.
                Ok(_) => {}
                Err(SubmitError::Closed) => panic!("pool closed unexpectedly"),
            }
        }
        assert!(saw_reject, "full queue never produced QueueFull");
        let _ = block_tx.send(());
    }

    #[test]
    fn shutdown_drains_the_queue_first() {
        let mut pool = WorkerPool::new("test", 1, 8).unwrap();
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..5 {
            let counter = Arc::clone(&counter);
            pool.try_submit(Box::new(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            }))
            .unwrap();
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::SeqCst), 5);
        assert!(matches!(
            pool.try_submit(Box::new(|| {})),
            Err(SubmitError::Closed)
        ));
    }
}
