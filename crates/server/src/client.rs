//! A minimal blocking client for the graphsi wire protocol.
//!
//! One [`Client`] is one session: requests are sent strictly one at a
//! time and each waits for its response. Typed failure surfaces
//! distinguish transport problems ([`ClientError::Io`]), server-side
//! request failures ([`ClientError::Server`]) and admission-control
//! rejections ([`ClientError::Overloaded`]) — callers handle overload by
//! backing off and retrying, not by treating it as an error in the data.

use std::net::TcpStream;
use std::time::Duration;

use graphsi_core::{IsolationLevel, PropertyValue};

use crate::protocol::{
    write_frame, ErrorCode, FrameReader, ProtoError, Request, Response, WireNode, WireRow,
};

/// Errors a [`Client`] call can produce.
#[derive(Debug)]
pub enum ClientError {
    /// The connection failed (or the peer hung up).
    Io(std::io::Error),
    /// The peer violated the protocol (bad frame, wrong response type).
    Protocol(String),
    /// The server shed the request (or connection) under load; back off
    /// and retry.
    Overloaded(String),
    /// The server executed the request and failed it.
    Server {
        /// Stable error class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Protocol(reason) => write!(f, "protocol violation: {reason}"),
            ClientError::Overloaded(message) => write!(f, "server overloaded: {message}"),
            ClientError::Server { code, message } => write!(f, "{code}: {message}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        match e {
            ProtoError::Io(e) => ClientError::Io(e),
            ProtoError::Malformed(reason) => ClientError::Protocol(reason),
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl ClientError {
    /// True when the failure is an admission-control rejection.
    pub fn is_overloaded(&self) -> bool {
        matches!(self, ClientError::Overloaded(_))
    }

    /// True when the failure is a retryable concurrency conflict.
    pub fn is_conflict(&self) -> bool {
        matches!(
            self,
            ClientError::Server {
                code: ErrorCode::Conflict,
                ..
            }
        )
    }
}

/// Result alias of the client.
pub type ClientResult<T> = std::result::Result<T, ClientError>;

/// A blocking connection to a graphsi server (one session).
pub struct Client {
    stream: TcpStream,
    reader: FrameReader,
}

impl Client {
    /// Connects to `addr` (e.g. `"127.0.0.1:7687"`).
    pub fn connect(addr: &str) -> ClientResult<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client {
            stream,
            reader: FrameReader::new(),
        })
    }

    /// Connects with a connect timeout (the read path stays blocking).
    pub fn connect_timeout(addr: &std::net::SocketAddr, timeout: Duration) -> ClientResult<Client> {
        let stream = TcpStream::connect_timeout(addr, timeout)?;
        stream.set_nodelay(true).ok();
        Ok(Client {
            stream,
            reader: FrameReader::new(),
        })
    }

    /// Sends one request and reads its response.
    pub fn request(&mut self, request: &Request) -> ClientResult<Response> {
        write_frame(&mut self.stream, &request.encode())?;
        let payload = self.reader.read_frame(&mut self.stream)?;
        let response = Response::decode(&payload)?;
        match response {
            Response::Overloaded { message } => Err(ClientError::Overloaded(message)),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Ok(other),
        }
    }

    fn expect_ok(&mut self, request: &Request) -> ClientResult<()> {
        match self.request(request)? {
            Response::Ok => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> ClientResult<()> {
        match self.request(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Readiness probe with a few load gauges.
    pub fn health(&mut self) -> ClientResult<String> {
        match self.request(&Request::Health)? {
            Response::Text { text } => Ok(text),
            other => Err(unexpected(&other)),
        }
    }

    /// Plaintext metrics dump (database counters + `server_*` counters).
    pub fn metrics_text(&mut self) -> ClientResult<String> {
        match self.request(&Request::Metrics)? {
            Response::Text { text } => Ok(text),
            other => Err(unexpected(&other)),
        }
    }

    /// Runs the server-side integrity verifier and returns its plaintext
    /// report (`VerifyReport::to_text` format).
    pub fn verify_text(&mut self) -> ClientResult<String> {
        match self.request(&Request::Verify)? {
            Response::Text { text } => Ok(text),
            other => Err(unexpected(&other)),
        }
    }

    /// Opens an explicit transaction on this session.
    pub fn begin(&mut self, read_only: bool, isolation: IsolationLevel) -> ClientResult<()> {
        self.expect_ok(&Request::Begin {
            read_only,
            isolation,
        })
    }

    /// Commits the open transaction, returning the commit timestamp.
    pub fn commit(&mut self) -> ClientResult<u64> {
        match self.request(&Request::Commit)? {
            Response::Committed { commit_ts } => Ok(commit_ts),
            other => Err(unexpected(&other)),
        }
    }

    /// Rolls the open transaction back.
    pub fn rollback(&mut self) -> ClientResult<()> {
        self.expect_ok(&Request::Rollback)
    }

    /// Creates a node, returning its ID.
    pub fn create_node(
        &mut self,
        labels: &[&str],
        properties: &[(&str, PropertyValue)],
    ) -> ClientResult<u64> {
        let request = Request::CreateNode {
            labels: labels.iter().map(|s| s.to_string()).collect(),
            properties: properties
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        };
        match self.request(&request)? {
            Response::NodeId { id } => Ok(id),
            other => Err(unexpected(&other)),
        }
    }

    /// Reads a node (with all labels and properties), if visible.
    pub fn get_node(&mut self, id: u64) -> ClientResult<Option<WireNode>> {
        match self.request(&Request::GetNode { id })? {
            Response::Node { node } => Ok(node),
            other => Err(unexpected(&other)),
        }
    }

    /// Sets one node property.
    pub fn set_node_property(
        &mut self,
        id: u64,
        key: &str,
        value: PropertyValue,
    ) -> ClientResult<()> {
        self.expect_ok(&Request::SetNodeProperty {
            id,
            key: key.into(),
            value,
        })
    }

    /// Removes one node property.
    pub fn remove_node_property(&mut self, id: u64, key: &str) -> ClientResult<()> {
        self.expect_ok(&Request::RemoveNodeProperty {
            id,
            key: key.into(),
        })
    }

    /// Deletes a node.
    pub fn delete_node(&mut self, id: u64) -> ClientResult<()> {
        self.expect_ok(&Request::DeleteNode { id })
    }

    /// Creates a relationship, returning its ID.
    pub fn create_relationship(
        &mut self,
        source: u64,
        target: u64,
        rel_type: &str,
        properties: &[(&str, PropertyValue)],
    ) -> ClientResult<u64> {
        let request = Request::CreateRelationship {
            source,
            target,
            rel_type: rel_type.into(),
            properties: properties
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        };
        match self.request(&request)? {
            Response::RelationshipId { id } => Ok(id),
            other => Err(unexpected(&other)),
        }
    }

    /// Deletes a relationship.
    pub fn delete_relationship(&mut self, id: u64) -> ClientResult<()> {
        self.expect_ok(&Request::DeleteRelationship { id })
    }

    /// Reads one property of a node.
    pub fn node_property(&mut self, id: u64, key: &str) -> ClientResult<Option<PropertyValue>> {
        match self.request(&Request::NodeProperty {
            id,
            key: key.into(),
        })? {
            Response::Value { value } => Ok(value),
            other => Err(unexpected(&other)),
        }
    }

    /// Streams nodes carrying `label` (0 = no limit), projecting the
    /// given property names per row.
    pub fn label_query(
        &mut self,
        label: &str,
        limit: u32,
        projection: &[&str],
    ) -> ClientResult<Vec<WireRow>> {
        let request = Request::LabelQuery {
            label: label.into(),
            limit,
            projection: projection.iter().map(|s| s.to_string()).collect(),
        };
        match self.request(&request)? {
            Response::Rows { rows } => Ok(rows),
            other => Err(unexpected(&other)),
        }
    }

    /// Streams nodes whose `key` property lies in the inclusive range
    /// (at least one bound required), projecting properties per row, in
    /// no particular order. See [`Client::range_query_ordered`] for
    /// ordered and top-k forms.
    pub fn range_query(
        &mut self,
        key: &str,
        lo: Option<PropertyValue>,
        hi: Option<PropertyValue>,
        limit: u32,
        projection: &[&str],
    ) -> ClientResult<Vec<WireRow>> {
        self.range_query_ordered(key, lo, hi, limit, projection, 0)
    }

    /// Ordered form of [`Client::range_query`]. `order`: `0` = unordered,
    /// `1` = ascending by `key`, `2` = descending. An ordered query with a
    /// nonzero `limit` is a top-k the server's planner serves straight off
    /// the index walk.
    pub fn range_query_ordered(
        &mut self,
        key: &str,
        lo: Option<PropertyValue>,
        hi: Option<PropertyValue>,
        limit: u32,
        projection: &[&str],
        order: u8,
    ) -> ClientResult<Vec<WireRow>> {
        let request = Request::RangeQuery {
            key: key.into(),
            lo,
            hi,
            limit,
            projection: projection.iter().map(|s| s.to_string()).collect(),
            order,
        };
        match self.request(&request)? {
            Response::Rows { rows } => Ok(rows),
            other => Err(unexpected(&other)),
        }
    }

    /// Testing aid: occupies a pooled worker for `ms` milliseconds.
    pub fn sleep(&mut self, ms: u32) -> ClientResult<()> {
        self.expect_ok(&Request::Sleep { ms })
    }
}

fn unexpected(response: &Response) -> ClientError {
    ClientError::Protocol(format!("unexpected response type: {response:?}"))
}
