//! The TCP server: accept loop, connection threads, worker pools and the
//! idle-session sweeper.
//!
//! ## Threading model
//!
//! One **accept thread** owns the listener (nonblocking, polled so it
//! can observe shutdown). Each accepted connection gets a **connection
//! thread** that parses frames and writes responses — it is the socket's
//! only writer, so responses never interleave. Actual request execution
//! happens on two bounded [`WorkerPool`]s: a **read pool** for read-only
//! traffic (snapshot reads never block on locks, so they stay responsive
//! even when writers saturate) and a **write pool** for everything that
//! can touch the lock manager. A session with an open read-write
//! transaction is pinned to the write pool for *all* its requests — its
//! transaction may hold locks, and executing its reads on the read pool
//! would let lock-holders consume read capacity.
//!
//! ## Admission control
//!
//! Load shedding is explicit and typed at two points: at accept time
//! (session limit ⇒ `OVERLOADED` frame, connection closed) and at
//! enqueue time (pool queue full ⇒ `OVERLOADED` response, request
//! dropped before execution). `PING`/`HEALTH`/`METRICS` are answered on
//! the connection thread itself and are never shed — saturation is
//! exactly when probes must keep answering.
//!
//! ## Idle sessions
//!
//! A **sweeper thread** walks the session table every `sweep_interval`
//! and aborts transactions idle past `idle_timeout`, releasing their
//! locks (the drop-rolls-back contract of `Transaction`). The session
//! itself stays connected and learns of the abort through a typed
//! `IDLE_TIMEOUT` error on its next request.

use std::collections::HashMap;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::RecvTimeoutError;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use graphsi_core::GraphDb;
use parking_lot::Mutex;

use crate::metrics::{ServerMetrics, ServerMetricsSnapshot};
use crate::pool::{SubmitError, WorkerPool};
use crate::protocol::{write_frame, FrameReader, ProtoError, Request, Response};
use crate::session::{request_is_read, Session};

/// Tuning knobs of one [`Server`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Maximum concurrently connected sessions; further connects are
    /// rejected with an `OVERLOADED` frame.
    pub max_sessions: usize,
    /// Worker threads executing read-only traffic.
    pub read_workers: usize,
    /// Worker threads executing write traffic (and every request of a
    /// session holding a read-write transaction).
    pub write_workers: usize,
    /// Bounded queue slots per pool; a full queue sheds requests with
    /// `OVERLOADED` instead of queueing them invisibly.
    pub queue_depth: usize,
    /// A session whose transaction sits idle this long is aborted by the
    /// sweeper (its locks release); the session survives and is told via
    /// `IDLE_TIMEOUT` on its next request.
    pub idle_timeout: Duration,
    /// How often the sweeper scans for idle transactions.
    pub sweep_interval: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_sessions: 1024,
            read_workers: 2,
            write_workers: 2,
            queue_depth: 64,
            idle_timeout: Duration::from_secs(30),
            sweep_interval: Duration::from_millis(250),
        }
    }
}

/// Internal state shared by every server thread.
struct Shared {
    db: GraphDb,
    config: ServerConfig,
    metrics: ServerMetrics,
    sessions: Mutex<HashMap<u64, Arc<Session>>>,
    /// Connection-thread handles, joined at shutdown so a stopped server
    /// leaves no thread still touching the database.
    conn_threads: Mutex<Vec<JoinHandle<()>>>,
    next_session_id: AtomicU64,
    shutdown: AtomicBool,
}

/// A running graphsi TCP server. Dropping it (or calling
/// [`Server::shutdown`]) stops accepting, disconnects idle machinery and
/// joins every thread.
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
    sweeper_thread: Option<JoinHandle<()>>,
    read_pool: Arc<WorkerPool>,
    write_pool: Arc<WorkerPool>,
}

impl Server {
    /// Binds `addr` and starts serving `db`. Pass port 0 to let the OS
    /// pick one; the bound address is available via [`Server::local_addr`].
    pub fn bind(db: GraphDb, addr: &str, config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let shared = Arc::new(Shared {
            db,
            config: config.clone(),
            metrics: ServerMetrics::new(),
            // Lock-order ranks: see the README's lock-rank map. Server
            // locks rank below every core lock because a session is held
            // across entire database calls.
            sessions: Mutex::with_rank(HashMap::new(), 100, "server.sessions"),
            conn_threads: Mutex::with_rank(Vec::new(), 110, "server.conn_threads"),
            next_session_id: AtomicU64::new(1),
            shutdown: AtomicBool::new(false),
        });
        let read_pool = Arc::new(WorkerPool::new(
            "read",
            config.read_workers.max(1),
            config.queue_depth,
        )?);
        let write_pool = Arc::new(WorkerPool::new(
            "write",
            config.write_workers.max(1),
            config.queue_depth,
        )?);

        let accept_thread = {
            let shared = Arc::clone(&shared);
            let read_pool = Arc::clone(&read_pool);
            let write_pool = Arc::clone(&write_pool);
            std::thread::Builder::new()
                .name("graphsi-accept".into())
                .spawn(move || accept_loop(&listener, &shared, &read_pool, &write_pool))?
        };
        let sweeper_thread = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("graphsi-sweeper".into())
                .spawn(move || sweeper_loop(&shared))?
        };

        Ok(Server {
            shared,
            local_addr,
            accept_thread: Some(accept_thread),
            sweeper_thread: Some(sweeper_thread),
            read_pool,
            write_pool,
        })
    }

    /// The address the server actually bound.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A point-in-time copy of the server's own counters.
    pub fn metrics(&self) -> ServerMetricsSnapshot {
        self.shared.metrics.snapshot()
    }

    /// Stops accepting connections, asks connection threads to wind
    /// down, and joins the accept and sweeper threads. Live connections
    /// notice the shutdown flag within one read-timeout tick.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.sweeper_thread.take() {
            let _ = t.join();
        }
        // Connection threads observe the flag within one read-timeout
        // tick; joining them guarantees open transactions have rolled
        // back before shutdown returns.
        let handles: Vec<JoinHandle<()>> = self.shared.conn_threads.lock().drain(..).collect();
        for t in handles {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
        // Pools shut down when the last Arc drops; connection threads
        // each hold one, so queued jobs still drain.
        let _ = &self.read_pool;
        let _ = &self.write_pool;
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    read_pool: &Arc<WorkerPool>,
    write_pool: &Arc<WorkerPool>,
) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let session_count = shared.sessions.lock().len();
                if session_count >= shared.config.max_sessions {
                    shared.metrics.record_rejected_session();
                    reject_connection(stream);
                    continue;
                }
                let id = shared.next_session_id.fetch_add(1, Ordering::Relaxed);
                let session = Arc::new(Session::new());
                shared.sessions.lock().insert(id, Arc::clone(&session));
                shared.metrics.session_opened();
                let conn_shared = Arc::clone(shared);
                let read_pool = Arc::clone(read_pool);
                let write_pool = Arc::clone(write_pool);
                let spawned = std::thread::Builder::new()
                    .name(format!("graphsi-conn-{id}"))
                    .spawn(move || {
                        connection_loop(stream, &session, &conn_shared, &read_pool, &write_pool);
                        conn_shared.sessions.lock().remove(&id);
                        conn_shared.metrics.session_closed();
                        // A transaction still open here means the client
                        // vanished mid-transaction: dropping the session
                        // state rolls it back and releases its locks.
                        if session.inner.lock().txn.is_some() {
                            conn_shared.metrics.record_disconnect_rollback();
                        }
                    });
                match spawned {
                    Ok(handle) => shared.conn_threads.lock().push(handle),
                    Err(_) => {
                        shared.sessions.lock().remove(&id);
                        shared.metrics.session_closed();
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// Tells an over-limit client it was shed, then closes the socket.
fn reject_connection(mut stream: TcpStream) {
    let payload = Response::Overloaded {
        message: "session limit reached".into(),
    }
    .encode();
    let _ = write_frame(&mut stream, &payload);
}

fn connection_loop(
    mut stream: TcpStream,
    session: &Arc<Session>,
    shared: &Arc<Shared>,
    read_pool: &Arc<WorkerPool>,
    write_pool: &Arc<WorkerPool>,
) {
    // The read timeout doubles as the shutdown poll interval.
    if stream
        .set_read_timeout(Some(Duration::from_millis(50)))
        .is_err()
    {
        return;
    }
    stream.set_nodelay(true).ok();
    let mut reader = FrameReader::new();

    while !shared.shutdown.load(Ordering::SeqCst) {
        let payload = match reader.poll_frame(&mut stream) {
            Ok(Some(payload)) => payload,
            Ok(None) => continue,
            // Disconnect or I/O failure: wind the session down. The
            // open-transaction rollback happens via drop in the caller.
            Err(ProtoError::Io(_)) => return,
            Err(ProtoError::Malformed(reason)) => {
                // A desynchronised peer cannot be re-synchronised on a
                // length-prefixed stream; report and hang up.
                let resp = Response::Error {
                    code: crate::protocol::ErrorCode::Protocol,
                    message: reason,
                };
                let _ = write_frame(&mut stream, &resp.encode());
                return;
            }
        };
        let request = match Request::decode(&payload) {
            Ok(request) => request,
            Err(e) => {
                let resp = Response::Error {
                    code: crate::protocol::ErrorCode::Protocol,
                    message: e.to_string(),
                };
                if write_frame(&mut stream, &resp.encode()).is_err() {
                    return;
                }
                continue;
            }
        };

        // Probes answer inline: they must respond even (especially) when
        // every worker is busy.
        let inline = match request {
            Request::Ping => Some(Response::Pong),
            Request::Health => Some(health_response(shared)),
            Request::Metrics => Some(metrics_response(shared)),
            Request::Verify => Some(verify_response(shared)),
            _ => None,
        };
        if let Some(response) = inline {
            shared.metrics.record_request(0);
            if write_frame(&mut stream, &response.encode()).is_err() {
                return;
            }
            continue;
        }

        // Route to a pool: read-only work on the read pool unless the
        // session's open read-write transaction pins it to the write
        // pool (its locks must not occupy read capacity).
        let pool = if request_is_read(&request) && !session.holds_write_txn() {
            read_pool
        } else {
            write_pool
        };

        let (resp_tx, resp_rx) = std::sync::mpsc::sync_channel::<Response>(1);
        let job = {
            let session = Arc::clone(session);
            let shared = Arc::clone(shared);
            Box::new(move || {
                let started = Instant::now();
                let response = session.execute(&shared.db, request);
                shared
                    .metrics
                    .record_request(started.elapsed().as_micros() as u64);
                let _ = resp_tx.send(response);
            })
        };
        let response = match pool.try_submit(job) {
            Ok(depth) => {
                shared.metrics.record_queue_depth(depth);
                // Block until the worker answers; the protocol is
                // strictly one-request-one-response per connection.
                match resp_rx.recv_timeout(Duration::from_secs(600)) {
                    Ok(response) => response,
                    Err(RecvTimeoutError::Timeout | RecvTimeoutError::Disconnected) => {
                        Response::Error {
                            code: crate::protocol::ErrorCode::Internal,
                            message: "worker did not answer".into(),
                        }
                    }
                }
            }
            Err(SubmitError::QueueFull) => {
                shared.metrics.record_rejected_overload();
                Response::Overloaded {
                    message: "admission queue full, retry with backoff".into(),
                }
            }
            Err(SubmitError::Closed) => return,
        };
        if write_frame(&mut stream, &response.encode()).is_err() {
            return;
        }
    }
    // Server shutdown: tell the peer before hanging up.
    let _ = stream.flush();
}

fn health_response(shared: &Shared) -> Response {
    let m = shared.metrics.snapshot();
    Response::Text {
        text: format!(
            "ok\nsessions_active {}\nqueue_depth_peak {}\nrejected_overload {}\n",
            m.sessions_active, m.queue_depth_peak, m.rejected_overload
        ),
    }
}

/// `METRICS` = database counters (core text format, parseable by
/// `DbMetricsSnapshot::from_text`, which skips the `server_*` lines as
/// unknown) + the server's own counters.
fn metrics_response(shared: &Shared) -> Response {
    let mut text = shared.db.metrics().to_text();
    text.push_str(&shared.metrics.snapshot().to_text());
    Response::Text { text }
}

/// `VERIFY` = the online integrity verifier's plaintext report. The
/// verifier takes its own read snapshot and bounds its lock holds, so it
/// is safe to run while sessions keep committing; a failure to even run
/// it (store I/O error) is reported as an `Internal` error frame.
fn verify_response(shared: &Shared) -> Response {
    match shared.db.verify() {
        Ok(report) => Response::Text {
            text: report.to_text(),
        },
        Err(e) => Response::Error {
            code: crate::protocol::ErrorCode::Internal,
            message: format!("verify failed: {e}"),
        },
    }
}

fn sweeper_loop(shared: &Arc<Shared>) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(shared.config.sweep_interval);
        let sessions: Vec<Arc<Session>> = shared.sessions.lock().values().cloned().collect();
        let now = Instant::now();
        for session in sessions {
            // Never stall behind a busy session: a held lock means the
            // session is executing right now, hence not idle.
            let Some(mut inner) = session.inner.try_lock() else {
                continue;
            };
            if inner.txn.is_some()
                && now.duration_since(inner.last_activity) >= shared.config.idle_timeout
            {
                Session::abort_idle(&mut inner);
                shared.metrics.record_idle_timeout_abort();
            }
        }
    }
}
