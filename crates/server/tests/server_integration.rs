//! End-to-end tests over real TCP: client sessions, transaction
//! lifecycle edge cases (idle timeout, disconnect rollback) and
//! admission control under a deliberately tiny queue.

use std::time::Duration;

use graphsi_core::test_support::Watchdog;
use graphsi_core::{DbConfig, DbMetricsSnapshot, GraphDb, IsolationLevel, PropertyValue};
use graphsi_server::{Client, ClientError, ErrorCode, Server, ServerConfig};
use graphsi_storage::test_util::TempDir;

fn start_server(name: &str, config: ServerConfig) -> (TempDir, Server) {
    let dir = TempDir::new(name);
    let db = GraphDb::open(dir.path(), DbConfig::default()).unwrap();
    let server = Server::bind(db, "127.0.0.1:0", config).unwrap();
    (dir, server)
}

fn connect(server: &Server) -> Client {
    Client::connect(&server.local_addr().to_string()).unwrap()
}

#[test]
fn crud_round_trip_over_tcp() {
    let _watchdog = Watchdog::arm("crud_round_trip_over_tcp", Duration::from_secs(120));
    let (_dir, mut server) = start_server("srv_crud", ServerConfig::default());
    let mut c = connect(&server);
    c.ping().unwrap();

    let id = c
        .create_node(
            &["Person"],
            &[
                ("name", PropertyValue::String("ada".into())),
                ("age", PropertyValue::Int(36)),
            ],
        )
        .unwrap();
    let node = c.get_node(id).unwrap().expect("node must be visible");
    assert_eq!(node.labels, vec!["Person".to_string()]);
    assert_eq!(
        c.node_property(id, "age").unwrap(),
        Some(PropertyValue::Int(36))
    );

    c.set_node_property(id, "age", PropertyValue::Int(37))
        .unwrap();
    assert_eq!(
        c.node_property(id, "age").unwrap(),
        Some(PropertyValue::Int(37))
    );

    let other = c.create_node(&["Person"], &[]).unwrap();
    let rel = c.create_relationship(id, other, "KNOWS", &[]).unwrap();
    c.delete_relationship(rel).unwrap();
    c.remove_node_property(id, "name").unwrap();
    assert_eq!(c.node_property(id, "name").unwrap(), None);

    let rows = c.label_query("Person", 0, &["age"]).unwrap();
    assert_eq!(rows.len(), 2);

    c.delete_node(other).unwrap();
    assert_eq!(c.get_node(other).unwrap(), None);
    server.shutdown();
}

#[test]
fn explicit_transactions_commit_atomically_across_sessions() {
    let _watchdog = Watchdog::arm(
        "explicit_transactions_commit_atomically_across_sessions",
        Duration::from_secs(120),
    );
    let (_dir, mut server) = start_server("srv_txn", ServerConfig::default());
    let mut writer = connect(&server);
    let mut reader = connect(&server);

    writer
        .begin(false, IsolationLevel::SnapshotIsolation)
        .unwrap();
    let a = writer.create_node(&["Batch"], &[]).unwrap();
    let b = writer.create_node(&["Batch"], &[]).unwrap();
    // Uncommitted writes are invisible to the other session.
    assert_eq!(reader.get_node(a).unwrap(), None);
    assert_eq!(reader.label_query("Batch", 0, &[]).unwrap().len(), 0);

    let ts = writer.commit().unwrap();
    assert!(ts > 0);
    // Both rows appear atomically.
    assert!(reader.get_node(a).unwrap().is_some());
    assert!(reader.get_node(b).unwrap().is_some());
    assert_eq!(reader.label_query("Batch", 0, &[]).unwrap().len(), 2);

    // Rollback really discards.
    writer
        .begin(false, IsolationLevel::SnapshotIsolation)
        .unwrap();
    let c = writer.create_node(&["Batch"], &[]).unwrap();
    writer.rollback().unwrap();
    assert_eq!(reader.get_node(c).unwrap(), None);
    server.shutdown();
}

#[test]
fn range_queries_ride_the_index_over_the_wire() {
    let _watchdog = Watchdog::arm(
        "range_queries_ride_the_index_over_the_wire",
        Duration::from_secs(120),
    );
    let (_dir, mut server) = start_server("srv_range", ServerConfig::default());
    let mut c = connect(&server);
    for age in 0..20 {
        c.create_node(&["P"], &[("age", PropertyValue::Int(age))])
            .unwrap();
    }
    let rows = c
        .range_query(
            "age",
            Some(PropertyValue::Int(5)),
            Some(PropertyValue::Int(9)),
            0,
            &["age"],
        )
        .unwrap();
    assert_eq!(rows.len(), 5);
    for row in &rows {
        let Some(PropertyValue::Int(age)) = row.property("age") else {
            panic!("missing projection");
        };
        assert!((5..=9).contains(age));
    }
    // Half-open range + limit.
    let rows = c
        .range_query("age", Some(PropertyValue::Int(15)), None, 3, &[])
        .unwrap();
    assert_eq!(rows.len(), 3);
    server.shutdown();
}

#[test]
fn idle_timeout_aborts_open_transaction_and_releases_locks() {
    let _watchdog = Watchdog::arm(
        "idle_timeout_aborts_open_transaction_and_releases_locks",
        Duration::from_secs(120),
    );
    let config = ServerConfig {
        idle_timeout: Duration::from_millis(150),
        sweep_interval: Duration::from_millis(25),
        ..ServerConfig::default()
    };
    let (_dir, mut server) = start_server("srv_idle", config);

    let mut setup = connect(&server);
    let node = setup
        .create_node(&["Hot"], &[("v", PropertyValue::Int(0))])
        .unwrap();

    // Session A opens a transaction and write-locks the node...
    let mut a = connect(&server);
    a.begin(false, IsolationLevel::SnapshotIsolation).unwrap();
    a.set_node_property(node, "v", PropertyValue::Int(1))
        .unwrap();
    // ...then goes idle past the timeout.
    std::thread::sleep(Duration::from_millis(400));

    // The sweeper must have aborted A's transaction, releasing the lock:
    // an autocommit write from another session now succeeds instead of
    // conflicting with a zombie lock-holder.
    let mut b = connect(&server);
    b.set_node_property(node, "v", PropertyValue::Int(2))
        .unwrap();
    assert_eq!(
        b.node_property(node, "v").unwrap(),
        Some(PropertyValue::Int(2))
    );

    // A learns of the abort through a typed IDLE_TIMEOUT error...
    let err = a.node_property(node, "v").unwrap_err();
    match err {
        ClientError::Server {
            code: ErrorCode::IdleTimeout,
            ..
        } => {}
        other => panic!("expected IDLE_TIMEOUT, got {other:?}"),
    }
    // ...and A's buffered write is gone; the session keeps working.
    assert_eq!(
        a.node_property(node, "v").unwrap(),
        Some(PropertyValue::Int(2))
    );
    assert!(server.metrics().idle_timeout_aborts >= 1);
    server.shutdown();
}

#[test]
fn disconnect_mid_transaction_rolls_back_and_releases_locks() {
    let _watchdog = Watchdog::arm(
        "disconnect_mid_transaction_rolls_back_and_releases_locks",
        Duration::from_secs(120),
    );
    let (_dir, mut server) = start_server("srv_disconnect", ServerConfig::default());
    let mut setup = connect(&server);
    let node = setup
        .create_node(&["Hot"], &[("v", PropertyValue::Int(0))])
        .unwrap();

    {
        let mut doomed = connect(&server);
        doomed
            .begin(false, IsolationLevel::SnapshotIsolation)
            .unwrap();
        doomed
            .set_node_property(node, "v", PropertyValue::Int(99))
            .unwrap();
        let orphan = doomed.create_node(&["Orphan"], &[]).unwrap();
        // The client vanishes without COMMIT or ROLLBACK.
        drop(doomed);
        // Poll until the server has reaped the session.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while server.metrics().sessions_active > 1 {
            assert!(
                std::time::Instant::now() < deadline,
                "server never noticed the disconnect"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
        // Nothing of the doomed transaction survived, and its write lock
        // on the node is gone.
        assert_eq!(setup.get_node(orphan).unwrap(), None);
    }
    setup
        .set_node_property(node, "v", PropertyValue::Int(1))
        .unwrap();
    assert_eq!(
        setup.node_property(node, "v").unwrap(),
        Some(PropertyValue::Int(1))
    );
    assert!(server.metrics().disconnect_rollbacks >= 1);
    server.shutdown();
}

/// Saturates a deliberately tiny write pool (one worker, one queue slot)
/// and checks the third concurrent request is rejected with a typed
/// `OVERLOADED` instead of queueing invisibly.
#[test]
fn full_admission_queue_sheds_with_typed_overloaded() {
    let _watchdog = Watchdog::arm(
        "full_admission_queue_sheds_with_typed_overloaded",
        Duration::from_secs(120),
    );
    let config = ServerConfig {
        read_workers: 1,
        write_workers: 1,
        queue_depth: 1,
        ..ServerConfig::default()
    };
    let (_dir, mut server) = start_server("srv_overload", config);

    // Two workers-worth of sleep: one executing, one in the queue slot.
    // Staggered so the first is already executing (not still queued)
    // when the second arrives; retried because the pair can still race
    // the worker's dequeue.
    let busy: Vec<_> = (0..2)
        .map(|i| {
            let addr = server.local_addr().to_string();
            std::thread::spawn(move || {
                let mut c = Client::connect(&addr).unwrap();
                std::thread::sleep(Duration::from_millis(100 * i));
                loop {
                    match c.sleep(1200) {
                        Ok(()) => break,
                        Err(e) if e.is_overloaded() => {
                            std::thread::sleep(Duration::from_millis(25));
                        }
                        Err(e) => panic!("busy client failed: {e:?}"),
                    }
                }
            })
        })
        .collect();
    // Give both requests time to reach the pool.
    std::thread::sleep(Duration::from_millis(500));

    let mut c = connect(&server);
    let err = c
        .create_node(&["X"], &[])
        .expect_err("third write must be shed");
    assert!(err.is_overloaded(), "expected OVERLOADED, got {err:?}");

    // Probes still answer while the pool is saturated.
    c.ping().unwrap();
    assert!(c.health().unwrap().starts_with("ok"));

    // Once the sleeps drain, the same session's writes go through again.
    for t in busy {
        t.join().unwrap();
    }
    c.create_node(&["X"], &[]).unwrap();

    let m = server.metrics();
    assert!(m.rejected_overload >= 1);
    assert!(m.queue_depth_peak >= 1);
    server.shutdown();
}

#[test]
fn session_limit_rejects_new_connections() {
    let _watchdog = Watchdog::arm(
        "session_limit_rejects_new_connections",
        Duration::from_secs(120),
    );
    let config = ServerConfig {
        max_sessions: 1,
        ..ServerConfig::default()
    };
    let (_dir, mut server) = start_server("srv_sessions", config);
    let mut first = connect(&server);
    first.ping().unwrap();

    let mut second = connect(&server);
    let err = second.ping().expect_err("second session must be shed");
    assert!(err.is_overloaded(), "expected OVERLOADED, got {err:?}");
    assert!(server.metrics().rejected_sessions >= 1);

    // The admitted session is unaffected.
    first.ping().unwrap();
    server.shutdown();
}

#[test]
fn metrics_command_exposes_db_and_server_counters() {
    let _watchdog = Watchdog::arm(
        "metrics_command_exposes_db_and_server_counters",
        Duration::from_secs(120),
    );
    let (_dir, mut server) = start_server("srv_metrics", ServerConfig::default());
    let mut c = connect(&server);
    let id = c.create_node(&["M"], &[]).unwrap();
    c.get_node(id).unwrap();

    let text = c.metrics_text().unwrap();
    // The database half parses with the core's own text decoder (which
    // skips the server_* lines as unknown counters).
    let db = DbMetricsSnapshot::from_text(&text).unwrap();
    assert!(db.commits >= 1, "autocommit write must be counted");
    // The server half is present with the expected names.
    assert!(text.contains("server_sessions_active 1\n"));
    assert!(text.contains("server_requests_total"));
    assert!(text.contains("server_latency_us_le_2"));

    let health = c.health().unwrap();
    assert!(health.starts_with("ok\n"));
    server.shutdown();
}

#[test]
fn verify_command_reports_a_clean_store_over_the_wire() {
    let _watchdog = Watchdog::arm(
        "verify_command_reports_a_clean_store_over_the_wire",
        Duration::from_secs(120),
    );
    let (_dir, mut server) = start_server("srv_verify", ServerConfig::default());
    let mut c = connect(&server);
    let a = c
        .create_node(&["V"], &[("w", PropertyValue::Int(1))])
        .unwrap();
    let b = c.create_node(&["V"], &[]).unwrap();
    c.create_relationship(a, b, "LINKS", &[]).unwrap();

    // VERIFY is answered inline, even from a session with an open
    // read-only transaction.
    c.begin(true, IsolationLevel::SnapshotIsolation).unwrap();
    let report = c.verify_text().unwrap();
    c.rollback().unwrap();
    for line in [
        "bad_page_crc 0",
        "dangling_chain_pointers 0",
        "index_store_divergences 0",
        "orphaned_postings 0",
    ] {
        assert!(report.contains(line), "unexpected verify report:\n{report}");
    }
    assert!(report.contains("entities_checked"));
    server.shutdown();
}

#[test]
fn read_only_sessions_reject_writes_over_the_wire() {
    let _watchdog = Watchdog::arm(
        "read_only_sessions_reject_writes_over_the_wire",
        Duration::from_secs(120),
    );
    let (_dir, mut server) = start_server("srv_ro", ServerConfig::default());
    let mut c = connect(&server);
    let id = c.create_node(&["R"], &[]).unwrap();

    c.begin(true, IsolationLevel::SnapshotIsolation).unwrap();
    assert!(c.get_node(id).unwrap().is_some());
    let err = c
        .set_node_property(id, "v", PropertyValue::Int(1))
        .expect_err("read-only txn must reject writes");
    match err {
        ClientError::Server {
            code: ErrorCode::ReadOnly,
            ..
        } => {}
        other => panic!("expected READ_ONLY, got {other:?}"),
    }
    c.commit().unwrap();
    server.shutdown();
}

#[test]
fn conflicting_explicit_transactions_surface_typed_conflicts() {
    let _watchdog = Watchdog::arm(
        "conflicting_explicit_transactions_surface_typed_conflicts",
        Duration::from_secs(120),
    );
    let (_dir, mut server) = start_server("srv_conflict", ServerConfig::default());
    let mut setup = connect(&server);
    let node = setup
        .create_node(&["Hot"], &[("v", PropertyValue::Int(0))])
        .unwrap();

    let mut t1 = connect(&server);
    let mut t2 = connect(&server);
    t1.begin(false, IsolationLevel::SnapshotIsolation).unwrap();
    t2.begin(false, IsolationLevel::SnapshotIsolation).unwrap();
    t1.set_node_property(node, "v", PropertyValue::Int(1))
        .unwrap();
    // First-updater-wins: the second writer loses immediately with a
    // typed, retryable CONFLICT.
    let err = t2
        .set_node_property(node, "v", PropertyValue::Int(2))
        .expect_err("second updater must conflict");
    assert!(err.is_conflict(), "expected CONFLICT, got {err:?}");
    t1.commit().unwrap();
    t2.rollback().unwrap();
    server.shutdown();
}
