//! The `graphsi-admin` binary: thin process wrapper over
//! [`graphsi_admin::run`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let outcome = graphsi_admin::run(&args);
    print!("{}", outcome.output);
    std::process::exit(outcome.code);
}
