//! # graphsi-admin
//!
//! The administration toolbox for graphsi stores. Today it holds the
//! integrity verifier (`graphsi-admin verify <dir>`, the offline face of
//! [`graphsi_core::GraphDb::verify`]); it is also the landing pad for the
//! ROADMAP's point-in-time-restore tool.
//!
//! The library layer exists so the subcommands are testable without
//! spawning the binary: each returns a [`CommandOutcome`] holding the exit
//! code and the text it would print.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use graphsi_core::{DbConfig, GraphDb};

/// Exit code for a clean run (verify: no findings).
pub const EXIT_OK: i32 = 0;
/// Exit code for an operational failure (store unreadable, bad usage).
pub const EXIT_ERROR: i32 = 1;
/// Exit code for a successful run that *found* problems (verify: one or
/// more findings) — distinct from [`EXIT_ERROR`] so CI gates can tell
/// "store is corrupt" from "tool fell over".
pub const EXIT_FINDINGS: i32 = 2;

/// What a subcommand wants the process to do: print `output` (stdout) and
/// exit with `code`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CommandOutcome {
    /// Process exit code (one of the `EXIT_*` constants).
    pub code: i32,
    /// Text for stdout, already newline-terminated.
    pub output: String,
}

/// Usage text printed on bad invocations.
pub const USAGE: &str = "usage: graphsi-admin <command> [args]\n\
\n\
commands:\n\
  verify <store-dir>   open the store (replaying its WAL) and run the\n\
                       online integrity verifier; exits 0 when clean,\n\
                       2 when findings were reported, 1 on error\n";

/// Runs the `verify` subcommand against the store in `dir`.
///
/// Opening the database replays the WAL, so a torn store page that is
/// fully covered by the log is rebuilt before the verifier ever looks at
/// it — what remains is genuine corruption. The report is rendered with
/// [`graphsi_core::VerifyReport::to_text`].
pub fn verify(dir: &str) -> CommandOutcome {
    let db = match GraphDb::open(dir, DbConfig::default()) {
        Ok(db) => db,
        Err(e) => {
            return CommandOutcome {
                code: EXIT_ERROR,
                output: format!("graphsi-admin verify: cannot open {dir}: {e}\n"),
            }
        }
    };
    match db.verify() {
        Ok(report) => CommandOutcome {
            code: if report.is_clean() {
                EXIT_OK
            } else {
                EXIT_FINDINGS
            },
            output: report.to_text(),
        },
        Err(e) => CommandOutcome {
            code: EXIT_ERROR,
            output: format!("graphsi-admin verify: {e}\n"),
        },
    }
}

/// Dispatches a command line (without the program name) to a subcommand.
pub fn run(args: &[String]) -> CommandOutcome {
    match args {
        [cmd, dir] if cmd == "verify" => verify(dir),
        _ => CommandOutcome {
            code: EXIT_ERROR,
            output: USAGE.to_string(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphsi_core::test_support::TempDir;

    #[test]
    fn usage_on_bad_invocations() {
        for args in [vec![], vec!["frobnicate".to_string()]] {
            let outcome = run(&args);
            assert_eq!(outcome.code, EXIT_ERROR);
            assert!(outcome.output.contains("usage:"));
        }
    }

    #[test]
    fn verify_clean_store_exits_zero() {
        let dir = TempDir::new("admin_verify_clean");
        {
            let db = GraphDb::open(dir.path(), DbConfig::default()).unwrap();
            let mut tx = db.begin();
            let n = tx
                .create_node(&["Person"], &[("name", "amy".into())])
                .unwrap();
            let m = tx.create_node(&["Person"], &[]).unwrap();
            tx.create_relationship(n, m, "KNOWS", &[]).unwrap();
            tx.commit().unwrap();
        }
        let outcome = run(&["verify".to_string(), dir.path().display().to_string()]);
        assert_eq!(outcome.code, EXIT_OK, "{}", outcome.output);
        assert!(outcome.output.contains("bad_page_crc 0"));
        assert!(outcome.output.contains("pages_checked"));
    }

    #[test]
    fn verify_missing_store_exits_one() {
        let dir = TempDir::new("admin_verify_missing");
        // A file where the store directory should be.
        let file = dir.path().join("not-a-dir");
        std::fs::write(&file, b"x").unwrap();
        let outcome = verify(&file.display().to_string());
        assert_eq!(outcome.code, EXIT_ERROR);
    }
}
