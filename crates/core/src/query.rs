//! The composable, streaming query builder — `tx.query()`.
//!
//! A [`QueryBuilder`] describes a pipeline of relational-ish stages over
//! the graph (CrocoPat-style composition on top of the paper's enriched
//! iterators): a *source* (label scan, property scan, property **range**
//! scan, whole-graph scan or an explicit start set) followed by *stages*
//! (property/label filters, range predicates, multi-hop `expand`,
//! `distinct`, `limit`). Terminal calls ([`QueryBuilder::stream`],
//! [`QueryBuilder::ids`], [`QueryBuilder::count`], [`QueryBuilder::nodes`],
//! [`QueryBuilder::rows`], [`QueryBuilder::stream_rows`]) compile it into
//! a snapshot-consistent stream with read-your-own-writes that pulls
//! results element by element through the chunked, GC-safe cursors of
//! [`crate::iter`] — peak candidate buffering stays bounded by the chunk
//! size no matter how many nodes a stage scans.
//!
//! ## Predicate pushdown
//!
//! Compilation runs a small planner over the declarative property
//! predicates ([`QueryBuilder::filter_property_range`], the comparison
//! forms of `nodes_with_property`, and equality stages):
//!
//! * a predicate at the head of the pipeline compiles to a **versioned
//!   index source** — equality to a posting scan, comparisons to a
//!   [range-postings cursor](graphsi_index::RangePostingCursor) over the
//!   index's sorted key dimension — executing the predicate *inside* the
//!   index with zero per-candidate property decoding;
//! * a predicate over an index-backed label source is pushed down only
//!   when the index's cardinality estimates favour it (the smaller side
//!   becomes the source, the other a filter);
//! * everything else falls back to a decode filter that materialises
//!   **only the predicate's key** per candidate (the single-key decode
//!   fast path), never the whole property list.
//!
//! The `predicate_pushdowns` / `decode_filter_fallbacks` metrics record
//! which path each predicate compiled to, and `property_decodes` counts
//! the per-candidate decode work the fallback paid — the E14 evidence.
//! Pushdown can be disabled per query ([`QueryBuilder::pushdown`]) or
//! database-wide ([`crate::DbConfig::predicate_pushdown`]).

use std::collections::HashSet;
use std::ops::Bound;

use graphsi_storage::{NodeId, PropertyValue, RelTypeToken, RelationshipId, ValueKey};

use crate::entity::{Direction, Node};
use crate::error::{DbError, Result};
use crate::iter::RelEntryIter;
use crate::transaction::Transaction;

/// Shared semantics of a compiled range predicate: `true` if the value
/// key lies inside the bounds. Range predicates are **type-homogeneous**:
/// a typed bound only matches values of its own type, which is exactly
/// the key interval [`graphsi_index::composite_range_bounds`] confines an
/// index range scan to — so the decode path and the pushdown path agree
/// on every input.
pub(crate) fn value_key_in_bounds(
    k: &ValueKey,
    lo: &Bound<ValueKey>,
    hi: &Bound<ValueKey>,
) -> bool {
    let type_ok = |b: &Bound<ValueKey>| match b {
        Bound::Included(x) | Bound::Excluded(x) => k.same_type(x),
        Bound::Unbounded => true,
    };
    if !type_ok(lo) || !type_ok(hi) {
        return false;
    }
    let above = match lo {
        Bound::Included(x) => k >= x,
        Bound::Excluded(x) => k > x,
        Bound::Unbounded => true,
    };
    let below = match hi {
        Bound::Included(x) => k <= x,
        Bound::Excluded(x) => k < x,
        Bound::Unbounded => true,
    };
    above && below
}

/// Maps user-facing `PropertyValue` range bounds onto the index's
/// `ValueKey` bound pair — shared by the query builder's declarative
/// predicates and the transaction-level range scan.
pub(crate) fn value_range_key_bounds(
    range: &impl std::ops::RangeBounds<PropertyValue>,
) -> (Bound<ValueKey>, Bound<ValueKey>) {
    let key_of = |b: Bound<&PropertyValue>| match b {
        Bound::Included(v) => Bound::Included(v.index_key()),
        Bound::Excluded(v) => Bound::Excluded(v.index_key()),
        Bound::Unbounded => Bound::Unbounded,
    };
    (key_of(range.start_bound()), key_of(range.end_bound()))
}

/// A declarative property predicate (equality is the degenerate
/// `Included(v) ..= Included(v)` range) — the unit the planner decides
/// index-vs-decode for.
#[derive(Clone, Debug)]
struct RangePred {
    name: String,
    lo: Bound<ValueKey>,
    hi: Bound<ValueKey>,
}

impl RangePred {
    fn from_range(name: &str, range: impl std::ops::RangeBounds<PropertyValue>) -> Self {
        let (lo, hi) = value_range_key_bounds(&range);
        RangePred {
            name: name.to_owned(),
            lo,
            hi,
        }
    }

    fn equality(name: &str, value: &PropertyValue) -> Self {
        let key = value.index_key();
        RangePred {
            name: name.to_owned(),
            lo: Bound::Included(key.clone()),
            hi: Bound::Included(key),
        }
    }

    /// `false` when no value can ever satisfy the predicate (mixed-type
    /// or inverted bounds): the planner compiles the whole pipeline to an
    /// empty stream instead of scanning anything.
    fn satisfiable(&self) -> bool {
        match (&self.lo, &self.hi) {
            (Bound::Unbounded, _) | (_, Bound::Unbounded) => true,
            (Bound::Included(a), Bound::Included(b)) => a.same_type(b) && a <= b,
            (Bound::Included(a), Bound::Excluded(b))
            | (Bound::Excluded(a), Bound::Included(b))
            | (Bound::Excluded(a), Bound::Excluded(b)) => a.same_type(b) && a < b,
        }
    }

    fn matches(&self, value: &PropertyValue) -> bool {
        value_key_in_bounds(&value.index_key(), &self.lo, &self.hi)
    }
}

/// Where the pipeline draws its initial node stream from.
enum Source {
    /// Every node visible to the transaction (the default).
    AllNodes,
    /// Index-backed label scan.
    Label(String),
    /// Index-backed property scan.
    Property(String, PropertyValue),
    /// Index-backed property range scan (pushed-down comparison
    /// predicate over the range postings).
    PropertyRange(RangePred),
    /// An explicit start set (visibility-checked when streamed).
    Fixed(Vec<NodeId>),
}

/// A boxed snapshot predicate over one node, as stored by filter stages.
type NodePredicate<'tx> = Box<dyn Fn(&Transaction, NodeId) -> Result<bool> + 'tx>;

/// One pipeline stage.
enum Stage<'tx> {
    /// Declarative property predicate — plannable (index or decode).
    Range(RangePred),
    /// Opaque property predicate — always the decode path (but only the
    /// named key is ever materialised per candidate).
    FilterProperty(String, Box<dyn Fn(&PropertyValue) -> bool + 'tx>),
    FilterLabel(String),
    Filter(NodePredicate<'tx>),
    Expand {
        direction: Direction,
        rel_type: Option<String>,
    },
    Distinct,
    Limit(usize),
}

/// A composable, streaming query over one transaction's view; created by
/// [`Transaction::query`]. See the method docs there for an example.
#[must_use = "finish the builder with `.stream()`, `.ids()`, `.count()`, `.nodes()` or `.rows()`"]
pub struct QueryBuilder<'tx> {
    tx: &'tx Transaction,
    source: Source,
    source_set: bool,
    stages: Vec<Stage<'tx>>,
    chunk_size: Option<usize>,
    /// Property names the row terminals decode per result row (resolved
    /// to tokens once, at compile time).
    projection: Option<Vec<String>>,
    /// Per-query planner override; `None` = the database default
    /// ([`crate::DbConfig::predicate_pushdown`]).
    pushdown: Option<bool>,
    /// Set when the builder was composed illegally (a source after
    /// stages); reported as an error by the terminal calls, so a
    /// mis-composed query can never silently return wrong data.
    compose_error: Option<&'static str>,
}

impl<'tx> QueryBuilder<'tx> {
    pub(crate) fn new(tx: &'tx Transaction) -> Self {
        QueryBuilder {
            tx,
            source: Source::AllNodes,
            source_set: false,
            stages: Vec::new(),
            chunk_size: None,
            projection: None,
            pushdown: None,
            compose_error: None,
        }
    }

    fn set_source(mut self, source: Source) -> Self {
        if self.source_set || !self.stages.is_empty() {
            self.compose_error = Some(
                "query source must be set first and at most once (after stages, \
                      use has_label / filter_property / filter instead)",
            );
            return self;
        }
        self.source = source;
        self.source_set = true;
        self
    }

    /// Starts from the nodes carrying `label` (index-backed). If stages
    /// were already added, acts as a label filter instead.
    pub fn nodes_with_label(self, label: &str) -> Self {
        if self.source_set || !self.stages.is_empty() {
            return self.has_label(label);
        }
        self.set_source(Source::Label(label.to_owned()))
    }

    /// Starts from the nodes whose property `name` equals `value`
    /// (index-backed). If a source was already set, acts as an equality
    /// predicate instead — with the same equality semantics as the index
    /// (`PropertyValue::index_key`, so e.g. float `NaN` matches itself).
    /// Repeating the *same* equality the index source already guarantees
    /// is a no-op rather than a redundant per-node re-check.
    pub fn nodes_with_property(mut self, name: &str, value: PropertyValue) -> Self {
        if !self.source_set && self.stages.is_empty() {
            return self.set_source(Source::Property(name.to_owned(), value));
        }
        if self.stages.is_empty() {
            if let Source::Property(n, v) = &self.source {
                // The index source already guarantees this exact equality
                // for every yielded node (committed via the posting list,
                // pending via the write-set check) — re-filtering would
                // decode every candidate to re-prove it.
                if n == name && v.index_key() == value.index_key() {
                    return self;
                }
            }
        }
        self.stages
            .push(Stage::Range(RangePred::equality(name, &value)));
        self
    }

    /// Starts from the nodes whose property `name` holds a value inside
    /// `range` (e.g. `PropertyValue::Int(30)..=PropertyValue::Int(40)`),
    /// served by the versioned index's **range postings** when the planner
    /// can push it down. If a source was already set, acts as a range
    /// predicate stage the planner still tries to push into the index.
    ///
    /// Range semantics are type-homogeneous: a typed bound only matches
    /// values of its own type, and a half-open range stays within its
    /// bound's type.
    pub fn filter_property_range(
        mut self,
        name: &str,
        range: impl std::ops::RangeBounds<PropertyValue>,
    ) -> Self {
        let pred = RangePred::from_range(name, range);
        if !self.source_set && self.stages.is_empty() {
            return self.set_source(Source::PropertyRange(pred));
        }
        self.stages.push(Stage::Range(pred));
        self
    }

    /// Comparison form of [`QueryBuilder::nodes_with_property`]:
    /// `name >= value`.
    pub fn nodes_with_property_ge(self, name: &str, value: PropertyValue) -> Self {
        self.filter_property_range(name, value..)
    }

    /// Comparison form: `name > value`.
    pub fn nodes_with_property_gt(self, name: &str, value: PropertyValue) -> Self {
        self.filter_property_range(name, (Bound::Excluded(value), Bound::Unbounded))
    }

    /// Comparison form: `name <= value`.
    pub fn nodes_with_property_le(self, name: &str, value: PropertyValue) -> Self {
        self.filter_property_range(name, ..=value)
    }

    /// Comparison form: `name < value`.
    pub fn nodes_with_property_lt(self, name: &str, value: PropertyValue) -> Self {
        self.filter_property_range(name, ..value)
    }

    /// Starts from every node visible to the transaction (the default
    /// source).
    pub fn all_nodes(self) -> Self {
        self.set_source(Source::AllNodes)
    }

    /// Starts from an explicit set of node IDs. Nodes invisible to the
    /// transaction's snapshot are silently dropped when streamed.
    pub fn start_nodes(self, nodes: impl IntoIterator<Item = NodeId>) -> Self {
        self.set_source(Source::Fixed(nodes.into_iter().collect()))
    }

    /// Keeps only nodes whose property `name` exists and satisfies `pred`.
    /// The predicate is opaque to the planner, so this always runs as a
    /// decode filter — but one that materialises only the named key per
    /// candidate. Prefer [`QueryBuilder::filter_property_range`] for
    /// comparisons the planner can push into the index.
    pub fn filter_property(
        mut self,
        name: &str,
        pred: impl Fn(&PropertyValue) -> bool + 'tx,
    ) -> Self {
        self.stages
            .push(Stage::FilterProperty(name.to_owned(), Box::new(pred)));
        self
    }

    /// Keeps only nodes carrying `label`.
    pub fn has_label(mut self, label: &str) -> Self {
        self.stages.push(Stage::FilterLabel(label.to_owned()));
        self
    }

    /// Keeps only nodes for which `pred` returns `true`. The predicate
    /// receives the transaction, so it can run arbitrary snapshot reads.
    pub fn filter(mut self, pred: impl Fn(&Transaction, NodeId) -> Result<bool> + 'tx) -> Self {
        self.stages.push(Stage::Filter(Box::new(pred)));
        self
    }

    /// Expands every incoming node one hop along its relationships in
    /// `direction`, optionally restricted to relationships of type
    /// `rel_type`, yielding the far endpoints. Chain `expand` calls for
    /// multi-hop (k-hop) expansion; add [`QueryBuilder::distinct`] to
    /// deduplicate the frontier. Row terminals report the traversed
    /// relationship in [`Row::rel`].
    pub fn expand(mut self, direction: Direction, rel_type: Option<&str>) -> Self {
        self.stages.push(Stage::Expand {
            direction,
            rel_type: rel_type.map(str::to_owned),
        });
        self
    }

    /// Deduplicates the stream from this point on **by node** (keeps first
    /// occurrences, in stream order). Memory is proportional to the number
    /// of *distinct* rows that pass, not to the candidates scanned.
    pub fn distinct(mut self) -> Self {
        self.stages.push(Stage::Distinct);
        self
    }

    /// Stops after `n` results. Upstream cursors stop being pulled — and
    /// stop refilling chunks — as soon as the limit is reached.
    pub fn limit(mut self, n: usize) -> Self {
        self.stages.push(Stage::Limit(n));
        self
    }

    /// Overrides the cursor chunk size for this query only (defaults to
    /// the transaction's [`Transaction::scan_chunk_size`]).
    pub fn chunk_size(mut self, chunk: usize) -> Self {
        self.chunk_size = Some(chunk.max(1));
        self
    }

    /// Selects the properties the row terminals ([`QueryBuilder::rows`],
    /// [`QueryBuilder::stream_rows`]) decode per result row. Property
    /// names are resolved to tokens once at compile time, and each row's
    /// projected keys are decoded in a single selective chain walk at the
    /// **last** stage — a multi-hop expansion never materialises property
    /// lists for intermediate frontiers. Unknown names simply project to
    /// absent.
    pub fn project<S: Into<String>>(mut self, names: impl IntoIterator<Item = S>) -> Self {
        self.projection = Some(names.into_iter().map(Into::into).collect());
        self
    }

    /// Per-query planner override: `false` forces every property predicate
    /// onto the decode-filter path, `true` re-enables pushdown when the
    /// database default ([`crate::DbConfig::predicate_pushdown`]) disabled
    /// it. The E14 experiment drives both paths through this switch.
    pub fn pushdown(mut self, enabled: bool) -> Self {
        self.pushdown = Some(enabled);
        self
    }

    /// Compiles the pipeline: runs the planner over the declarative
    /// predicates, resolves every token once, and assembles the stage
    /// iterators.
    fn compile(self) -> Result<Compiled<'tx>> {
        if let Some(reason) = self.compose_error {
            return Err(crate::error::DbError::InvalidQuery(reason.to_owned()));
        }
        let tx = self.tx;
        let db = tx.db();
        let chunk = self.chunk_size.unwrap_or(tx.scan_chunk_size());
        let pushdown = self.pushdown.unwrap_or(db.config.predicate_pushdown);
        let mut source = self.source;
        let mut stages = self.stages;

        // Projection names resolve to tokens exactly once.
        let projection = self.projection.map(|names| {
            names
                .into_iter()
                .map(|name| {
                    let token = db.store.tokens().existing_property_key(&name);
                    (name, token)
                })
                .collect::<Vec<_>>()
        });

        // `true` if the predicate can execute inside the index: its key
        // token exists (an unknown key cannot match anything) and the
        // bounds are satisfiable.
        let indexable = |pred: &RangePred| {
            pred.satisfiable()
                && db
                    .store
                    .tokens()
                    .existing_property_key(&pred.name)
                    .is_some()
        };

        // ---- Planner ---------------------------------------------------
        if !pushdown {
            // Decode baseline: demote index-executed property predicates
            // (range sources and equality sources alike) back to a
            // whole-graph scan with a decode-filter stage.
            match source {
                Source::PropertyRange(pred) => {
                    stages.insert(0, Stage::Range(pred));
                    source = Source::AllNodes;
                }
                Source::Property(name, value) => {
                    stages.insert(0, Stage::Range(RangePred::equality(&name, &value)));
                    source = Source::AllNodes;
                }
                other => source = other,
            }
        } else if let Some(Stage::Range(head)) = stages.first() {
            // A leading declarative predicate can swap into the source.
            let promote = match &source {
                Source::AllNodes => indexable(head),
                Source::Label(label) => {
                    // Cardinality rule: scan the smaller index side, check
                    // the other per element.
                    match db.store.tokens().existing_label(label) {
                        Some(ltok) if indexable(head) => {
                            let ptok = db
                                .store
                                .tokens()
                                .existing_property_key(&head.name)
                                .ok_or_else(|| {
                                    DbError::Internal(
                                        "indexable predicate lost its property token".to_owned(),
                                    )
                                })?;
                            let label_est = db.indexes.labels.postings_estimate(ltok);
                            // The label estimate caps the range walk: once
                            // the range is known to be at least as large,
                            // counting further keys cannot change the
                            // decision.
                            let range_est = db.indexes.node_properties.range_postings_estimate(
                                ptok,
                                graphsi_index::bound_as_ref(&head.lo),
                                graphsi_index::bound_as_ref(&head.hi),
                                label_est,
                            );
                            range_est < label_est
                        }
                        _ => false,
                    }
                }
                _ => false,
            };
            if promote {
                let Stage::Range(pred) = stages.remove(0) else {
                    return Err(DbError::Internal(
                        "promoted head stage is no longer a range predicate".to_owned(),
                    ));
                };
                let old = std::mem::replace(&mut source, Source::PropertyRange(pred));
                if let Source::Label(label) = old {
                    stages.insert(0, Stage::FilterLabel(label));
                }
            }
        }

        // ---- Unsatisfiable / unknown-key short circuit -----------------
        // A predicate stage whose key was never interned (or whose bounds
        // are unsatisfiable) passes nothing, so the entire pipeline is a
        // cheap empty stream — no decode pass that filters everything out.
        let key_known = |name: &str| db.store.tokens().existing_property_key(name).is_some();
        let dead_stage = stages.iter().any(|stage| match stage {
            Stage::Range(pred) => !pred.satisfiable() || !key_known(&pred.name),
            Stage::FilterProperty(name, _) => !key_known(name),
            Stage::FilterLabel(label) => db.store.tokens().existing_label(label).is_none(),
            _ => false,
        });
        let dead_source = match &source {
            Source::PropertyRange(pred) => !indexable(pred),
            _ => false,
        };
        if dead_stage || dead_source {
            return Ok(Compiled {
                tx,
                iter: Box::new(std::iter::empty()),
                projection,
            });
        }

        // ---- Metrics: which path did each predicate compile to? --------
        match &source {
            Source::Property(name, _) if key_known(name) => {
                db.metrics.record_predicate_pushdown();
            }
            Source::PropertyRange(_) => db.metrics.record_predicate_pushdown(),
            _ => {}
        }
        for stage in &stages {
            if matches!(stage, Stage::Range(_) | Stage::FilterProperty(..)) {
                db.metrics.record_decode_filter_fallback();
            }
        }

        // ---- Assembly --------------------------------------------------
        let mut it: BoxedRowIter<'tx> = match source {
            Source::AllNodes => row_source(tx.all_nodes_chunked(chunk)?),
            Source::Label(label) => row_source(tx.nodes_with_label_chunked(&label, chunk)?),
            Source::Property(name, value) => {
                row_source(tx.nodes_with_property_chunked(&name, &value, chunk)?)
            }
            Source::PropertyRange(pred) => row_source(
                tx.nodes_with_property_range_chunked(&pred.name, pred.lo, pred.hi, chunk)?,
            ),
            Source::Fixed(ids) => Box::new(FixedSource {
                tx,
                ids: ids.into_iter(),
                failed: false,
            }),
        };
        for stage in stages {
            it = match stage {
                Stage::Range(pred) => {
                    let token = db
                        .store
                        .tokens()
                        .existing_property_key(&pred.name)
                        .ok_or_else(|| {
                            DbError::Internal(
                                "dead-stage check let an unknown property key through".to_owned(),
                            )
                        })?;
                    Box::new(FilterIter {
                        tx,
                        upstream: it,
                        failed: false,
                        pred: Box::new(move |tx: &Transaction, id: NodeId| {
                            tx.db().metrics.record_property_decode();
                            Ok(tx
                                .visible_node_property(id, token)?
                                .flatten()
                                .is_some_and(|v| pred.matches(&v)))
                        }),
                    })
                }
                Stage::FilterProperty(name, pred) => {
                    let token =
                        db.store
                            .tokens()
                            .existing_property_key(&name)
                            .ok_or_else(|| {
                                DbError::Internal(
                                    "dead-stage check let an unknown property key through"
                                        .to_owned(),
                                )
                            })?;
                    Box::new(FilterIter {
                        tx,
                        upstream: it,
                        failed: false,
                        pred: Box::new(move |tx: &Transaction, id: NodeId| {
                            tx.db().metrics.record_property_decode();
                            Ok(tx
                                .visible_node_property(id, token)?
                                .flatten()
                                .is_some_and(|v| pred(&v)))
                        }),
                    })
                }
                Stage::FilterLabel(label) => {
                    let token = db.store.tokens().existing_label(&label).ok_or_else(|| {
                        DbError::Internal(
                            "dead-stage check let an unknown label through".to_owned(),
                        )
                    })?;
                    Box::new(FilterIter {
                        tx,
                        upstream: it,
                        failed: false,
                        pred: Box::new(move |tx: &Transaction, id: NodeId| {
                            let Some(data) = tx.visible_node(id)? else {
                                return Ok(false);
                            };
                            Ok(data.has_label(token))
                        }),
                    })
                }
                Stage::Filter(pred) => Box::new(FilterIter {
                    tx,
                    upstream: it,
                    pred,
                    failed: false,
                }),
                Stage::Expand {
                    direction,
                    rel_type,
                } => {
                    let type_token = match &rel_type {
                        None => TypeFilter::Any,
                        Some(name) => match db.store.tokens().existing_rel_type(name) {
                            Some(t) => TypeFilter::Only(t),
                            // Name never interned: no relationship can match.
                            None => TypeFilter::NoMatch,
                        },
                    };
                    Box::new(ExpandIter {
                        tx,
                        upstream: it,
                        direction,
                        type_filter: type_token,
                        current: None,
                        chunk,
                        failed: false,
                    })
                }
                Stage::Distinct => Box::new(DistinctIter {
                    upstream: it,
                    seen: HashSet::new(),
                }),
                Stage::Limit(n) => Box::new(LimitIter {
                    upstream: it,
                    remaining: n,
                }),
            };
        }
        Ok(Compiled {
            tx,
            iter: it,
            projection,
        })
    }

    /// Compiles the pipeline into a streaming, snapshot-consistent
    /// iterator over node IDs.
    pub fn stream(self) -> Result<QueryStream<'tx>> {
        Ok(QueryStream {
            inner: self.compile()?.iter,
        })
    }

    /// Compiles the pipeline into a streaming iterator over [`Row`]s:
    /// each result carries the node, the relationship the last `expand`
    /// traversed to reach it, and the properties selected with
    /// [`QueryBuilder::project`] — decoded once per row, at this final
    /// stage, through the selective single-walk chain decode.
    pub fn stream_rows(self) -> Result<RowStream<'tx>> {
        let compiled = self.compile()?;
        // Unknown names project to absent, so they are dropped here once;
        // the remaining (name, token) pairs and the bare token list are
        // fixed for the stream's lifetime — no per-row re-resolution.
        let projection: Vec<(String, graphsi_storage::PropertyKeyToken)> = compiled
            .projection
            .unwrap_or_default()
            .into_iter()
            .filter_map(|(name, token)| token.map(|t| (name, t)))
            .collect();
        let tokens: Vec<graphsi_storage::PropertyKeyToken> =
            projection.iter().map(|(_, t)| *t).collect();
        Ok(RowStream {
            tx: compiled.tx,
            inner: compiled.iter,
            projection,
            tokens,
            failed: false,
        })
    }

    /// Runs the query and collects the resulting node IDs (in stream
    /// order).
    pub fn ids(self) -> Result<Vec<NodeId>> {
        self.stream()?.collect()
    }

    /// Runs the query and counts the results without collecting them.
    pub fn count(self) -> Result<usize> {
        let mut n = 0;
        for id in self.stream()? {
            id?;
            n += 1;
        }
        Ok(n)
    }

    /// Runs the query and materialises the resulting nodes (labels and
    /// properties resolved to names).
    pub fn nodes(self) -> Result<Vec<Node>> {
        let tx = self.tx;
        let mut out = Vec::new();
        for id in self.stream()? {
            let id = id?;
            if let Some(node) = tx.get_node(id)? {
                out.push(node);
            }
        }
        Ok(out)
    }

    /// Runs the query and collects the resulting [`Row`]s (in stream
    /// order). See [`QueryBuilder::stream_rows`].
    pub fn rows(self) -> Result<Vec<Row>> {
        self.stream_rows()?.collect()
    }
}

impl std::fmt::Debug for QueryBuilder<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryBuilder")
            .field("stages", &self.stages.len())
            .field("chunk_size", &self.chunk_size)
            .field("pushdown", &self.pushdown)
            .finish_non_exhaustive()
    }
}

/// One result of a row terminal: the node, the relationship the last
/// expansion stage traversed to reach it (`None` for source rows), and
/// the projected properties — only the keys selected with
/// [`QueryBuilder::project`], and only those present on the node, in
/// projection order.
#[derive(Clone, Debug, PartialEq)]
pub struct Row {
    /// The result node.
    pub node: NodeId,
    /// The relationship the last `expand` stage followed to produce this
    /// row, if the pipeline expanded.
    pub rel: Option<RelationshipId>,
    /// Projected `(name, value)` pairs, in projection order; keys absent
    /// on the node are omitted.
    pub properties: Vec<(String, PropertyValue)>,
}

impl Row {
    /// The projected value of `name`, if present.
    pub fn property(&self, name: &str) -> Option<&PropertyValue> {
        self.properties
            .iter()
            .find_map(|(n, v)| (n == name).then_some(v))
    }
}

/// The internal element every pipeline stage streams: a node plus the
/// relationship that produced it (set by expansion stages).
#[derive(Clone, Copy, Debug)]
pub(crate) struct RowCore {
    node: NodeId,
    rel: Option<RelationshipId>,
}

type BoxedRowIter<'tx> = Box<dyn Iterator<Item = Result<RowCore>> + 'tx>;

/// Output of [`QueryBuilder::compile`].
struct Compiled<'tx> {
    tx: &'tx Transaction,
    iter: BoxedRowIter<'tx>,
    projection: Option<Vec<(String, Option<graphsi_storage::PropertyKeyToken>)>>,
}

/// Adapts a bare node-ID iterator (the chunked scan sources) into the
/// row pipeline.
fn row_source<'tx, I>(ids: I) -> BoxedRowIter<'tx>
where
    I: Iterator<Item = Result<NodeId>> + 'tx,
{
    Box::new(ids.map(|r| r.map(|node| RowCore { node, rel: None })))
}

/// The compiled, streaming node-ID result of a [`QueryBuilder`]. Yields
/// `Result<NodeId>`; an error fuses the stream.
pub struct QueryStream<'tx> {
    inner: BoxedRowIter<'tx>,
}

impl Iterator for QueryStream<'_> {
    type Item = Result<NodeId>;

    fn next(&mut self) -> Option<Self::Item> {
        Some(self.inner.next()?.map(|row| row.node))
    }
}

impl std::fmt::Debug for QueryStream<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryStream").finish_non_exhaustive()
    }
}

/// The compiled, streaming row result of a [`QueryBuilder`]; created by
/// [`QueryBuilder::stream_rows`]. Yields `Result<Row>`; an error fuses
/// the stream.
pub struct RowStream<'tx> {
    tx: &'tx Transaction,
    inner: BoxedRowIter<'tx>,
    /// Projected names with their (known) tokens, resolved once at compile.
    projection: Vec<(String, graphsi_storage::PropertyKeyToken)>,
    /// The bare token list `visible_node_properties` takes, in projection
    /// order — precomputed so the hot per-row path allocates nothing extra.
    tokens: Vec<graphsi_storage::PropertyKeyToken>,
    failed: bool,
}

impl Iterator for RowStream<'_> {
    type Item = Result<Row>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        let core = match self.inner.next()? {
            Ok(core) => core,
            Err(e) => {
                self.failed = true;
                return Some(Err(e));
            }
        };
        let mut properties = Vec::new();
        if !self.projection.is_empty() {
            // One selective chain walk decodes every projected key.
            let values = match self.tx.visible_node_properties(core.node, &self.tokens) {
                Ok(values) => values.unwrap_or_default(),
                Err(e) => {
                    self.failed = true;
                    return Some(Err(e));
                }
            };
            for ((name, _), value) in self.projection.iter().zip(values) {
                if let Some(value) = value {
                    properties.push((name.clone(), value));
                }
            }
        }
        Some(Ok(Row {
            node: core.node,
            rel: core.rel,
            properties,
        }))
    }
}

impl std::fmt::Debug for RowStream<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RowStream")
            .field("projection", &self.projection.len())
            .finish_non_exhaustive()
    }
}

/// Explicit start set, visibility-checked as it streams.
struct FixedSource<'tx> {
    tx: &'tx Transaction,
    ids: std::vec::IntoIter<NodeId>,
    failed: bool,
}

impl Iterator for FixedSource<'_> {
    type Item = Result<RowCore>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        for id in self.ids.by_ref() {
            match self.tx.visible_node(id) {
                Ok(Some(_)) => {
                    return Some(Ok(RowCore {
                        node: id,
                        rel: None,
                    }))
                }
                Ok(None) => {}
                Err(e) => {
                    self.failed = true;
                    return Some(Err(e));
                }
            }
        }
        None
    }
}

/// Filter stage: keeps rows whose node satisfies a snapshot predicate.
struct FilterIter<'tx> {
    tx: &'tx Transaction,
    upstream: BoxedRowIter<'tx>,
    pred: NodePredicate<'tx>,
    failed: bool,
}

impl Iterator for FilterIter<'_> {
    type Item = Result<RowCore>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        for row in self.upstream.by_ref() {
            match row.and_then(|row| (self.pred)(self.tx, row.node).map(|keep| (row, keep))) {
                Ok((row, true)) => return Some(Ok(row)),
                Ok((_, false)) => {}
                Err(e) => {
                    self.failed = true;
                    return Some(Err(e));
                }
            }
        }
        None
    }
}

/// How an expansion stage restricts relationship types.
enum TypeFilter {
    Any,
    Only(RelTypeToken),
    /// The requested type name was never interned: nothing matches.
    NoMatch,
}

/// Expansion stage: one hop along the relationships of each upstream node,
/// streaming the far endpoints (tagged with the relationship traversed).
/// Holds one upstream node's enriched relationship iterator at a time —
/// O(frontier + chunk) memory.
struct ExpandIter<'tx> {
    tx: &'tx Transaction,
    upstream: BoxedRowIter<'tx>,
    direction: Direction,
    type_filter: TypeFilter,
    current: Option<(NodeId, RelEntryIter<'tx>)>,
    chunk: usize,
    failed: bool,
}

impl Iterator for ExpandIter<'_> {
    type Item = Result<RowCore>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        if matches!(self.type_filter, TypeFilter::NoMatch) {
            return None;
        }
        loop {
            if let Some((node, rels)) = &mut self.current {
                let node = *node;
                for rel in rels.by_ref() {
                    match rel {
                        Ok((id, data)) => {
                            if let TypeFilter::Only(t) = self.type_filter {
                                if data.rel_type != t {
                                    continue;
                                }
                            }
                            return Some(Ok(RowCore {
                                node: data.other_node(node),
                                rel: Some(id),
                            }));
                        }
                        Err(e) => {
                            self.failed = true;
                            return Some(Err(e));
                        }
                    }
                }
                self.current = None;
            }
            match self.upstream.next() {
                Some(Ok(row)) => {
                    match self
                        .tx
                        .neighbors_or_empty(row.node, self.direction, self.chunk)
                    {
                        Ok(rels) => self.current = Some((row.node, rels)),
                        Err(e) => {
                            self.failed = true;
                            return Some(Err(e));
                        }
                    }
                }
                Some(Err(e)) => {
                    self.failed = true;
                    return Some(Err(e));
                }
                None => return None,
            }
        }
    }
}

/// Distinct stage: keeps the first row per node.
struct DistinctIter<'tx> {
    upstream: BoxedRowIter<'tx>,
    seen: HashSet<NodeId>,
}

impl Iterator for DistinctIter<'_> {
    type Item = Result<RowCore>;

    fn next(&mut self) -> Option<Self::Item> {
        for row in self.upstream.by_ref() {
            match row {
                Ok(row) => {
                    if self.seen.insert(row.node) {
                        return Some(Ok(row));
                    }
                }
                Err(e) => return Some(Err(e)),
            }
        }
        None
    }
}

/// Limit stage: stops pulling upstream once `remaining` results streamed.
struct LimitIter<'tx> {
    upstream: BoxedRowIter<'tx>,
    remaining: usize,
}

impl Iterator for LimitIter<'_> {
    type Item = Result<RowCore>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.remaining == 0 {
            return None;
        }
        match self.upstream.next() {
            Some(Ok(row)) => {
                self.remaining -= 1;
                Some(Ok(row))
            }
            other => other,
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::config::DbConfig;
    use crate::db::GraphDb;
    use crate::entity::Direction;
    use graphsi_storage::test_util::TempDir;
    use graphsi_storage::{NodeId, PropertyValue};

    fn social_graph(db: &GraphDb) -> (Vec<NodeId>, Vec<NodeId>) {
        let mut tx = db.begin();
        let people: Vec<NodeId> = (0..6)
            .map(|i| {
                tx.create_node(
                    &["Person"],
                    &[("age", PropertyValue::Int(20 + 5 * i as i64))],
                )
                .unwrap()
            })
            .collect();
        let cities: Vec<NodeId> = (0..2)
            .map(|_| tx.create_node(&["City"], &[]).unwrap())
            .collect();
        // people[i] KNOWS people[i+1]; everyone LIVES_IN a city.
        for pair in people.windows(2) {
            tx.create_relationship(pair[0], pair[1], "KNOWS", &[])
                .unwrap();
        }
        for (i, &p) in people.iter().enumerate() {
            tx.create_relationship(p, cities[i % 2], "LIVES_IN", &[])
                .unwrap();
        }
        tx.commit().unwrap();
        (people, cities)
    }

    #[test]
    fn label_filter_expand_distinct_limit_compose() {
        let dir = TempDir::new("query_compose");
        let db = GraphDb::open(dir.path(), DbConfig::default()).unwrap();
        let (people, cities) = social_graph(&db);
        let tx = db.txn().read_only().begin();

        // Cities where people aged >= 30 live.
        let mut homes = tx
            .query()
            .nodes_with_label("Person")
            .filter_property("age", |v| v.as_int().is_some_and(|a| a >= 30))
            .expand(Direction::Outgoing, Some("LIVES_IN"))
            .distinct()
            .ids()
            .unwrap();
        homes.sort();
        let mut expected = cities.clone();
        expected.sort();
        assert_eq!(homes, expected);

        // Two-hop KNOWS expansion from the chain head.
        let two_hops = tx
            .query()
            .start_nodes([people[0]])
            .expand(Direction::Outgoing, Some("KNOWS"))
            .expand(Direction::Outgoing, Some("KNOWS"))
            .ids()
            .unwrap();
        assert_eq!(two_hops, vec![people[2]]);

        // Limit stops the stream early.
        let limited = tx
            .query()
            .nodes_with_label("Person")
            .limit(2)
            .count()
            .unwrap();
        assert_eq!(limited, 2);
    }

    #[test]
    fn range_predicate_pushes_down_to_the_index() {
        let dir = TempDir::new("query_pushdown");
        let db = GraphDb::open(dir.path(), DbConfig::default()).unwrap();
        let (people, _) = social_graph(&db);
        let tx = db.txn().read_only().begin();

        let before = db.metrics();
        let mut adults = tx
            .query()
            .filter_property_range("age", PropertyValue::Int(30)..=PropertyValue::Int(40))
            .ids()
            .unwrap();
        adults.sort();
        // Ages 30, 35, 40 -> people[2..=4].
        let mut expected = people[2..=4].to_vec();
        expected.sort();
        assert_eq!(adults, expected);
        let after = db.metrics();
        assert_eq!(
            after.predicate_pushdowns,
            before.predicate_pushdowns + 1,
            "the range predicate must compile to an index range source"
        );
        assert_eq!(after.property_decodes, before.property_decodes);
        assert_eq!(
            after.decode_filter_fallbacks,
            before.decode_filter_fallbacks
        );
    }

    #[test]
    fn pushdown_disabled_takes_the_decode_path_with_identical_results() {
        let dir = TempDir::new("query_no_pushdown");
        let db = GraphDb::open(dir.path(), DbConfig::default()).unwrap();
        social_graph(&db);
        let tx = db.txn().read_only().begin();

        let range = || PropertyValue::Int(25)..PropertyValue::Int(45);
        let mut pushed = tx
            .query()
            .filter_property_range("age", range())
            .ids()
            .unwrap();
        let before = db.metrics();
        let mut decoded = tx
            .query()
            .filter_property_range("age", range())
            .pushdown(false)
            .ids()
            .unwrap();
        let after = db.metrics();
        pushed.sort();
        decoded.sort();
        assert_eq!(pushed, decoded, "both paths agree on the result set");
        assert_eq!(
            after.decode_filter_fallbacks,
            before.decode_filter_fallbacks + 1
        );
        assert!(
            after.property_decodes > before.property_decodes,
            "the decode path pays per-candidate property materialisations"
        );
    }

    #[test]
    fn pushdown_disabled_demotes_equality_sources_too() {
        let dir = TempDir::new("query_no_pushdown_eq");
        let db = GraphDb::open(dir.path(), DbConfig::default()).unwrap();
        let (people, _) = social_graph(&db);
        let tx = db.txn().read_only().begin();
        let before = db.metrics();
        let hit = tx
            .query()
            .nodes_with_property("age", PropertyValue::Int(25))
            .pushdown(false)
            .ids()
            .unwrap();
        assert_eq!(hit, vec![people[1]]);
        let after = db.metrics();
        assert_eq!(
            after.predicate_pushdowns, before.predicate_pushdowns,
            "with pushdown disabled no predicate may execute on the index"
        );
        assert_eq!(
            after.decode_filter_fallbacks,
            before.decode_filter_fallbacks + 1
        );
        assert!(after.property_decodes > before.property_decodes);
    }

    #[test]
    fn comparison_forms_compile_and_agree() {
        let dir = TempDir::new("query_cmp_forms");
        let db = GraphDb::open(dir.path(), DbConfig::default()).unwrap();
        let (people, _) = social_graph(&db);
        let tx = db.txn().read_only().begin();

        let ge = tx
            .query()
            .nodes_with_property_ge("age", PropertyValue::Int(35))
            .count()
            .unwrap();
        assert_eq!(ge, 3); // 35, 40, 45
        let gt = tx
            .query()
            .nodes_with_property_gt("age", PropertyValue::Int(35))
            .count()
            .unwrap();
        assert_eq!(gt, 2);
        let le = tx
            .query()
            .nodes_with_property_le("age", PropertyValue::Int(25))
            .count()
            .unwrap();
        assert_eq!(le, 2); // 20, 25
        let lt = tx
            .query()
            .nodes_with_property_lt("age", PropertyValue::Int(25))
            .ids()
            .unwrap();
        assert_eq!(lt, vec![people[0]]);
    }

    #[test]
    fn planner_swaps_label_source_for_a_narrower_range() {
        let dir = TempDir::new("query_swap");
        let db = GraphDb::open(dir.path(), DbConfig::default()).unwrap();
        let (people, _) = social_graph(&db);
        let tx = db.txn().read_only().begin();

        // 6 Person postings vs 1 age=25 posting: the planner must scan the
        // property index and label-check the survivors.
        let before = db.metrics();
        let hit = tx
            .query()
            .nodes_with_label("Person")
            .nodes_with_property("age", PropertyValue::Int(25))
            .ids()
            .unwrap();
        assert_eq!(hit, vec![people[1]]);
        let after = db.metrics();
        assert_eq!(after.predicate_pushdowns, before.predicate_pushdowns + 1);
        assert_eq!(
            after.decode_filter_fallbacks,
            before.decode_filter_fallbacks
        );
    }

    #[test]
    fn redundant_equality_after_property_source_is_elided() {
        let dir = TempDir::new("query_dedup_eq");
        let db = GraphDb::open(dir.path(), DbConfig::default()).unwrap();
        social_graph(&db);
        let tx = db.txn().read_only().begin();
        let before = db.metrics();
        let count = tx
            .query()
            .nodes_with_property("age", PropertyValue::Int(25))
            .nodes_with_property("age", PropertyValue::Int(25))
            .count()
            .unwrap();
        assert_eq!(count, 1);
        let after = db.metrics();
        assert_eq!(
            after.property_decodes, before.property_decodes,
            "the index source already guarantees the equality — no \
             per-node re-decode"
        );
        assert_eq!(
            after.decode_filter_fallbacks,
            before.decode_filter_fallbacks
        );
        // A *different* equality on the same source still filters.
        let none = tx
            .query()
            .nodes_with_property("age", PropertyValue::Int(25))
            .nodes_with_property("age", PropertyValue::Int(30))
            .count()
            .unwrap();
        assert_eq!(none, 0);
    }

    #[test]
    fn range_source_merges_write_set_state() {
        let dir = TempDir::new("query_range_ws");
        let db = GraphDb::open(dir.path(), DbConfig::default()).unwrap();
        let (people, _) = social_graph(&db);

        let mut tx = db.begin();
        // Pending creation inside the range.
        let fresh = tx
            .create_node(&["Person"], &[("age", PropertyValue::Int(33))])
            .unwrap();
        // Move people[2] (age 30) out of the range, people[0] (age 20) in.
        tx.set_node_property(people[2], "age", PropertyValue::Int(99))
            .unwrap();
        tx.set_node_property(people[0], "age", PropertyValue::Int(31))
            .unwrap();

        let mut got = tx
            .query()
            .filter_property_range("age", PropertyValue::Int(30)..=PropertyValue::Int(40))
            .ids()
            .unwrap();
        got.sort();
        // Expected: people[3]=35, people[4]=40 (untouched), fresh=33,
        // people[0]=31 (moved in); people[2] moved out.
        let mut expected = vec![people[3], people[4], fresh, people[0]];
        expected.sort();
        assert_eq!(got, expected);
    }

    #[test]
    fn rows_carry_rel_and_projection() {
        let dir = TempDir::new("query_rows");
        let db = GraphDb::open(dir.path(), DbConfig::default()).unwrap();
        let (people, _) = social_graph(&db);
        let tx = db.txn().read_only().begin();

        // Source rows: no rel, projected age present.
        let rows = tx
            .query()
            .nodes_with_property("age", PropertyValue::Int(25))
            .project(["age", "nope"])
            .rows()
            .unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].node, people[1]);
        assert_eq!(rows[0].rel, None);
        assert_eq!(rows[0].property("age"), Some(&PropertyValue::Int(25)));
        assert_eq!(rows[0].property("nope"), None);

        // Expanded rows: rel names the traversed relationship, projection
        // decodes at the final stage.
        let rows = tx
            .query()
            .start_nodes([people[0]])
            .expand(Direction::Outgoing, Some("KNOWS"))
            .project(["age"])
            .rows()
            .unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].node, people[1]);
        let rel = rows[0].rel.expect("expansion tags the relationship");
        let rel = tx.get_relationship(rel).unwrap().unwrap();
        assert_eq!((rel.source, rel.target), (people[0], people[1]));
        assert_eq!(rows[0].property("age"), Some(&PropertyValue::Int(25)));

        // Without a projection, rows carry no properties.
        let bare = tx.query().nodes_with_label("City").rows().unwrap();
        assert!(bare
            .iter()
            .all(|r| r.properties.is_empty() && r.rel.is_none()));
    }

    #[test]
    fn query_is_snapshot_consistent_and_reads_own_writes() {
        let dir = TempDir::new("query_snapshot");
        let db = GraphDb::open(dir.path(), DbConfig::default()).unwrap();
        let (people, _) = social_graph(&db);

        let mut tx = db.begin();
        let fresh = tx.create_node(&["Person"], &[]).unwrap();
        tx.create_relationship(people[0], fresh, "KNOWS", &[])
            .unwrap();
        // Own pending writes are visible...
        let own = tx
            .query()
            .start_nodes([people[0]])
            .expand(Direction::Outgoing, Some("KNOWS"))
            .ids()
            .unwrap();
        assert!(own.contains(&fresh));
        assert!(own.contains(&people[1]));
        // ...but invisible to a concurrent snapshot.
        let other = db.txn().read_only().begin();
        let others = other.query().nodes_with_label("Person").count().unwrap();
        assert_eq!(others, 6);
        drop(other);
    }

    #[test]
    fn unknown_names_yield_empty_streams() {
        let dir = TempDir::new("query_unknown");
        let db = GraphDb::open(dir.path(), DbConfig::default()).unwrap();
        let (people, _) = social_graph(&db);
        let tx = db.begin();
        assert_eq!(tx.query().nodes_with_label("Nope").count().unwrap(), 0);
        assert_eq!(
            tx.query()
                .start_nodes(people.clone())
                .expand(Direction::Both, Some("NO_SUCH_TYPE"))
                .count()
                .unwrap(),
            0
        );
        // Unknown property key compiles to a cheap empty stream — no
        // decode pass that filters everything out.
        let before = db.metrics();
        assert_eq!(
            tx.query()
                .nodes_with_label("Person")
                .filter_property("nope", |_| true)
                .count()
                .unwrap(),
            0
        );
        assert_eq!(
            tx.query()
                .filter_property_range("nope", PropertyValue::Int(0)..)
                .count()
                .unwrap(),
            0
        );
        let after = db.metrics();
        assert_eq!(
            after.property_decodes, before.property_decodes,
            "unknown keys must not decode anything"
        );
        // Mixed-type (unsatisfiable) bounds are empty too, not wrong.
        assert_eq!(
            tx.query()
                .filter_property_range(
                    "age",
                    PropertyValue::Int(0)..=PropertyValue::String("z".into())
                )
                .count()
                .unwrap(),
            0
        );
    }

    #[test]
    fn nodes_terminal_materialises_public_nodes() {
        let dir = TempDir::new("query_nodes");
        let db = GraphDb::open(dir.path(), DbConfig::default()).unwrap();
        social_graph(&db);
        let tx = db.begin();
        let nodes = tx
            .query()
            .nodes_with_label("Person")
            .filter_property("age", |v| v == &PropertyValue::Int(20))
            .nodes()
            .unwrap();
        assert_eq!(nodes.len(), 1);
        assert!(nodes[0].labels.contains(&"Person".to_owned()));
    }

    #[test]
    fn source_after_stages_is_an_error_not_silent_misbehavior() {
        let dir = TempDir::new("query_compose_err");
        let db = GraphDb::open(dir.path(), DbConfig::default()).unwrap();
        let (people, _) = social_graph(&db);
        let tx = db.begin();
        let err = tx
            .query()
            .nodes_with_label("Person")
            .expand(Direction::Outgoing, None)
            .start_nodes(people)
            .ids()
            .unwrap_err();
        assert!(matches!(err, crate::error::DbError::InvalidQuery(_)));
    }

    #[test]
    fn per_query_chunk_size_applies_to_every_source() {
        let dir = TempDir::new("query_chunk_all");
        let db = GraphDb::open(dir.path(), DbConfig::default()).unwrap();
        social_graph(&db);
        let tx = db.txn().read_only().begin();
        assert_eq!(tx.query().all_nodes().chunk_size(2).count().unwrap(), 8);
        let peak = db.metrics().candidate_buffer_peak;
        assert!(
            peak <= 2,
            "all_nodes must honor the per-query chunk override (peak {peak})"
        );
    }

    #[test]
    fn chained_source_calls_degrade_to_filters() {
        let dir = TempDir::new("query_chain_src");
        let db = GraphDb::open(dir.path(), DbConfig::default()).unwrap();
        let (people, cities) = social_graph(&db);
        let _ = (people, cities);
        let tx = db.begin();
        // Person ∩ (age == 25): second call becomes a filter (which the
        // planner may execute on either index).
        let count = tx
            .query()
            .nodes_with_label("Person")
            .nodes_with_property("age", PropertyValue::Int(25))
            .count()
            .unwrap();
        assert_eq!(count, 1);
    }
}
