//! The composable, streaming query builder — `tx.query()`.
//!
//! A [`QueryBuilder`] describes a pipeline of relational-ish stages over
//! the graph (CrocoPat-style composition on top of the paper's enriched
//! iterators): a *source* (label scan, property scan, whole-graph scan or
//! an explicit start set) followed by *stages* (property/label filters,
//! multi-hop `expand`, `distinct`, `limit`). Terminal calls
//! ([`QueryBuilder::stream`], [`QueryBuilder::ids`], [`QueryBuilder::count`],
//! [`QueryBuilder::nodes`]) compile it into a [`QueryStream`]: a
//! snapshot-consistent iterator with read-your-own-writes that pulls
//! results element by element through the chunked, GC-safe cursors of
//! [`crate::iter`] — peak candidate buffering stays bounded by the chunk
//! size no matter how many nodes a stage scans (the `all_nodes` source
//! additionally stages one MVCC cache shard's keys at a time; see
//! `crate::iter` for the bound).

use std::collections::HashSet;

use graphsi_storage::{NodeId, PropertyValue, RelTypeToken};

use crate::entity::{Direction, Node};
use crate::error::Result;
use crate::iter::RelEntryIter;
use crate::transaction::Transaction;

/// Where the pipeline draws its initial node stream from.
enum Source {
    /// Every node visible to the transaction (the default).
    AllNodes,
    /// Index-backed label scan.
    Label(String),
    /// Index-backed property scan.
    Property(String, PropertyValue),
    /// An explicit start set (visibility-checked when streamed).
    Fixed(Vec<NodeId>),
}

/// A boxed snapshot predicate over one node, as stored by filter stages.
type NodePredicate<'tx> = Box<dyn Fn(&Transaction, NodeId) -> Result<bool> + 'tx>;

/// One pipeline stage.
enum Stage<'tx> {
    FilterProperty(String, Box<dyn Fn(&PropertyValue) -> bool + 'tx>),
    FilterLabel(String),
    Filter(NodePredicate<'tx>),
    Expand {
        direction: Direction,
        rel_type: Option<String>,
    },
    Distinct,
    Limit(usize),
}

/// A composable, streaming query over one transaction's view; created by
/// [`Transaction::query`]. See the method docs there for an example.
#[must_use = "finish the builder with `.stream()`, `.ids()`, `.count()` or `.nodes()`"]
pub struct QueryBuilder<'tx> {
    tx: &'tx Transaction,
    source: Source,
    source_set: bool,
    stages: Vec<Stage<'tx>>,
    chunk_size: Option<usize>,
    /// Set when the builder was composed illegally (a source after
    /// stages); reported as an error by the terminal calls, so a
    /// mis-composed query can never silently return wrong data.
    compose_error: Option<&'static str>,
}

impl<'tx> QueryBuilder<'tx> {
    pub(crate) fn new(tx: &'tx Transaction) -> Self {
        QueryBuilder {
            tx,
            source: Source::AllNodes,
            source_set: false,
            stages: Vec::new(),
            chunk_size: None,
            compose_error: None,
        }
    }

    fn set_source(mut self, source: Source) -> Self {
        if self.source_set || !self.stages.is_empty() {
            self.compose_error = Some(
                "query source must be set first and at most once (after stages, \
                      use has_label / filter_property / filter instead)",
            );
            return self;
        }
        self.source = source;
        self.source_set = true;
        self
    }

    /// Starts from the nodes carrying `label` (index-backed). If stages
    /// were already added, acts as a label filter instead.
    pub fn nodes_with_label(self, label: &str) -> Self {
        if self.source_set || !self.stages.is_empty() {
            return self.has_label(label);
        }
        self.set_source(Source::Label(label.to_owned()))
    }

    /// Starts from the nodes whose property `name` equals `value`
    /// (index-backed). If stages were already added, acts as a filter
    /// instead — with the same equality semantics as the index
    /// (`PropertyValue::index_key`, so e.g. float `NaN` matches itself).
    pub fn nodes_with_property(self, name: &str, value: PropertyValue) -> Self {
        if self.source_set || !self.stages.is_empty() {
            let wanted = value.index_key();
            return self
                .filter_property_opt(name, move |v| v.is_some_and(|v| v.index_key() == wanted));
        }
        self.set_source(Source::Property(name.to_owned(), value))
    }

    /// Starts from every node visible to the transaction (the default
    /// source).
    pub fn all_nodes(self) -> Self {
        self.set_source(Source::AllNodes)
    }

    /// Starts from an explicit set of node IDs. Nodes invisible to the
    /// transaction's snapshot are silently dropped when streamed.
    pub fn start_nodes(self, nodes: impl IntoIterator<Item = NodeId>) -> Self {
        self.set_source(Source::Fixed(nodes.into_iter().collect()))
    }

    /// Keeps only nodes whose property `name` exists and satisfies `pred`.
    pub fn filter_property(
        mut self,
        name: &str,
        pred: impl Fn(&PropertyValue) -> bool + 'tx,
    ) -> Self {
        self.stages
            .push(Stage::FilterProperty(name.to_owned(), Box::new(pred)));
        self
    }

    fn filter_property_opt(
        mut self,
        name: &str,
        pred: impl Fn(Option<&PropertyValue>) -> bool + 'tx,
    ) -> Self {
        // Resolve the token once: the builder's shared borrow of the
        // transaction rules out interleaved writes, so a key unknown here
        // stays unknown for the whole query.
        let token = self.tx.db().store.tokens().existing_property_key(name);
        self.stages.push(Stage::Filter(Box::new(
            move |tx: &Transaction, id: NodeId| {
                let Some(data) = tx.visible_node(id)? else {
                    return Ok(false);
                };
                Ok(pred(token.and_then(|t| data.properties.get(&t))))
            },
        )));
        self
    }

    /// Keeps only nodes carrying `label`.
    pub fn has_label(mut self, label: &str) -> Self {
        self.stages.push(Stage::FilterLabel(label.to_owned()));
        self
    }

    /// Keeps only nodes for which `pred` returns `true`. The predicate
    /// receives the transaction, so it can run arbitrary snapshot reads.
    pub fn filter(mut self, pred: impl Fn(&Transaction, NodeId) -> Result<bool> + 'tx) -> Self {
        self.stages.push(Stage::Filter(Box::new(pred)));
        self
    }

    /// Expands every incoming node one hop along its relationships in
    /// `direction`, optionally restricted to relationships of type
    /// `rel_type`, yielding the far endpoints. Chain `expand` calls for
    /// multi-hop (k-hop) expansion; add [`QueryBuilder::distinct`] to
    /// deduplicate the frontier.
    pub fn expand(mut self, direction: Direction, rel_type: Option<&str>) -> Self {
        self.stages.push(Stage::Expand {
            direction,
            rel_type: rel_type.map(str::to_owned),
        });
        self
    }

    /// Deduplicates the stream from this point on (keeps first
    /// occurrences, in stream order). Memory is proportional to the number
    /// of *distinct* rows that pass, not to the candidates scanned.
    pub fn distinct(mut self) -> Self {
        self.stages.push(Stage::Distinct);
        self
    }

    /// Stops after `n` results. Upstream cursors stop being pulled — and
    /// stop refilling chunks — as soon as the limit is reached.
    pub fn limit(mut self, n: usize) -> Self {
        self.stages.push(Stage::Limit(n));
        self
    }

    /// Overrides the cursor chunk size for this query only (defaults to
    /// the transaction's [`Transaction::scan_chunk_size`]).
    pub fn chunk_size(mut self, chunk: usize) -> Self {
        self.chunk_size = Some(chunk.max(1));
        self
    }

    /// Compiles the pipeline into a streaming, snapshot-consistent
    /// iterator over node IDs.
    pub fn stream(self) -> Result<QueryStream<'tx>> {
        if let Some(reason) = self.compose_error {
            return Err(crate::error::DbError::InvalidQuery(reason.to_owned()));
        }
        let tx = self.tx;
        let chunk = self.chunk_size.unwrap_or(tx.scan_chunk_size());
        let mut it: BoxedIdIter<'tx> = match self.source {
            Source::AllNodes => Box::new(tx.all_nodes_chunked(chunk)?),
            Source::Label(label) => Box::new(tx.nodes_with_label_chunked(&label, chunk)?),
            Source::Property(name, value) => {
                Box::new(tx.nodes_with_property_chunked(&name, &value, chunk)?)
            }
            Source::Fixed(ids) => Box::new(FixedSource {
                tx,
                ids: ids.into_iter(),
                failed: false,
            }),
        };
        for stage in self.stages {
            it = match stage {
                Stage::FilterProperty(name, pred) => {
                    let token = tx.db().store.tokens().existing_property_key(&name);
                    Box::new(FilterIter {
                        tx,
                        upstream: it,
                        failed: false,
                        pred: Box::new(move |tx: &Transaction, id: NodeId| {
                            let Some(data) = tx.visible_node(id)? else {
                                return Ok(false);
                            };
                            Ok(token
                                .and_then(|t| data.properties.get(&t))
                                .is_some_and(&pred))
                        }),
                    })
                }
                Stage::FilterLabel(label) => {
                    let token = tx.db().store.tokens().existing_label(&label);
                    Box::new(FilterIter {
                        tx,
                        upstream: it,
                        failed: false,
                        pred: Box::new(move |tx: &Transaction, id: NodeId| {
                            let Some(data) = tx.visible_node(id)? else {
                                return Ok(false);
                            };
                            Ok(token.is_some_and(|t| data.has_label(t)))
                        }),
                    })
                }
                Stage::Filter(pred) => Box::new(FilterIter {
                    tx,
                    upstream: it,
                    pred,
                    failed: false,
                }),
                Stage::Expand {
                    direction,
                    rel_type,
                } => {
                    let type_token = match &rel_type {
                        None => TypeFilter::Any,
                        Some(name) => match tx.db().store.tokens().existing_rel_type(name) {
                            Some(t) => TypeFilter::Only(t),
                            // Name never interned: no relationship can match.
                            None => TypeFilter::NoMatch,
                        },
                    };
                    Box::new(ExpandIter {
                        tx,
                        upstream: it,
                        direction,
                        type_filter: type_token,
                        current: None,
                        chunk,
                        failed: false,
                    })
                }
                Stage::Distinct => Box::new(DistinctIter {
                    upstream: it,
                    seen: HashSet::new(),
                }),
                Stage::Limit(n) => Box::new(LimitIter {
                    upstream: it,
                    remaining: n,
                }),
            };
        }
        Ok(QueryStream { inner: it })
    }

    /// Runs the query and collects the resulting node IDs (in stream
    /// order).
    pub fn ids(self) -> Result<Vec<NodeId>> {
        self.stream()?.collect()
    }

    /// Runs the query and counts the results without collecting them.
    pub fn count(self) -> Result<usize> {
        let mut n = 0;
        for id in self.stream()? {
            id?;
            n += 1;
        }
        Ok(n)
    }

    /// Runs the query and materialises the resulting nodes (labels and
    /// properties resolved to names).
    pub fn nodes(self) -> Result<Vec<Node>> {
        let tx = self.tx;
        let mut out = Vec::new();
        for id in self.stream()? {
            let id = id?;
            if let Some(node) = tx.get_node(id)? {
                out.push(node);
            }
        }
        Ok(out)
    }
}

impl std::fmt::Debug for QueryBuilder<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryBuilder")
            .field("stages", &self.stages.len())
            .field("chunk_size", &self.chunk_size)
            .finish_non_exhaustive()
    }
}

type BoxedIdIter<'tx> = Box<dyn Iterator<Item = Result<NodeId>> + 'tx>;

/// The compiled, streaming result of a [`QueryBuilder`]. Yields
/// `Result<NodeId>`; an error fuses the stream.
pub struct QueryStream<'tx> {
    inner: BoxedIdIter<'tx>,
}

impl Iterator for QueryStream<'_> {
    type Item = Result<NodeId>;

    fn next(&mut self) -> Option<Self::Item> {
        self.inner.next()
    }
}

impl std::fmt::Debug for QueryStream<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryStream").finish_non_exhaustive()
    }
}

/// Explicit start set, visibility-checked as it streams.
struct FixedSource<'tx> {
    tx: &'tx Transaction,
    ids: std::vec::IntoIter<NodeId>,
    failed: bool,
}

impl Iterator for FixedSource<'_> {
    type Item = Result<NodeId>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        for id in self.ids.by_ref() {
            match self.tx.visible_node(id) {
                Ok(Some(_)) => return Some(Ok(id)),
                Ok(None) => {}
                Err(e) => {
                    self.failed = true;
                    return Some(Err(e));
                }
            }
        }
        None
    }
}

/// Filter stage: keeps nodes satisfying a snapshot predicate.
struct FilterIter<'tx> {
    tx: &'tx Transaction,
    upstream: BoxedIdIter<'tx>,
    pred: NodePredicate<'tx>,
    failed: bool,
}

impl Iterator for FilterIter<'_> {
    type Item = Result<NodeId>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        for id in self.upstream.by_ref() {
            match id.and_then(|id| (self.pred)(self.tx, id).map(|keep| (id, keep))) {
                Ok((id, true)) => return Some(Ok(id)),
                Ok((_, false)) => {}
                Err(e) => {
                    self.failed = true;
                    return Some(Err(e));
                }
            }
        }
        None
    }
}

/// How an expansion stage restricts relationship types.
enum TypeFilter {
    Any,
    Only(RelTypeToken),
    /// The requested type name was never interned: nothing matches.
    NoMatch,
}

/// Expansion stage: one hop along the relationships of each upstream node,
/// streaming the far endpoints. Holds one upstream node's enriched
/// relationship iterator at a time — O(frontier + chunk) memory.
struct ExpandIter<'tx> {
    tx: &'tx Transaction,
    upstream: BoxedIdIter<'tx>,
    direction: Direction,
    type_filter: TypeFilter,
    current: Option<(NodeId, RelEntryIter<'tx>)>,
    chunk: usize,
    failed: bool,
}

impl Iterator for ExpandIter<'_> {
    type Item = Result<NodeId>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        if matches!(self.type_filter, TypeFilter::NoMatch) {
            return None;
        }
        loop {
            if let Some((node, rels)) = &mut self.current {
                let node = *node;
                for rel in rels.by_ref() {
                    match rel {
                        Ok((_, data)) => {
                            if let TypeFilter::Only(t) = self.type_filter {
                                if data.rel_type != t {
                                    continue;
                                }
                            }
                            return Some(Ok(data.other_node(node)));
                        }
                        Err(e) => {
                            self.failed = true;
                            return Some(Err(e));
                        }
                    }
                }
                self.current = None;
            }
            match self.upstream.next() {
                Some(Ok(node)) => {
                    match self.tx.neighbors_or_empty(node, self.direction, self.chunk) {
                        Ok(rels) => self.current = Some((node, rels)),
                        Err(e) => {
                            self.failed = true;
                            return Some(Err(e));
                        }
                    }
                }
                Some(Err(e)) => {
                    self.failed = true;
                    return Some(Err(e));
                }
                None => return None,
            }
        }
    }
}

/// Distinct stage: keeps first occurrences.
struct DistinctIter<'tx> {
    upstream: BoxedIdIter<'tx>,
    seen: HashSet<NodeId>,
}

impl Iterator for DistinctIter<'_> {
    type Item = Result<NodeId>;

    fn next(&mut self) -> Option<Self::Item> {
        for id in self.upstream.by_ref() {
            match id {
                Ok(id) => {
                    if self.seen.insert(id) {
                        return Some(Ok(id));
                    }
                }
                Err(e) => return Some(Err(e)),
            }
        }
        None
    }
}

/// Limit stage: stops pulling upstream once `remaining` results streamed.
struct LimitIter<'tx> {
    upstream: BoxedIdIter<'tx>,
    remaining: usize,
}

impl Iterator for LimitIter<'_> {
    type Item = Result<NodeId>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.remaining == 0 {
            return None;
        }
        match self.upstream.next() {
            Some(Ok(id)) => {
                self.remaining -= 1;
                Some(Ok(id))
            }
            other => other,
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::config::DbConfig;
    use crate::db::GraphDb;
    use crate::entity::Direction;
    use graphsi_storage::test_util::TempDir;
    use graphsi_storage::{NodeId, PropertyValue};

    fn social_graph(db: &GraphDb) -> (Vec<NodeId>, Vec<NodeId>) {
        let mut tx = db.begin();
        let people: Vec<NodeId> = (0..6)
            .map(|i| {
                tx.create_node(
                    &["Person"],
                    &[("age", PropertyValue::Int(20 + 5 * i as i64))],
                )
                .unwrap()
            })
            .collect();
        let cities: Vec<NodeId> = (0..2)
            .map(|_| tx.create_node(&["City"], &[]).unwrap())
            .collect();
        // people[i] KNOWS people[i+1]; everyone LIVES_IN a city.
        for pair in people.windows(2) {
            tx.create_relationship(pair[0], pair[1], "KNOWS", &[])
                .unwrap();
        }
        for (i, &p) in people.iter().enumerate() {
            tx.create_relationship(p, cities[i % 2], "LIVES_IN", &[])
                .unwrap();
        }
        tx.commit().unwrap();
        (people, cities)
    }

    #[test]
    fn label_filter_expand_distinct_limit_compose() {
        let dir = TempDir::new("query_compose");
        let db = GraphDb::open(dir.path(), DbConfig::default()).unwrap();
        let (people, cities) = social_graph(&db);
        let tx = db.txn().read_only().begin();

        // Cities where people aged >= 30 live.
        let mut homes = tx
            .query()
            .nodes_with_label("Person")
            .filter_property("age", |v| v.as_int().is_some_and(|a| a >= 30))
            .expand(Direction::Outgoing, Some("LIVES_IN"))
            .distinct()
            .ids()
            .unwrap();
        homes.sort();
        let mut expected = cities.clone();
        expected.sort();
        assert_eq!(homes, expected);

        // Two-hop KNOWS expansion from the chain head.
        let two_hops = tx
            .query()
            .start_nodes([people[0]])
            .expand(Direction::Outgoing, Some("KNOWS"))
            .expand(Direction::Outgoing, Some("KNOWS"))
            .ids()
            .unwrap();
        assert_eq!(two_hops, vec![people[2]]);

        // Limit stops the stream early.
        let limited = tx
            .query()
            .nodes_with_label("Person")
            .limit(2)
            .count()
            .unwrap();
        assert_eq!(limited, 2);
    }

    #[test]
    fn query_is_snapshot_consistent_and_reads_own_writes() {
        let dir = TempDir::new("query_snapshot");
        let db = GraphDb::open(dir.path(), DbConfig::default()).unwrap();
        let (people, _) = social_graph(&db);

        let mut tx = db.begin();
        let fresh = tx.create_node(&["Person"], &[]).unwrap();
        tx.create_relationship(people[0], fresh, "KNOWS", &[])
            .unwrap();
        // Own pending writes are visible...
        let own = tx
            .query()
            .start_nodes([people[0]])
            .expand(Direction::Outgoing, Some("KNOWS"))
            .ids()
            .unwrap();
        assert!(own.contains(&fresh));
        assert!(own.contains(&people[1]));
        // ...but invisible to a concurrent snapshot.
        let other = db.txn().read_only().begin();
        let others = other.query().nodes_with_label("Person").count().unwrap();
        assert_eq!(others, 6);
        drop(other);
    }

    #[test]
    fn unknown_names_yield_empty_streams() {
        let dir = TempDir::new("query_unknown");
        let db = GraphDb::open(dir.path(), DbConfig::default()).unwrap();
        let (people, _) = social_graph(&db);
        let tx = db.begin();
        assert_eq!(tx.query().nodes_with_label("Nope").count().unwrap(), 0);
        assert_eq!(
            tx.query()
                .start_nodes(people.clone())
                .expand(Direction::Both, Some("NO_SUCH_TYPE"))
                .count()
                .unwrap(),
            0
        );
        // Unknown property key filters everything out.
        assert_eq!(
            tx.query()
                .nodes_with_label("Person")
                .filter_property("nope", |_| true)
                .count()
                .unwrap(),
            0
        );
    }

    #[test]
    fn nodes_terminal_materialises_public_nodes() {
        let dir = TempDir::new("query_nodes");
        let db = GraphDb::open(dir.path(), DbConfig::default()).unwrap();
        social_graph(&db);
        let tx = db.begin();
        let nodes = tx
            .query()
            .nodes_with_label("Person")
            .filter_property("age", |v| v == &PropertyValue::Int(20))
            .nodes()
            .unwrap();
        assert_eq!(nodes.len(), 1);
        assert!(nodes[0].labels.contains(&"Person".to_owned()));
    }

    #[test]
    fn source_after_stages_is_an_error_not_silent_misbehavior() {
        let dir = TempDir::new("query_compose_err");
        let db = GraphDb::open(dir.path(), DbConfig::default()).unwrap();
        let (people, _) = social_graph(&db);
        let tx = db.begin();
        let err = tx
            .query()
            .nodes_with_label("Person")
            .expand(Direction::Outgoing, None)
            .start_nodes(people)
            .ids()
            .unwrap_err();
        assert!(matches!(err, crate::error::DbError::InvalidQuery(_)));
    }

    #[test]
    fn per_query_chunk_size_applies_to_every_source() {
        let dir = TempDir::new("query_chunk_all");
        let db = GraphDb::open(dir.path(), DbConfig::default()).unwrap();
        social_graph(&db);
        let tx = db.txn().read_only().begin();
        assert_eq!(tx.query().all_nodes().chunk_size(2).count().unwrap(), 8);
        let peak = db.metrics().candidate_buffer_peak;
        assert!(
            peak <= 2,
            "all_nodes must honor the per-query chunk override (peak {peak})"
        );
    }

    #[test]
    fn chained_source_calls_degrade_to_filters() {
        let dir = TempDir::new("query_chain_src");
        let db = GraphDb::open(dir.path(), DbConfig::default()).unwrap();
        let (people, cities) = social_graph(&db);
        let _ = (people, cities);
        let tx = db.begin();
        // Person ∩ (age == 25): second call becomes a filter.
        let count = tx
            .query()
            .nodes_with_label("Person")
            .nodes_with_property("age", PropertyValue::Int(25))
            .count()
            .unwrap();
        assert_eq!(count, 1);
    }
}
