//! The composable, streaming query builder — `tx.query()`.
//!
//! A [`QueryBuilder`] describes a pipeline of relational-ish stages over
//! the graph (CrocoPat-style composition on top of the paper's enriched
//! iterators): a *source* (label scan, property scan, property **range**
//! scan, whole-graph scan or an explicit start set) followed by *stages*
//! (property/label filters, range predicates, multi-hop `expand`,
//! `distinct`, `limit`). Terminal calls ([`QueryBuilder::stream`],
//! [`QueryBuilder::ids`], [`QueryBuilder::count`], [`QueryBuilder::nodes`],
//! [`QueryBuilder::rows`], [`QueryBuilder::stream_rows`]) compile it into
//! a snapshot-consistent stream with read-your-own-writes that pulls
//! results element by element through the chunked, GC-safe cursors of
//! [`crate::iter`] — peak candidate buffering stays bounded by the chunk
//! size no matter how many nodes a stage scans.
//!
//! ## The planner
//!
//! Compilation hands the declarative parts of the pipeline to
//! [`crate::plan`], which picks an explicit [`SourcePlan`]: a predicate at
//! the head of the pipeline compiles to a **versioned index source**
//! (equality → posting scan, comparison → range-postings cursor); two or
//! more pushdown-able predicates compile to a **sorted-posting
//! intersection**; an `order_by`/`top_k` whose key matches the source's
//! sorted walk is **served straight off the index** (no sort buffer, and
//! top-k stops paging the cursor early); everything else falls back to
//! per-candidate decode filters or a buffered sort. The
//! `predicate_pushdowns` / `intersection_pushdowns` /
//! `ordered_index_streams` / `decode_filter_fallbacks` metrics record
//! which path each query compiled to, and `property_decodes` counts the
//! per-candidate decode work the fallbacks paid. Pushdown and
//! intersection can be disabled per query ([`QueryBuilder::pushdown`],
//! [`QueryBuilder::intersect`]) or database-wide
//! ([`crate::DbConfig::predicate_pushdown`],
//! [`crate::DbConfig::predicate_intersection`]).

use std::collections::HashSet;
use std::ops::Bound;

use graphsi_storage::{
    NodeId, PropertyKeyToken, PropertyValue, RelTypeToken, RelationshipId, ValueKey,
};

use crate::entity::{Direction, Node};
use crate::error::{DbError, Result};
use crate::iter::RelEntryIter;
use crate::plan::{NodePredicate, OrderSpec, RangePred, SourcePlan, Stage};
use crate::transaction::Transaction;

/// A composable, streaming query over one transaction's view; created by
/// [`Transaction::query`]. See the method docs there for an example.
#[must_use = "finish the builder with `.stream()`, `.ids()`, `.count()`, `.nodes()` or `.rows()`"]
pub struct QueryBuilder<'tx> {
    tx: &'tx Transaction,
    source: SourcePlan,
    source_set: bool,
    stages: Vec<Stage<'tx>>,
    chunk_size: Option<usize>,
    /// Property names the row terminals decode per result row (resolved
    /// to tokens once, at compile time).
    projection: Option<Vec<String>>,
    /// Per-query planner override; `None` = the database default
    /// ([`crate::DbConfig::predicate_pushdown`]).
    pushdown: Option<bool>,
    /// Per-query intersection override; `None` = the database default
    /// ([`crate::DbConfig::predicate_intersection`]).
    intersect: Option<bool>,
    /// Requested output ordering (`order_by`/`top_k`; the last call wins).
    order: Option<OrderSpec>,
    /// Set when the builder was composed illegally (a source after
    /// stages); reported as an error by the terminal calls, so a
    /// mis-composed query can never silently return wrong data.
    compose_error: Option<&'static str>,
}

impl<'tx> QueryBuilder<'tx> {
    pub(crate) fn new(tx: &'tx Transaction) -> Self {
        QueryBuilder {
            tx,
            source: SourcePlan::AllNodes,
            source_set: false,
            stages: Vec::new(),
            chunk_size: None,
            projection: None,
            pushdown: None,
            intersect: None,
            order: None,
            compose_error: None,
        }
    }

    fn set_source(mut self, source: SourcePlan) -> Self {
        if self.source_set || !self.stages.is_empty() {
            self.compose_error = Some(
                "query source must be set first and at most once (after stages, \
                      use has_label / filter_property / filter instead)",
            );
            return self;
        }
        self.source = source;
        self.source_set = true;
        self
    }

    /// Starts from the nodes carrying `label` (index-backed). If stages
    /// were already added, acts as a label filter instead.
    pub fn nodes_with_label(self, label: &str) -> Self {
        if self.source_set || !self.stages.is_empty() {
            return self.has_label(label);
        }
        self.set_source(SourcePlan::Label(label.to_owned()))
    }

    /// Starts from the nodes whose property `name` equals `value`
    /// (index-backed). If a source was already set, acts as an equality
    /// predicate instead — with the same equality semantics as the index
    /// (`PropertyValue::index_key`, so e.g. float `NaN` matches itself).
    /// Repeating the *same* equality the index source already guarantees
    /// is a no-op rather than a redundant per-node re-check.
    pub fn nodes_with_property(mut self, name: &str, value: PropertyValue) -> Self {
        if !self.source_set && self.stages.is_empty() {
            return self.set_source(SourcePlan::PropertyEq(name.to_owned(), value));
        }
        if self.stages.is_empty() {
            if let SourcePlan::PropertyEq(n, v) = &self.source {
                // The index source already guarantees this exact equality
                // for every yielded node (committed via the posting list,
                // pending via the write-set check) — re-filtering would
                // decode every candidate to re-prove it.
                if n == name && v.index_key() == value.index_key() {
                    return self;
                }
            }
        }
        self.stages
            .push(Stage::Range(RangePred::equality(name, &value)));
        self
    }

    /// Starts from the nodes whose property `name` holds a value inside
    /// `range` (e.g. `PropertyValue::Int(30)..=PropertyValue::Int(40)`),
    /// served by the versioned index's **range postings** when the planner
    /// can push it down. If a source was already set, acts as a range
    /// predicate stage the planner still tries to push into the index.
    ///
    /// Range semantics are type-homogeneous: a typed bound only matches
    /// values of its own type, and a half-open range stays within its
    /// bound's type.
    pub fn filter_property_range(
        mut self,
        name: &str,
        range: impl std::ops::RangeBounds<PropertyValue>,
    ) -> Self {
        let pred = RangePred::from_range(name, range);
        if !self.source_set && self.stages.is_empty() {
            return self.set_source(SourcePlan::IndexRange {
                pred,
                descending: false,
                ordered: false,
            });
        }
        self.stages.push(Stage::Range(pred));
        self
    }

    /// Comparison form of [`QueryBuilder::nodes_with_property`]:
    /// `name >= value`.
    pub fn nodes_with_property_ge(self, name: &str, value: PropertyValue) -> Self {
        self.filter_property_range(name, value..)
    }

    /// Comparison form: `name > value`.
    pub fn nodes_with_property_gt(self, name: &str, value: PropertyValue) -> Self {
        self.filter_property_range(name, (Bound::Excluded(value), Bound::Unbounded))
    }

    /// Comparison form: `name <= value`.
    pub fn nodes_with_property_le(self, name: &str, value: PropertyValue) -> Self {
        self.filter_property_range(name, ..=value)
    }

    /// Comparison form: `name < value`.
    pub fn nodes_with_property_lt(self, name: &str, value: PropertyValue) -> Self {
        self.filter_property_range(name, ..value)
    }

    /// Starts from every node visible to the transaction (the default
    /// source).
    pub fn all_nodes(self) -> Self {
        self.set_source(SourcePlan::AllNodes)
    }

    /// Starts from an explicit set of node IDs. Nodes invisible to the
    /// transaction's snapshot are silently dropped when streamed.
    pub fn start_nodes(self, nodes: impl IntoIterator<Item = NodeId>) -> Self {
        self.set_source(SourcePlan::Fixed(nodes.into_iter().collect()))
    }

    /// Keeps only nodes whose property `name` exists and satisfies `pred`.
    /// The predicate is opaque to the planner, so this always runs as a
    /// decode filter — but one that materialises only the named key per
    /// candidate. Prefer [`QueryBuilder::filter_property_range`] for
    /// comparisons the planner can push into the index.
    pub fn filter_property(
        mut self,
        name: &str,
        pred: impl Fn(&PropertyValue) -> bool + 'tx,
    ) -> Self {
        self.stages
            .push(Stage::FilterProperty(name.to_owned(), Box::new(pred)));
        self
    }

    /// Keeps only rows whose **producing relationship** (the one the last
    /// `expand` traversed; source rows have none and are dropped) carries
    /// property `name` with a value inside `range`. Runs as a decode
    /// filter over the relationship today — the rel-side sorted index
    /// dimension exists, so the planner hook for pushing this down to
    /// range postings is ready (ROADMAP follow-on). Same type-homogeneous
    /// range semantics as [`QueryBuilder::filter_property_range`].
    pub fn filter_rel_property_range(
        mut self,
        name: &str,
        range: impl std::ops::RangeBounds<PropertyValue>,
    ) -> Self {
        self.stages
            .push(Stage::RelRange(RangePred::from_range(name, range)));
        self
    }

    /// Equality form of [`QueryBuilder::filter_rel_property_range`]:
    /// keeps rows whose producing relationship has property `name` equal
    /// to `value` (index-key equality, like the node-side forms).
    pub fn filter_rel_property(mut self, name: &str, value: PropertyValue) -> Self {
        self.stages
            .push(Stage::RelRange(RangePred::equality(name, &value)));
        self
    }

    /// Keeps only nodes carrying `label`.
    pub fn has_label(mut self, label: &str) -> Self {
        self.stages.push(Stage::FilterLabel(label.to_owned()));
        self
    }

    /// Keeps only nodes for which `pred` returns `true`. The predicate
    /// receives the transaction, so it can run arbitrary snapshot reads.
    pub fn filter(mut self, pred: impl Fn(&Transaction, NodeId) -> Result<bool> + 'tx) -> Self {
        self.stages.push(Stage::Filter(Box::new(pred)));
        self
    }

    /// Expands every incoming node one hop along its relationships in
    /// `direction`, optionally restricted to relationships of type
    /// `rel_type`, yielding the far endpoints. Chain `expand` calls for
    /// multi-hop (k-hop) expansion; add [`QueryBuilder::distinct`] to
    /// deduplicate the frontier. Row terminals report the traversed
    /// relationship in [`Row::rel`].
    pub fn expand(mut self, direction: Direction, rel_type: Option<&str>) -> Self {
        self.stages.push(Stage::Expand {
            direction,
            rel_type: rel_type.map(str::to_owned),
        });
        self
    }

    /// Deduplicates the stream from this point on **by node** (keeps first
    /// occurrences, in stream order). Memory is proportional to the number
    /// of *distinct* rows that pass, not to the candidates scanned.
    pub fn distinct(mut self) -> Self {
        self.stages.push(Stage::Distinct);
        self
    }

    /// Stops after `n` results. Upstream cursors stop being pulled — and
    /// stop refilling chunks — as soon as the limit is reached.
    pub fn limit(mut self, n: usize) -> Self {
        self.stages.push(Stage::Limit(n));
        self
    }

    /// Orders the final result stream by property `name`, ascending.
    /// Rows lacking the property are **dropped** (the same semantics as
    /// an index range over it); ties stream in an unspecified order. When
    /// the planner can align the source's sorted index walk with the
    /// order key — pushdown on, no `expand`, no pending node writes — the
    /// walk itself is the sort: no buffer is allocated and the
    /// `ordered_index_streams` metric records it. Otherwise the terminal
    /// buffers, decodes the key per row and sorts. The last
    /// `order_by*`/`top_k*` call wins.
    pub fn order_by(mut self, name: &str) -> Self {
        self.order = Some(OrderSpec {
            name: name.to_owned(),
            descending: false,
            limit: None,
        });
        self
    }

    /// Descending form of [`QueryBuilder::order_by`], served by the
    /// reverse-direction range cursor when the order rides the index.
    pub fn order_by_desc(mut self, name: &str) -> Self {
        self.order = Some(OrderSpec {
            name: name.to_owned(),
            descending: true,
            limit: None,
        });
        self
    }

    /// The `n` smallest rows by property `name`: [`QueryBuilder::order_by`]
    /// plus a limit the planner threads **into the source** — a served
    /// top-k stops paging the index cursor as soon as `n` rows streamed
    /// (`topk_early_exits` records the early exit).
    pub fn top_k(mut self, name: &str, n: usize) -> Self {
        self.order = Some(OrderSpec {
            name: name.to_owned(),
            descending: false,
            limit: Some(n),
        });
        self
    }

    /// The `n` largest rows by property `name`; descending form of
    /// [`QueryBuilder::top_k`].
    pub fn top_k_desc(mut self, name: &str, n: usize) -> Self {
        self.order = Some(OrderSpec {
            name: name.to_owned(),
            descending: true,
            limit: Some(n),
        });
        self
    }

    /// Per-query override for multi-predicate intersection: `false`
    /// forces conjunctions onto the single-pushdown + decode-filter path
    /// (the E17 baseline), `true` re-enables it when the database default
    /// ([`crate::DbConfig::predicate_intersection`]) disabled it.
    pub fn intersect(mut self, enabled: bool) -> Self {
        self.intersect = Some(enabled);
        self
    }

    /// Overrides the cursor chunk size for this query only (defaults to
    /// the transaction's [`Transaction::scan_chunk_size`]).
    pub fn chunk_size(mut self, chunk: usize) -> Self {
        self.chunk_size = Some(chunk.max(1));
        self
    }

    /// Selects the properties the row terminals ([`QueryBuilder::rows`],
    /// [`QueryBuilder::stream_rows`]) decode per result row. Property
    /// names are resolved to tokens once at compile time, and each row's
    /// projected keys are decoded in a single selective chain walk at the
    /// **last** stage — a multi-hop expansion never materialises property
    /// lists for intermediate frontiers. Unknown names simply project to
    /// absent.
    pub fn project<S: Into<String>>(mut self, names: impl IntoIterator<Item = S>) -> Self {
        self.projection = Some(names.into_iter().map(Into::into).collect());
        self
    }

    /// Per-query planner override: `false` forces every property predicate
    /// onto the decode-filter path, `true` re-enables pushdown when the
    /// database default ([`crate::DbConfig::predicate_pushdown`]) disabled
    /// it. The E14 experiment drives both paths through this switch.
    pub fn pushdown(mut self, enabled: bool) -> Self {
        self.pushdown = Some(enabled);
        self
    }

    /// Compiles the pipeline: runs the planner over the declarative
    /// predicates, resolves every token once, and assembles the stage
    /// iterators.
    fn compile(self) -> Result<Compiled<'tx>> {
        if let Some(reason) = self.compose_error {
            return Err(crate::error::DbError::InvalidQuery(reason.to_owned()));
        }
        let tx = self.tx;
        let db = tx.db();
        let chunk = self.chunk_size.unwrap_or(tx.scan_chunk_size());
        let pushdown = self.pushdown.unwrap_or(db.config.predicate_pushdown);
        let intersect = self.intersect.unwrap_or(db.config.predicate_intersection);
        let has_node_writes = tx.write_set_ref().is_some_and(|ws| !ws.nodes.is_empty());

        // Projection names resolve to tokens exactly once.
        let projection = self.projection.map(|names| {
            names
                .into_iter()
                .map(|name| {
                    let token = db.store.tokens().existing_property_key(&name);
                    (name, token)
                })
                .collect::<Vec<_>>()
        });

        // ---- Planner (crate::plan) -------------------------------------
        let plan = crate::plan::plan(
            db,
            self.source,
            self.stages,
            self.order,
            pushdown,
            intersect,
            has_node_writes,
        )?;
        if matches!(plan.source, SourcePlan::Empty) {
            return Ok(Compiled {
                tx,
                iter: Box::new(std::iter::empty()),
                projection,
            });
        }
        let budget = plan.source_budget;
        let topk = plan.topk;

        // ---- Assembly --------------------------------------------------
        let mut it: BoxedRowIter<'tx> = match plan.source {
            SourcePlan::Empty => Box::new(std::iter::empty()),
            SourcePlan::AllNodes => {
                row_source(tx.all_nodes_chunked(chunk)?.with_budget(budget, topk))
            }
            SourcePlan::Label(label) => row_source(
                tx.nodes_with_label_chunked(&label, chunk)?
                    .with_budget(budget, topk),
            ),
            SourcePlan::PropertyEq(name, value) => row_source(
                tx.nodes_with_property_chunked(&name, &value, chunk)?
                    .with_budget(budget, topk),
            ),
            SourcePlan::IndexRange {
                pred, descending, ..
            } => row_source(
                tx.nodes_with_property_range_chunked(
                    &pred.name, pred.lo, pred.hi, chunk, descending,
                )?
                .with_budget(budget, topk),
            ),
            SourcePlan::Intersection {
                driver,
                legs,
                descending,
                ..
            } => row_source(
                tx.nodes_intersection_chunked(&driver, &legs, chunk, descending)?
                    .with_budget(budget, topk),
            ),
            SourcePlan::Fixed(ids) => Box::new(FixedSource {
                tx,
                ids: ids.into_iter(),
                failed: false,
            }),
        };
        for stage in plan.stages {
            it = match stage {
                Stage::Range(pred) => {
                    let token = db
                        .store
                        .tokens()
                        .existing_property_key(&pred.name)
                        .ok_or_else(|| {
                            DbError::Internal(
                                "dead-stage check let an unknown property key through".to_owned(),
                            )
                        })?;
                    Box::new(FilterIter {
                        tx,
                        upstream: it,
                        failed: false,
                        pred: Box::new(move |tx: &Transaction, id: NodeId| {
                            tx.db().metrics.record_property_decode();
                            Ok(tx
                                .visible_node_property(id, token)?
                                .flatten()
                                .is_some_and(|v| pred.matches(&v)))
                        }),
                    })
                }
                Stage::FilterProperty(name, pred) => {
                    let token =
                        db.store
                            .tokens()
                            .existing_property_key(&name)
                            .ok_or_else(|| {
                                DbError::Internal(
                                    "dead-stage check let an unknown property key through"
                                        .to_owned(),
                                )
                            })?;
                    Box::new(FilterIter {
                        tx,
                        upstream: it,
                        failed: false,
                        pred: Box::new(move |tx: &Transaction, id: NodeId| {
                            tx.db().metrics.record_property_decode();
                            Ok(tx
                                .visible_node_property(id, token)?
                                .flatten()
                                .is_some_and(|v| pred(&v)))
                        }),
                    })
                }
                Stage::FilterLabel(label) => {
                    let token = db.store.tokens().existing_label(&label).ok_or_else(|| {
                        DbError::Internal(
                            "dead-stage check let an unknown label through".to_owned(),
                        )
                    })?;
                    Box::new(FilterIter {
                        tx,
                        upstream: it,
                        failed: false,
                        pred: Box::new(move |tx: &Transaction, id: NodeId| {
                            let Some(data) = tx.visible_node(id)? else {
                                return Ok(false);
                            };
                            Ok(data.has_label(token))
                        }),
                    })
                }
                Stage::Filter(pred) => Box::new(FilterIter {
                    tx,
                    upstream: it,
                    pred,
                    failed: false,
                }),
                Stage::Expand {
                    direction,
                    rel_type,
                } => {
                    let type_token = match &rel_type {
                        None => TypeFilter::Any,
                        Some(name) => match db.store.tokens().existing_rel_type(name) {
                            Some(t) => TypeFilter::Only(t),
                            // Name never interned: no relationship can match.
                            None => TypeFilter::NoMatch,
                        },
                    };
                    Box::new(ExpandIter {
                        tx,
                        upstream: it,
                        direction,
                        type_filter: type_token,
                        current: None,
                        chunk,
                        failed: false,
                    })
                }
                Stage::Distinct => Box::new(DistinctIter {
                    upstream: it,
                    seen: HashSet::new(),
                }),
                Stage::Limit(n) => Box::new(LimitIter {
                    upstream: it,
                    remaining: n,
                }),
                Stage::RelRange(pred) => {
                    let token = db
                        .store
                        .tokens()
                        .existing_property_key(&pred.name)
                        .ok_or_else(|| {
                            DbError::Internal(
                                "dead-stage check let an unknown rel property key through"
                                    .to_owned(),
                            )
                        })?;
                    Box::new(RelFilterIter {
                        tx,
                        upstream: it,
                        token,
                        pred,
                        failed: false,
                    })
                }
            };
        }
        if let Some(order) = plan.sort_fallback {
            let token = db
                .store
                .tokens()
                .existing_property_key(&order.name)
                .ok_or_else(|| {
                    DbError::Internal(
                        "dead-order check let an unknown order key through".to_owned(),
                    )
                })?;
            it = Box::new(SortFallbackIter {
                tx,
                upstream: Some(it),
                token,
                descending: order.descending,
                limit: order.limit,
                sorted: Vec::new().into_iter(),
                failed: false,
            });
        }
        Ok(Compiled {
            tx,
            iter: it,
            projection,
        })
    }

    /// Compiles the pipeline into a streaming, snapshot-consistent
    /// iterator over node IDs.
    pub fn stream(self) -> Result<QueryStream<'tx>> {
        Ok(QueryStream {
            inner: self.compile()?.iter,
        })
    }

    /// Compiles the pipeline into a streaming iterator over [`Row`]s:
    /// each result carries the node, the relationship the last `expand`
    /// traversed to reach it, and the properties selected with
    /// [`QueryBuilder::project`] — decoded once per row, at this final
    /// stage, through the selective single-walk chain decode.
    pub fn stream_rows(self) -> Result<RowStream<'tx>> {
        let compiled = self.compile()?;
        // Unknown names project to absent, so they are dropped here once;
        // the remaining (name, token) pairs and the bare token list are
        // fixed for the stream's lifetime — no per-row re-resolution.
        let projection: Vec<(String, graphsi_storage::PropertyKeyToken)> = compiled
            .projection
            .unwrap_or_default()
            .into_iter()
            .filter_map(|(name, token)| token.map(|t| (name, t)))
            .collect();
        let tokens: Vec<graphsi_storage::PropertyKeyToken> =
            projection.iter().map(|(_, t)| *t).collect();
        Ok(RowStream {
            tx: compiled.tx,
            inner: compiled.iter,
            projection,
            tokens,
            failed: false,
        })
    }

    /// Runs the query and collects the resulting node IDs (in stream
    /// order).
    pub fn ids(self) -> Result<Vec<NodeId>> {
        self.stream()?.collect()
    }

    /// Runs the query and counts the results without collecting them.
    pub fn count(self) -> Result<usize> {
        let mut n = 0;
        for id in self.stream()? {
            id?;
            n += 1;
        }
        Ok(n)
    }

    /// Runs the query and materialises the resulting nodes (labels and
    /// properties resolved to names).
    pub fn nodes(self) -> Result<Vec<Node>> {
        let tx = self.tx;
        let mut out = Vec::new();
        for id in self.stream()? {
            let id = id?;
            if let Some(node) = tx.get_node(id)? {
                out.push(node);
            }
        }
        Ok(out)
    }

    /// Runs the query and collects the resulting [`Row`]s (in stream
    /// order). See [`QueryBuilder::stream_rows`].
    pub fn rows(self) -> Result<Vec<Row>> {
        self.stream_rows()?.collect()
    }
}

impl std::fmt::Debug for QueryBuilder<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryBuilder")
            .field("stages", &self.stages.len())
            .field("chunk_size", &self.chunk_size)
            .field("pushdown", &self.pushdown)
            .finish_non_exhaustive()
    }
}

/// One result of a row terminal: the node, the relationship the last
/// expansion stage traversed to reach it (`None` for source rows), and
/// the projected properties — only the keys selected with
/// [`QueryBuilder::project`], and only those present on the node, in
/// projection order.
#[derive(Clone, Debug, PartialEq)]
pub struct Row {
    /// The result node.
    pub node: NodeId,
    /// The relationship the last `expand` stage followed to produce this
    /// row, if the pipeline expanded.
    pub rel: Option<RelationshipId>,
    /// Projected `(name, value)` pairs, in projection order; keys absent
    /// on the node are omitted.
    pub properties: Vec<(String, PropertyValue)>,
}

impl Row {
    /// The projected value of `name`, if present.
    pub fn property(&self, name: &str) -> Option<&PropertyValue> {
        self.properties
            .iter()
            .find_map(|(n, v)| (n == name).then_some(v))
    }
}

/// The internal element every pipeline stage streams: a node plus the
/// relationship that produced it (set by expansion stages).
#[derive(Clone, Copy, Debug)]
pub(crate) struct RowCore {
    node: NodeId,
    rel: Option<RelationshipId>,
}

type BoxedRowIter<'tx> = Box<dyn Iterator<Item = Result<RowCore>> + 'tx>;

/// Output of [`QueryBuilder::compile`].
struct Compiled<'tx> {
    tx: &'tx Transaction,
    iter: BoxedRowIter<'tx>,
    projection: Option<Vec<(String, Option<graphsi_storage::PropertyKeyToken>)>>,
}

/// Adapts a bare node-ID iterator (the chunked scan sources) into the
/// row pipeline.
fn row_source<'tx, I>(ids: I) -> BoxedRowIter<'tx>
where
    I: Iterator<Item = Result<NodeId>> + 'tx,
{
    Box::new(ids.map(|r| r.map(|node| RowCore { node, rel: None })))
}

/// The compiled, streaming node-ID result of a [`QueryBuilder`]. Yields
/// `Result<NodeId>`; an error fuses the stream.
pub struct QueryStream<'tx> {
    inner: BoxedRowIter<'tx>,
}

impl Iterator for QueryStream<'_> {
    type Item = Result<NodeId>;

    fn next(&mut self) -> Option<Self::Item> {
        Some(self.inner.next()?.map(|row| row.node))
    }
}

impl std::fmt::Debug for QueryStream<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryStream").finish_non_exhaustive()
    }
}

/// The compiled, streaming row result of a [`QueryBuilder`]; created by
/// [`QueryBuilder::stream_rows`]. Yields `Result<Row>`; an error fuses
/// the stream.
pub struct RowStream<'tx> {
    tx: &'tx Transaction,
    inner: BoxedRowIter<'tx>,
    /// Projected names with their (known) tokens, resolved once at compile.
    projection: Vec<(String, graphsi_storage::PropertyKeyToken)>,
    /// The bare token list `visible_node_properties` takes, in projection
    /// order — precomputed so the hot per-row path allocates nothing extra.
    tokens: Vec<graphsi_storage::PropertyKeyToken>,
    failed: bool,
}

impl Iterator for RowStream<'_> {
    type Item = Result<Row>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        let core = match self.inner.next()? {
            Ok(core) => core,
            Err(e) => {
                self.failed = true;
                return Some(Err(e));
            }
        };
        let mut properties = Vec::new();
        if !self.projection.is_empty() {
            // One selective chain walk decodes every projected key.
            let values = match self.tx.visible_node_properties(core.node, &self.tokens) {
                Ok(values) => values.unwrap_or_default(),
                Err(e) => {
                    self.failed = true;
                    return Some(Err(e));
                }
            };
            for ((name, _), value) in self.projection.iter().zip(values) {
                if let Some(value) = value {
                    properties.push((name.clone(), value));
                }
            }
        }
        Some(Ok(Row {
            node: core.node,
            rel: core.rel,
            properties,
        }))
    }
}

impl std::fmt::Debug for RowStream<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RowStream")
            .field("projection", &self.projection.len())
            .finish_non_exhaustive()
    }
}

/// Explicit start set, visibility-checked as it streams.
struct FixedSource<'tx> {
    tx: &'tx Transaction,
    ids: std::vec::IntoIter<NodeId>,
    failed: bool,
}

impl Iterator for FixedSource<'_> {
    type Item = Result<RowCore>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        for id in self.ids.by_ref() {
            match self.tx.visible_node(id) {
                Ok(Some(_)) => {
                    return Some(Ok(RowCore {
                        node: id,
                        rel: None,
                    }))
                }
                Ok(None) => {}
                Err(e) => {
                    self.failed = true;
                    return Some(Err(e));
                }
            }
        }
        None
    }
}

/// Filter stage: keeps rows whose node satisfies a snapshot predicate.
struct FilterIter<'tx> {
    tx: &'tx Transaction,
    upstream: BoxedRowIter<'tx>,
    pred: NodePredicate<'tx>,
    failed: bool,
}

impl Iterator for FilterIter<'_> {
    type Item = Result<RowCore>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        for row in self.upstream.by_ref() {
            match row.and_then(|row| (self.pred)(self.tx, row.node).map(|keep| (row, keep))) {
                Ok((row, true)) => return Some(Ok(row)),
                Ok((_, false)) => {}
                Err(e) => {
                    self.failed = true;
                    return Some(Err(e));
                }
            }
        }
        None
    }
}

/// How an expansion stage restricts relationship types.
enum TypeFilter {
    Any,
    Only(RelTypeToken),
    /// The requested type name was never interned: nothing matches.
    NoMatch,
}

/// Expansion stage: one hop along the relationships of each upstream node,
/// streaming the far endpoints (tagged with the relationship traversed).
/// Holds one upstream node's enriched relationship iterator at a time —
/// O(frontier + chunk) memory.
struct ExpandIter<'tx> {
    tx: &'tx Transaction,
    upstream: BoxedRowIter<'tx>,
    direction: Direction,
    type_filter: TypeFilter,
    current: Option<(NodeId, RelEntryIter<'tx>)>,
    chunk: usize,
    failed: bool,
}

impl Iterator for ExpandIter<'_> {
    type Item = Result<RowCore>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        if matches!(self.type_filter, TypeFilter::NoMatch) {
            return None;
        }
        loop {
            if let Some((node, rels)) = &mut self.current {
                let node = *node;
                for rel in rels.by_ref() {
                    match rel {
                        Ok((id, data)) => {
                            if let TypeFilter::Only(t) = self.type_filter {
                                if data.rel_type != t {
                                    continue;
                                }
                            }
                            return Some(Ok(RowCore {
                                node: data.other_node(node),
                                rel: Some(id),
                            }));
                        }
                        Err(e) => {
                            self.failed = true;
                            return Some(Err(e));
                        }
                    }
                }
                self.current = None;
            }
            match self.upstream.next() {
                Some(Ok(row)) => {
                    match self
                        .tx
                        .neighbors_or_empty(row.node, self.direction, self.chunk)
                    {
                        Ok(rels) => self.current = Some((row.node, rels)),
                        Err(e) => {
                            self.failed = true;
                            return Some(Err(e));
                        }
                    }
                }
                Some(Err(e)) => {
                    self.failed = true;
                    return Some(Err(e));
                }
                None => return None,
            }
        }
    }
}

/// Distinct stage: keeps the first row per node.
struct DistinctIter<'tx> {
    upstream: BoxedRowIter<'tx>,
    seen: HashSet<NodeId>,
}

impl Iterator for DistinctIter<'_> {
    type Item = Result<RowCore>;

    fn next(&mut self) -> Option<Self::Item> {
        for row in self.upstream.by_ref() {
            match row {
                Ok(row) => {
                    if self.seen.insert(row.node) {
                        return Some(Ok(row));
                    }
                }
                Err(e) => return Some(Err(e)),
            }
        }
        None
    }
}

/// Limit stage: stops pulling upstream once `remaining` results streamed.
struct LimitIter<'tx> {
    upstream: BoxedRowIter<'tx>,
    remaining: usize,
}

impl Iterator for LimitIter<'_> {
    type Item = Result<RowCore>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.remaining == 0 {
            return None;
        }
        match self.upstream.next() {
            Some(Ok(row)) => {
                self.remaining -= 1;
                Some(Ok(row))
            }
            other => other,
        }
    }
}

/// Relationship-property filter stage: keeps rows whose *relationship*
/// (the one the last `expand` traversed) satisfies a range predicate.
/// Decode fallback — the relationship property is read per row; rows
/// without a relationship (pure node sources) are dropped, as are rows
/// whose relationship lacks the key.
struct RelFilterIter<'tx> {
    tx: &'tx Transaction,
    upstream: BoxedRowIter<'tx>,
    token: PropertyKeyToken,
    pred: RangePred,
    failed: bool,
}

impl Iterator for RelFilterIter<'_> {
    type Item = Result<RowCore>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        for row in self.upstream.by_ref() {
            let row = match row {
                Ok(row) => row,
                Err(e) => {
                    self.failed = true;
                    return Some(Err(e));
                }
            };
            let Some(rid) = row.rel else { continue };
            self.tx.db().metrics.record_property_decode();
            // visible_relationship folds in this transaction's own pending
            // writes, so read-your-own-writes holds here too.
            match self.tx.visible_relationship(rid) {
                Ok(Some(data)) => {
                    if data
                        .properties
                        .get(&self.token)
                        .is_some_and(|v| self.pred.matches(v))
                    {
                        return Some(Ok(row));
                    }
                }
                Ok(None) => {}
                Err(e) => {
                    self.failed = true;
                    return Some(Err(e));
                }
            }
        }
        None
    }
}

/// Sort fallback: when the planner cannot serve an `order_by` straight
/// off the index walk it pins this terminal stage, which drains the
/// upstream, decodes the order key per row (rows lacking the key are
/// dropped — consistent with the served path, where keyless nodes never
/// appear in the posting walk), sorts by the key's index ordering and
/// replays. `candidate_buffer_peak` records the buffered row count so
/// benchmarks can prove the served path allocates no such buffer.
struct SortFallbackIter<'tx> {
    tx: &'tx Transaction,
    upstream: Option<BoxedRowIter<'tx>>,
    token: PropertyKeyToken,
    descending: bool,
    limit: Option<usize>,
    sorted: std::vec::IntoIter<RowCore>,
    failed: bool,
}

impl Iterator for SortFallbackIter<'_> {
    type Item = Result<RowCore>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        if let Some(upstream) = self.upstream.take() {
            let mut buf: Vec<(ValueKey, RowCore)> = Vec::new();
            for row in upstream {
                let row = match row {
                    Ok(row) => row,
                    Err(e) => {
                        self.failed = true;
                        return Some(Err(e));
                    }
                };
                self.tx.db().metrics.record_property_decode();
                match self.tx.visible_node_property(row.node, self.token) {
                    Ok(Some(Some(v))) => buf.push((v.index_key(), row)),
                    Ok(_) => {}
                    Err(e) => {
                        self.failed = true;
                        return Some(Err(e));
                    }
                }
            }
            self.tx.db().metrics.record_candidate_buffer(buf.len());
            if self.descending {
                buf.sort_by(|a, b| b.0.cmp(&a.0));
            } else {
                buf.sort_by(|a, b| a.0.cmp(&b.0));
            }
            if let Some(n) = self.limit {
                buf.truncate(n);
            }
            self.sorted = buf
                .into_iter()
                .map(|(_, row)| row)
                .collect::<Vec<_>>()
                .into_iter();
        }
        self.sorted.next().map(Ok)
    }
}

#[cfg(test)]
mod tests {
    use crate::config::DbConfig;
    use crate::db::GraphDb;
    use crate::entity::Direction;
    use graphsi_storage::test_util::TempDir;
    use graphsi_storage::{NodeId, PropertyValue};

    fn social_graph(db: &GraphDb) -> (Vec<NodeId>, Vec<NodeId>) {
        let mut tx = db.begin();
        let people: Vec<NodeId> = (0..6)
            .map(|i| {
                tx.create_node(
                    &["Person"],
                    &[("age", PropertyValue::Int(20 + 5 * i as i64))],
                )
                .unwrap()
            })
            .collect();
        let cities: Vec<NodeId> = (0..2)
            .map(|_| tx.create_node(&["City"], &[]).unwrap())
            .collect();
        // people[i] KNOWS people[i+1]; everyone LIVES_IN a city.
        for pair in people.windows(2) {
            tx.create_relationship(pair[0], pair[1], "KNOWS", &[])
                .unwrap();
        }
        for (i, &p) in people.iter().enumerate() {
            tx.create_relationship(p, cities[i % 2], "LIVES_IN", &[])
                .unwrap();
        }
        tx.commit().unwrap();
        (people, cities)
    }

    #[test]
    fn label_filter_expand_distinct_limit_compose() {
        let dir = TempDir::new("query_compose");
        let db = GraphDb::open(dir.path(), DbConfig::default()).unwrap();
        let (people, cities) = social_graph(&db);
        let tx = db.txn().read_only().begin();

        // Cities where people aged >= 30 live.
        let mut homes = tx
            .query()
            .nodes_with_label("Person")
            .filter_property("age", |v| v.as_int().is_some_and(|a| a >= 30))
            .expand(Direction::Outgoing, Some("LIVES_IN"))
            .distinct()
            .ids()
            .unwrap();
        homes.sort();
        let mut expected = cities.clone();
        expected.sort();
        assert_eq!(homes, expected);

        // Two-hop KNOWS expansion from the chain head.
        let two_hops = tx
            .query()
            .start_nodes([people[0]])
            .expand(Direction::Outgoing, Some("KNOWS"))
            .expand(Direction::Outgoing, Some("KNOWS"))
            .ids()
            .unwrap();
        assert_eq!(two_hops, vec![people[2]]);

        // Limit stops the stream early.
        let limited = tx
            .query()
            .nodes_with_label("Person")
            .limit(2)
            .count()
            .unwrap();
        assert_eq!(limited, 2);
    }

    #[test]
    fn range_predicate_pushes_down_to_the_index() {
        let dir = TempDir::new("query_pushdown");
        let db = GraphDb::open(dir.path(), DbConfig::default()).unwrap();
        let (people, _) = social_graph(&db);
        let tx = db.txn().read_only().begin();

        let before = db.metrics();
        let mut adults = tx
            .query()
            .filter_property_range("age", PropertyValue::Int(30)..=PropertyValue::Int(40))
            .ids()
            .unwrap();
        adults.sort();
        // Ages 30, 35, 40 -> people[2..=4].
        let mut expected = people[2..=4].to_vec();
        expected.sort();
        assert_eq!(adults, expected);
        let after = db.metrics();
        assert_eq!(
            after.predicate_pushdowns,
            before.predicate_pushdowns + 1,
            "the range predicate must compile to an index range source"
        );
        assert_eq!(after.property_decodes, before.property_decodes);
        assert_eq!(
            after.decode_filter_fallbacks,
            before.decode_filter_fallbacks
        );
    }

    #[test]
    fn pushdown_disabled_takes_the_decode_path_with_identical_results() {
        let dir = TempDir::new("query_no_pushdown");
        let db = GraphDb::open(dir.path(), DbConfig::default()).unwrap();
        social_graph(&db);
        let tx = db.txn().read_only().begin();

        let range = || PropertyValue::Int(25)..PropertyValue::Int(45);
        let mut pushed = tx
            .query()
            .filter_property_range("age", range())
            .ids()
            .unwrap();
        let before = db.metrics();
        let mut decoded = tx
            .query()
            .filter_property_range("age", range())
            .pushdown(false)
            .ids()
            .unwrap();
        let after = db.metrics();
        pushed.sort();
        decoded.sort();
        assert_eq!(pushed, decoded, "both paths agree on the result set");
        assert_eq!(
            after.decode_filter_fallbacks,
            before.decode_filter_fallbacks + 1
        );
        assert!(
            after.property_decodes > before.property_decodes,
            "the decode path pays per-candidate property materialisations"
        );
    }

    #[test]
    fn pushdown_disabled_demotes_equality_sources_too() {
        let dir = TempDir::new("query_no_pushdown_eq");
        let db = GraphDb::open(dir.path(), DbConfig::default()).unwrap();
        let (people, _) = social_graph(&db);
        let tx = db.txn().read_only().begin();
        let before = db.metrics();
        let hit = tx
            .query()
            .nodes_with_property("age", PropertyValue::Int(25))
            .pushdown(false)
            .ids()
            .unwrap();
        assert_eq!(hit, vec![people[1]]);
        let after = db.metrics();
        assert_eq!(
            after.predicate_pushdowns, before.predicate_pushdowns,
            "with pushdown disabled no predicate may execute on the index"
        );
        assert_eq!(
            after.decode_filter_fallbacks,
            before.decode_filter_fallbacks + 1
        );
        assert!(after.property_decodes > before.property_decodes);
    }

    #[test]
    fn comparison_forms_compile_and_agree() {
        let dir = TempDir::new("query_cmp_forms");
        let db = GraphDb::open(dir.path(), DbConfig::default()).unwrap();
        let (people, _) = social_graph(&db);
        let tx = db.txn().read_only().begin();

        let ge = tx
            .query()
            .nodes_with_property_ge("age", PropertyValue::Int(35))
            .count()
            .unwrap();
        assert_eq!(ge, 3); // 35, 40, 45
        let gt = tx
            .query()
            .nodes_with_property_gt("age", PropertyValue::Int(35))
            .count()
            .unwrap();
        assert_eq!(gt, 2);
        let le = tx
            .query()
            .nodes_with_property_le("age", PropertyValue::Int(25))
            .count()
            .unwrap();
        assert_eq!(le, 2); // 20, 25
        let lt = tx
            .query()
            .nodes_with_property_lt("age", PropertyValue::Int(25))
            .ids()
            .unwrap();
        assert_eq!(lt, vec![people[0]]);
    }

    #[test]
    fn planner_swaps_label_source_for_a_narrower_range() {
        let dir = TempDir::new("query_swap");
        let db = GraphDb::open(dir.path(), DbConfig::default()).unwrap();
        let (people, _) = social_graph(&db);
        let tx = db.txn().read_only().begin();

        // 6 Person postings vs 1 age=25 posting: the planner must scan the
        // property index and label-check the survivors.
        let before = db.metrics();
        let hit = tx
            .query()
            .nodes_with_label("Person")
            .nodes_with_property("age", PropertyValue::Int(25))
            .ids()
            .unwrap();
        assert_eq!(hit, vec![people[1]]);
        let after = db.metrics();
        assert_eq!(after.predicate_pushdowns, before.predicate_pushdowns + 1);
        assert_eq!(
            after.decode_filter_fallbacks,
            before.decode_filter_fallbacks
        );
    }

    #[test]
    fn redundant_equality_after_property_source_is_elided() {
        let dir = TempDir::new("query_dedup_eq");
        let db = GraphDb::open(dir.path(), DbConfig::default()).unwrap();
        social_graph(&db);
        let tx = db.txn().read_only().begin();
        let before = db.metrics();
        let count = tx
            .query()
            .nodes_with_property("age", PropertyValue::Int(25))
            .nodes_with_property("age", PropertyValue::Int(25))
            .count()
            .unwrap();
        assert_eq!(count, 1);
        let after = db.metrics();
        assert_eq!(
            after.property_decodes, before.property_decodes,
            "the index source already guarantees the equality — no \
             per-node re-decode"
        );
        assert_eq!(
            after.decode_filter_fallbacks,
            before.decode_filter_fallbacks
        );
        // A *different* equality on the same source still filters.
        let none = tx
            .query()
            .nodes_with_property("age", PropertyValue::Int(25))
            .nodes_with_property("age", PropertyValue::Int(30))
            .count()
            .unwrap();
        assert_eq!(none, 0);
    }

    #[test]
    fn range_source_merges_write_set_state() {
        let dir = TempDir::new("query_range_ws");
        let db = GraphDb::open(dir.path(), DbConfig::default()).unwrap();
        let (people, _) = social_graph(&db);

        let mut tx = db.begin();
        // Pending creation inside the range.
        let fresh = tx
            .create_node(&["Person"], &[("age", PropertyValue::Int(33))])
            .unwrap();
        // Move people[2] (age 30) out of the range, people[0] (age 20) in.
        tx.set_node_property(people[2], "age", PropertyValue::Int(99))
            .unwrap();
        tx.set_node_property(people[0], "age", PropertyValue::Int(31))
            .unwrap();

        let mut got = tx
            .query()
            .filter_property_range("age", PropertyValue::Int(30)..=PropertyValue::Int(40))
            .ids()
            .unwrap();
        got.sort();
        // Expected: people[3]=35, people[4]=40 (untouched), fresh=33,
        // people[0]=31 (moved in); people[2] moved out.
        let mut expected = vec![people[3], people[4], fresh, people[0]];
        expected.sort();
        assert_eq!(got, expected);
    }

    #[test]
    fn rows_carry_rel_and_projection() {
        let dir = TempDir::new("query_rows");
        let db = GraphDb::open(dir.path(), DbConfig::default()).unwrap();
        let (people, _) = social_graph(&db);
        let tx = db.txn().read_only().begin();

        // Source rows: no rel, projected age present.
        let rows = tx
            .query()
            .nodes_with_property("age", PropertyValue::Int(25))
            .project(["age", "nope"])
            .rows()
            .unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].node, people[1]);
        assert_eq!(rows[0].rel, None);
        assert_eq!(rows[0].property("age"), Some(&PropertyValue::Int(25)));
        assert_eq!(rows[0].property("nope"), None);

        // Expanded rows: rel names the traversed relationship, projection
        // decodes at the final stage.
        let rows = tx
            .query()
            .start_nodes([people[0]])
            .expand(Direction::Outgoing, Some("KNOWS"))
            .project(["age"])
            .rows()
            .unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].node, people[1]);
        let rel = rows[0].rel.expect("expansion tags the relationship");
        let rel = tx.get_relationship(rel).unwrap().unwrap();
        assert_eq!((rel.source, rel.target), (people[0], people[1]));
        assert_eq!(rows[0].property("age"), Some(&PropertyValue::Int(25)));

        // Without a projection, rows carry no properties.
        let bare = tx.query().nodes_with_label("City").rows().unwrap();
        assert!(bare
            .iter()
            .all(|r| r.properties.is_empty() && r.rel.is_none()));
    }

    #[test]
    fn query_is_snapshot_consistent_and_reads_own_writes() {
        let dir = TempDir::new("query_snapshot");
        let db = GraphDb::open(dir.path(), DbConfig::default()).unwrap();
        let (people, _) = social_graph(&db);

        let mut tx = db.begin();
        let fresh = tx.create_node(&["Person"], &[]).unwrap();
        tx.create_relationship(people[0], fresh, "KNOWS", &[])
            .unwrap();
        // Own pending writes are visible...
        let own = tx
            .query()
            .start_nodes([people[0]])
            .expand(Direction::Outgoing, Some("KNOWS"))
            .ids()
            .unwrap();
        assert!(own.contains(&fresh));
        assert!(own.contains(&people[1]));
        // ...but invisible to a concurrent snapshot.
        let other = db.txn().read_only().begin();
        let others = other.query().nodes_with_label("Person").count().unwrap();
        assert_eq!(others, 6);
        drop(other);
    }

    #[test]
    fn unknown_names_yield_empty_streams() {
        let dir = TempDir::new("query_unknown");
        let db = GraphDb::open(dir.path(), DbConfig::default()).unwrap();
        let (people, _) = social_graph(&db);
        let tx = db.begin();
        assert_eq!(tx.query().nodes_with_label("Nope").count().unwrap(), 0);
        assert_eq!(
            tx.query()
                .start_nodes(people.clone())
                .expand(Direction::Both, Some("NO_SUCH_TYPE"))
                .count()
                .unwrap(),
            0
        );
        // Unknown property key compiles to a cheap empty stream — no
        // decode pass that filters everything out.
        let before = db.metrics();
        assert_eq!(
            tx.query()
                .nodes_with_label("Person")
                .filter_property("nope", |_| true)
                .count()
                .unwrap(),
            0
        );
        assert_eq!(
            tx.query()
                .filter_property_range("nope", PropertyValue::Int(0)..)
                .count()
                .unwrap(),
            0
        );
        let after = db.metrics();
        assert_eq!(
            after.property_decodes, before.property_decodes,
            "unknown keys must not decode anything"
        );
        // Mixed-type (unsatisfiable) bounds are empty too, not wrong.
        assert_eq!(
            tx.query()
                .filter_property_range(
                    "age",
                    PropertyValue::Int(0)..=PropertyValue::String("z".into())
                )
                .count()
                .unwrap(),
            0
        );
    }

    #[test]
    fn nodes_terminal_materialises_public_nodes() {
        let dir = TempDir::new("query_nodes");
        let db = GraphDb::open(dir.path(), DbConfig::default()).unwrap();
        social_graph(&db);
        let tx = db.begin();
        let nodes = tx
            .query()
            .nodes_with_label("Person")
            .filter_property("age", |v| v == &PropertyValue::Int(20))
            .nodes()
            .unwrap();
        assert_eq!(nodes.len(), 1);
        assert!(nodes[0].labels.contains(&"Person".to_owned()));
    }

    #[test]
    fn source_after_stages_is_an_error_not_silent_misbehavior() {
        let dir = TempDir::new("query_compose_err");
        let db = GraphDb::open(dir.path(), DbConfig::default()).unwrap();
        let (people, _) = social_graph(&db);
        let tx = db.begin();
        let err = tx
            .query()
            .nodes_with_label("Person")
            .expand(Direction::Outgoing, None)
            .start_nodes(people)
            .ids()
            .unwrap_err();
        assert!(matches!(err, crate::error::DbError::InvalidQuery(_)));
    }

    #[test]
    fn per_query_chunk_size_applies_to_every_source() {
        let dir = TempDir::new("query_chunk_all");
        let db = GraphDb::open(dir.path(), DbConfig::default()).unwrap();
        social_graph(&db);
        let tx = db.txn().read_only().begin();
        assert_eq!(tx.query().all_nodes().chunk_size(2).count().unwrap(), 8);
        let peak = db.metrics().candidate_buffer_peak;
        assert!(
            peak <= 2,
            "all_nodes must honor the per-query chunk override (peak {peak})"
        );
    }

    #[test]
    fn chained_source_calls_degrade_to_filters() {
        let dir = TempDir::new("query_chain_src");
        let db = GraphDb::open(dir.path(), DbConfig::default()).unwrap();
        let (people, cities) = social_graph(&db);
        let _ = (people, cities);
        let tx = db.begin();
        // Person ∩ (age == 25): second call becomes a filter (which the
        // planner may execute on either index).
        let count = tx
            .query()
            .nodes_with_label("Person")
            .nodes_with_property("age", PropertyValue::Int(25))
            .count()
            .unwrap();
        assert_eq!(count, 1);
    }

    #[test]
    fn order_by_streams_off_the_index() {
        let dir = TempDir::new("query_order_served");
        let db = GraphDb::open(dir.path(), DbConfig::default()).unwrap();
        let (people, _) = social_graph(&db);
        let tx = db.txn().read_only().begin();

        // Served ascending: the range source's sorted walk IS the order.
        let before = db.metrics();
        let asc = tx
            .query()
            .filter_property_range("age", PropertyValue::Int(25)..=PropertyValue::Int(40))
            .order_by("age")
            .ids()
            .unwrap();
        assert_eq!(asc, people[1..=4].to_vec(), "ages 25,30,35,40 in order");
        let after = db.metrics();
        assert_eq!(
            after.ordered_index_streams,
            before.ordered_index_streams + 1
        );
        assert_eq!(
            after.property_decodes, before.property_decodes,
            "the served path decodes nothing and buffers nothing"
        );

        // Served descending rides the reverse-direction range cursor.
        let desc = tx
            .query()
            .filter_property_range("age", PropertyValue::Int(25)..=PropertyValue::Int(40))
            .order_by_desc("age")
            .ids()
            .unwrap();
        let mut expected = people[1..=4].to_vec();
        expected.reverse();
        assert_eq!(desc, expected);

        // An order key with no predicate serves off an unbounded walk of
        // the whole sorted key dimension (nodes lacking the key — the
        // cities — never appear in the posting walk).
        let all = tx.query().order_by("age").ids().unwrap();
        assert_eq!(all, people);
    }

    #[test]
    fn top_k_early_exits_and_bounds_paging() {
        let dir = TempDir::new("query_topk");
        let db = GraphDb::open(dir.path(), DbConfig::default()).unwrap();
        let mut tx = db.begin();
        let nodes: Vec<NodeId> = (0..60)
            .map(|i| {
                tx.create_node(&["N"], &[("score", PropertyValue::Int((i * 7919) % 1000))])
                    .unwrap()
            })
            .collect();
        tx.commit().unwrap();
        let tx = db.txn().read_only().begin();

        let mut by_score: Vec<(i64, NodeId)> = nodes
            .iter()
            .enumerate()
            .map(|(i, &n)| (((i as i64) * 7919) % 1000, n))
            .collect();
        by_score.sort();

        let before = db.metrics();
        let top = tx.query().top_k("score", 5).chunk_size(8).ids().unwrap();
        let after = db.metrics();
        let expected: Vec<NodeId> = by_score.iter().take(5).map(|&(_, n)| n).collect();
        assert_eq!(top, expected, "top-k = the 5 smallest scores, in order");
        assert_eq!(
            after.topk_early_exits,
            before.topk_early_exits + 1,
            "the budget must stop the stream before the base drains"
        );
        assert!(
            after.chunk_refills - before.chunk_refills <= 5,
            "limit pushdown clamps the cursor: refills ({}) must not \
             outgrow the row budget",
            after.chunk_refills - before.chunk_refills
        );
        assert_eq!(
            after.property_decodes, before.property_decodes,
            "served top-k allocates no sort buffer and decodes nothing"
        );

        // Descending top-k: the 5 largest, largest first.
        let bottom = tx.query().top_k_desc("score", 5).ids().unwrap();
        let expected: Vec<NodeId> = by_score.iter().rev().take(5).map(|&(_, n)| n).collect();
        assert_eq!(bottom, expected);
    }

    #[test]
    fn limit_pushdown_stops_paging_a_pure_index_source() {
        let dir = TempDir::new("query_limit_budget");
        let db = GraphDb::open(dir.path(), DbConfig::default()).unwrap();
        let mut tx = db.begin();
        for _ in 0..80 {
            tx.create_node(&["Bulk"], &[]).unwrap();
        }
        tx.commit().unwrap();
        let tx = db.txn().read_only().begin();
        let before = db.metrics();
        let n = tx
            .query()
            .nodes_with_label("Bulk")
            .limit(3)
            .chunk_size(16)
            .count()
            .unwrap();
        let after = db.metrics();
        assert_eq!(n, 3);
        assert!(
            after.chunk_refills - before.chunk_refills <= 3,
            "a leading limit's budget must reach the posting cursor, not \
             drain full chunks ({} refills)",
            after.chunk_refills - before.chunk_refills
        );
    }

    #[test]
    fn order_by_falls_back_to_a_buffered_sort_when_unserveable() {
        let dir = TempDir::new("query_order_fallback");
        let db = GraphDb::open(dir.path(), DbConfig::default()).unwrap();
        let (people, _) = social_graph(&db);
        let tx = db.txn().read_only().begin();

        // An expansion between source and order: the stream order is the
        // expansion's, so the planner pins the sort-fallback terminal.
        let before = db.metrics();
        let got = tx
            .query()
            .start_nodes([people[2]])
            .expand(Direction::Both, Some("KNOWS"))
            .order_by_desc("age")
            .ids()
            .unwrap();
        assert_eq!(got, vec![people[3], people[1]], "ages 35, 25");
        let after = db.metrics();
        assert_eq!(
            after.ordered_index_streams, before.ordered_index_streams,
            "an expansion downstream of the source cannot be served"
        );
        assert!(after.property_decodes > before.property_decodes);

        // A transaction with pending node writes can't trust the committed
        // posting order either — but the fallback still sees own writes.
        let mut tx = db.begin();
        let fresh = tx
            .create_node(&["Person"], &[("age", PropertyValue::Int(22))])
            .unwrap();
        let got = tx
            .query()
            .filter_property_range("age", PropertyValue::Int(20)..=PropertyValue::Int(25))
            .order_by("age")
            .ids()
            .unwrap();
        assert_eq!(got, vec![people[0], fresh, people[1]], "ages 20, 22, 25");
    }

    #[test]
    fn intersection_agrees_with_the_decode_path_and_decodes_less() {
        let dir = TempDir::new("query_intersect");
        let db = GraphDb::open(dir.path(), DbConfig::default()).unwrap();
        let mut tx = db.begin();
        let nodes: Vec<NodeId> = (0..40)
            .map(|i| {
                tx.create_node(
                    &["N"],
                    &[
                        ("a", PropertyValue::Int(i % 10)),
                        ("b", PropertyValue::Int(i % 4)),
                    ],
                )
                .unwrap()
            })
            .collect();
        tx.commit().unwrap();
        let tx = db.txn().read_only().begin();

        let q = |tx: &crate::transaction::Transaction, on: bool| {
            tx.query()
                .filter_property_range("a", PropertyValue::Int(2)..=PropertyValue::Int(4))
                .filter_property_range("b", PropertyValue::Int(1)..=PropertyValue::Int(2))
                .intersect(on)
                .ids()
                .unwrap()
        };
        let before = db.metrics();
        let mut merged = q(&tx, true);
        let mid = db.metrics();
        let mut chained = q(&tx, false);
        let after = db.metrics();
        merged.sort();
        chained.sort();
        let mut expected: Vec<NodeId> = nodes
            .iter()
            .enumerate()
            .filter(|(i, _)| (2..=4).contains(&(i % 10)) && (1..=2).contains(&(i % 4)))
            .map(|(_, &n)| n)
            .collect();
        expected.sort();
        assert_eq!(merged, expected);
        assert_eq!(chained, expected);
        assert_eq!(
            mid.intersection_pushdowns,
            before.intersection_pushdowns + 1
        );
        assert_eq!(
            mid.predicate_pushdowns,
            before.predicate_pushdowns + 2,
            "both legs execute on the index"
        );
        let merged_decodes = mid.property_decodes - before.property_decodes;
        let chained_decodes = after.property_decodes - mid.property_decodes;
        assert_eq!(merged_decodes, 0, "the merge-intersect never decodes");
        assert!(
            merged_decodes < chained_decodes,
            "intersection must beat single-pushdown + decode-filter \
             ({merged_decodes} vs {chained_decodes})"
        );
        assert!(
            mid.intersection_leg_skips > before.intersection_leg_skips,
            "driver candidates outside a leg are skipped by binary search"
        );
    }

    #[test]
    fn intersection_merges_write_set_state() {
        let dir = TempDir::new("query_intersect_ws");
        let db = GraphDb::open(dir.path(), DbConfig::default()).unwrap();
        let mut tx = db.begin();
        let keep = tx
            .create_node(
                &["N"],
                &[("a", PropertyValue::Int(5)), ("b", PropertyValue::Int(5))],
            )
            .unwrap();
        let evict = tx
            .create_node(
                &["N"],
                &[("a", PropertyValue::Int(5)), ("b", PropertyValue::Int(5))],
            )
            .unwrap();
        let outside = tx
            .create_node(
                &["N"],
                &[("a", PropertyValue::Int(0)), ("b", PropertyValue::Int(5))],
            )
            .unwrap();
        tx.commit().unwrap();

        let mut tx = db.begin();
        // Move `evict` out of leg b; move `outside` into leg a; create a
        // fresh pending match the committed indexes know nothing about.
        tx.set_node_property(evict, "b", PropertyValue::Int(99))
            .unwrap();
        tx.set_node_property(outside, "a", PropertyValue::Int(5))
            .unwrap();
        let fresh = tx
            .create_node(
                &["N"],
                &[("a", PropertyValue::Int(5)), ("b", PropertyValue::Int(5))],
            )
            .unwrap();
        let mut got = tx
            .query()
            .filter_property_range("a", PropertyValue::Int(1)..=PropertyValue::Int(9))
            .filter_property_range("b", PropertyValue::Int(1)..=PropertyValue::Int(9))
            .ids()
            .unwrap();
        got.sort();
        let mut expected = vec![keep, outside, fresh];
        expected.sort();
        assert_eq!(got, expected);
    }

    #[test]
    fn ordered_intersection_streams_off_the_driver() {
        let dir = TempDir::new("query_intersect_order");
        let db = GraphDb::open(dir.path(), DbConfig::default()).unwrap();
        let mut tx = db.begin();
        let nodes: Vec<NodeId> = (0..20)
            .map(|i| {
                tx.create_node(
                    &["N"],
                    &[
                        ("a", PropertyValue::Int(i)),
                        ("b", PropertyValue::Int(i % 3)),
                    ],
                )
                .unwrap()
            })
            .collect();
        tx.commit().unwrap();
        let tx = db.txn().read_only().begin();
        let before = db.metrics();
        let got = tx
            .query()
            .filter_property_range("a", PropertyValue::Int(5)..=PropertyValue::Int(15))
            .filter_property_range("b", PropertyValue::Int(0)..=PropertyValue::Int(0))
            .order_by_desc("a")
            .ids()
            .unwrap();
        let after = db.metrics();
        // a ∈ [5,15] ∧ a ≡ 0 (mod 3), descending by a: 15, 12, 9, 6.
        let expected: Vec<NodeId> = [15usize, 12, 9, 6].iter().map(|&i| nodes[i]).collect();
        assert_eq!(got, expected);
        assert_eq!(
            after.ordered_index_streams,
            before.ordered_index_streams + 1
        );
        assert_eq!(after.property_decodes, before.property_decodes);
    }

    #[test]
    fn rel_property_predicates_filter_expanded_rows() {
        let dir = TempDir::new("query_rel_pred");
        let db = GraphDb::open(dir.path(), DbConfig::default()).unwrap();
        let mut tx = db.begin();
        let hub = tx.create_node(&["Hub"], &[]).unwrap();
        let spokes: Vec<NodeId> = (0..5)
            .map(|i| {
                let s = tx.create_node(&["Spoke"], &[]).unwrap();
                tx.create_relationship(
                    hub,
                    s,
                    "LINK",
                    &[("weight", PropertyValue::Int(i as i64 * 10))],
                )
                .unwrap();
                s
            })
            .collect();
        tx.commit().unwrap();
        let tx = db.txn().read_only().begin();

        let mut heavy = tx
            .query()
            .start_nodes([hub])
            .expand(Direction::Outgoing, Some("LINK"))
            .filter_rel_property_range("weight", PropertyValue::Int(20)..)
            .ids()
            .unwrap();
        heavy.sort();
        let mut expected = spokes[2..].to_vec();
        expected.sort();
        assert_eq!(heavy, expected);

        // Equality form; and rows without a relationship are dropped.
        assert_eq!(
            tx.query()
                .start_nodes([hub])
                .expand(Direction::Outgoing, Some("LINK"))
                .filter_rel_property("weight", PropertyValue::Int(30))
                .ids()
                .unwrap(),
            vec![spokes[3]]
        );
        assert_eq!(
            tx.query()
                .nodes_with_label("Spoke")
                .filter_rel_property_range("weight", PropertyValue::Int(0)..)
                .count()
                .unwrap(),
            0,
            "source rows carry no relationship to test"
        );
    }
}
