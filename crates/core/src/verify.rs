//! The online integrity verifier behind [`crate::GraphDb::verify`]: an
//! fsck that runs against a live database.
//!
//! Three sweeps, all bounded so commits keep flowing:
//!
//! 1. **Page sweep** — every page of every store file is CRC-checked
//!    against its trailer, at most a fixed number of pages per cache-lock
//!    hold (the `flush_incremental` pattern). Pages resident in the page
//!    cache are trusted: the in-memory copy is authoritative and reseals
//!    at flush.
//! 2. **Store walk** — every in-use node and relationship is decoded,
//!    which exercises property chains and relationship endpoints; a
//!    pointer into a missing or free record is a dangling chain pointer.
//! 3. **Index walk** — store state and posting indexes are compared in
//!    both directions under a read snapshot: a store fact missing from
//!    the index (or a cached MVCC version the store contradicts) is an
//!    index↔store divergence; a visible posting whose entity does not
//!    exist in the store is an orphaned posting.
//!
//! Sweeps 2 and 3 run against a moving target: a commit can be mid-apply
//! while the walk reads, so every raw finding is only a *suspect*. The
//! verifier then waits for the commit pipeline to settle (every commit
//! sequenced before the wait has fully applied and published) and
//! re-walks; only findings present in both walks are reported. On a
//! healthy database every transient anomaly is gone by the second walk —
//! zero false positives — while real corruption cannot heal itself.

use std::collections::HashSet;

use crate::commit::split_commit_ts;
use crate::db::GraphDbInner;
use crate::error::Result;

/// The classes of corruption [`crate::GraphDb::verify`] distinguishes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum VerifyClass {
    /// A store page whose trailer CRC does not match its contents.
    BadPageCrc,
    /// A record pointer (property chain, relationship endpoint) leading to
    /// a record that is missing, free or undecodable.
    DanglingChainPointer,
    /// Store state and a posting index (or the MVCC cache) disagree about
    /// a committed fact.
    IndexStoreDivergence,
    /// A visible index posting whose entity does not exist in the store.
    OrphanedPosting,
}

impl VerifyClass {
    /// Stable lower-kebab label used in reports and admin output.
    pub fn label(self) -> &'static str {
        match self {
            VerifyClass::BadPageCrc => "bad-page-crc",
            VerifyClass::DanglingChainPointer => "dangling-chain-pointer",
            VerifyClass::IndexStoreDivergence => "index-store-divergence",
            VerifyClass::OrphanedPosting => "orphaned-posting",
        }
    }
}

impl std::fmt::Display for VerifyClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One confirmed verifier finding.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct VerifyFinding {
    /// The corruption class.
    pub class: VerifyClass,
    /// Human-readable description naming the file/page/entity involved.
    pub detail: String,
}

/// Structured result of one [`crate::GraphDb::verify`] run.
#[derive(Clone, Debug, Default)]
pub struct VerifyReport {
    /// Store pages whose trailer CRC was checked.
    pub pages_checked: u64,
    /// Nodes and relationships walked in the store.
    pub entities_checked: u64,
    /// Findings of class [`VerifyClass::BadPageCrc`].
    pub bad_page_crc: u64,
    /// Findings of class [`VerifyClass::DanglingChainPointer`].
    pub dangling_chain_pointers: u64,
    /// Findings of class [`VerifyClass::IndexStoreDivergence`].
    pub index_store_divergences: u64,
    /// Findings of class [`VerifyClass::OrphanedPosting`].
    pub orphaned_postings: u64,
    /// Every confirmed finding, class-labelled.
    pub findings: Vec<VerifyFinding>,
}

impl VerifyReport {
    /// `true` when the run found nothing wrong.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Total findings across all classes.
    pub fn total_findings(&self) -> u64 {
        self.findings.len() as u64
    }

    fn push(&mut self, class: VerifyClass, detail: String) {
        match class {
            VerifyClass::BadPageCrc => self.bad_page_crc += 1,
            VerifyClass::DanglingChainPointer => self.dangling_chain_pointers += 1,
            VerifyClass::IndexStoreDivergence => self.index_store_divergences += 1,
            VerifyClass::OrphanedPosting => self.orphaned_postings += 1,
        }
        self.findings.push(VerifyFinding { class, detail });
    }

    /// Renders the report in the same line-oriented plaintext style as the
    /// metrics format: per-class counts first, then one `finding <class>
    /// <detail>` line each. This is what `graphsi-admin verify` prints and
    /// the server's `VERIFY` frame returns.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("pages_checked {}\n", self.pages_checked));
        out.push_str(&format!("entities_checked {}\n", self.entities_checked));
        out.push_str(&format!("bad_page_crc {}\n", self.bad_page_crc));
        out.push_str(&format!(
            "dangling_chain_pointers {}\n",
            self.dangling_chain_pointers
        ));
        out.push_str(&format!(
            "index_store_divergences {}\n",
            self.index_store_divergences
        ));
        out.push_str(&format!("orphaned_postings {}\n", self.orphaned_postings));
        for finding in &self.findings {
            out.push_str(&format!("finding {} {}\n", finding.class, finding.detail));
        }
        out
    }
}

/// Pages examined per page-cache lock hold by the page sweep.
const VERIFY_PAGES_PER_HOLD: usize = 64;

/// Runs the full verification pass. See the module docs for the
/// suspect-then-confirm protocol.
pub(crate) fn run(inner: &GraphDbInner) -> Result<VerifyReport> {
    let mut report = VerifyReport::default();

    // Sweep 1: page trailers. The sweep skips cache-resident pages and
    // holds each cache lock for bounded spans, so it cannot race a
    // write-back into a torn read — page findings need no confirm pass.
    let pages = inner.store.verify_pages(VERIFY_PAGES_PER_HOLD)?;
    report.pages_checked = pages.pages_checked;
    for (file, page, expected, found) in pages.corrupt {
        report.push(
            VerifyClass::BadPageCrc,
            format!(
                "page {page} of {file}: computed {expected:#010x}, trailer holds {found:#010x}"
            ),
        );
    }

    // Sweeps 2 + 3: store and index walks, suspect-then-confirm.
    let (entities, suspects) = walk(inner)?;
    report.entities_checked = entities;
    let mut confirmed = suspects;
    if !confirmed.is_empty() {
        // Settle the pipeline: every commit that was mid-apply during the
        // first walk has fully installed and published once this returns.
        inner.settle_pipeline();
        let (_, second) = walk(inner)?;
        let second: HashSet<VerifyFinding> = second.into_iter().collect();
        confirmed.retain(|f| second.contains(f));
    }
    for finding in confirmed {
        report.push(finding.class, finding.detail);
    }

    inner
        .metrics
        .record_verify(report.pages_checked, report.total_findings());
    Ok(report)
}

/// One pass of sweeps 2 and 3. Returns `(entities walked, raw findings)`;
/// the findings are suspects until confirmed by a second pass after the
/// pipeline settles.
fn walk(inner: &GraphDbInner) -> Result<(u64, Vec<VerifyFinding>)> {
    let ts = inner.visible_timestamp();
    let mut entities = 0u64;
    let mut findings = Vec::new();
    let mut push = |class: VerifyClass, detail: String| {
        findings.push(VerifyFinding { class, detail });
    };

    // Store walk: nodes. Decoding a node reads its whole property chain,
    // so a broken chain surfaces here as a typed storage error.
    for id in inner.store.scan_node_ids()? {
        entities += 1;
        match inner.store.read_node(id) {
            Err(e) => push(
                VerifyClass::DanglingChainPointer,
                format!("node {}: {e}", id.raw()),
            ),
            Ok(None) => {}
            Ok(Some(stored)) => {
                let (node_ts, properties) = split_commit_ts(stored.properties, inner.commit_ts_key);
                if node_ts > ts {
                    // Committed after our snapshot (applied, not yet
                    // published) — the index at `ts` legitimately predates
                    // it.
                    continue;
                }
                for label in &stored.labels {
                    if !inner.indexes.labels.has_label(*label, id, ts) {
                        push(
                            VerifyClass::IndexStoreDivergence,
                            format!(
                                "node {} carries label {} in the store but has no visible posting",
                                id.raw(),
                                label.0
                            ),
                        );
                    }
                }
                for (key, value) in &properties {
                    if !inner.indexes.node_properties.contains(*key, value, id, ts) {
                        push(
                            VerifyClass::IndexStoreDivergence,
                            format!(
                                "node {} has property {} in the store but no visible posting",
                                id.raw(),
                                key.0
                            ),
                        );
                    }
                }
                // MVCC cache versus store: if the cache's newest committed
                // version is visible at our snapshot, the store (which
                // holds exactly the newest committed version) must agree.
                if let graphsi_mvcc::CacheLookup::Hit(hit) = inner.node_cache.lookup(id, ts) {
                    if inner.node_cache.newest_commit_ts(id) == Some(hit.commit_ts) {
                        if let Some(cached) = hit.payload {
                            let mut cached_labels = cached.labels.clone();
                            let mut store_labels = stored.labels.clone();
                            cached_labels.sort_unstable_by_key(|l| l.0);
                            store_labels.sort_unstable_by_key(|l| l.0);
                            if node_ts < hit.commit_ts
                                || (node_ts == hit.commit_ts
                                    && (cached_labels != store_labels
                                        || cached.properties != properties))
                            {
                                push(
                                    VerifyClass::IndexStoreDivergence,
                                    format!(
                                        "node {} diverges from its cached version at ts {}",
                                        id.raw(),
                                        hit.commit_ts.raw()
                                    ),
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    // Store walk: relationships, including endpoint existence.
    for id in inner.store.scan_relationship_ids()? {
        entities += 1;
        match inner.store.read_relationship(id) {
            Err(e) => push(
                VerifyClass::DanglingChainPointer,
                format!("relationship {}: {e}", id.raw()),
            ),
            Ok(None) => {}
            Ok(Some(stored)) => {
                for (role, node) in [("source", stored.source), ("target", stored.target)] {
                    match inner.store.read_node(node) {
                        Ok(Some(_)) => {}
                        Ok(None) => push(
                            VerifyClass::DanglingChainPointer,
                            format!(
                                "relationship {} {role} node {} is not in use",
                                id.raw(),
                                node.raw()
                            ),
                        ),
                        Err(e) => push(
                            VerifyClass::DanglingChainPointer,
                            format!("relationship {} {role} node: {e}", id.raw()),
                        ),
                    }
                }
                let (rel_ts, properties) = split_commit_ts(stored.properties, inner.commit_ts_key);
                if rel_ts > ts {
                    continue;
                }
                for (key, value) in &properties {
                    if !inner
                        .indexes
                        .relationship_properties
                        .contains(*key, value, id, ts)
                    {
                        push(
                            VerifyClass::IndexStoreDivergence,
                            format!(
                                "relationship {} has property {} in the store but no visible \
                                 posting",
                                id.raw(),
                                key.0
                            ),
                        );
                    }
                }
            }
        }
    }

    // Index walk: every posting visible at the snapshot must point at a
    // live store entity that agrees with it.
    for label in inner.indexes.labels.labels() {
        for node in inner.indexes.labels.nodes_with_label(label, ts) {
            match inner.store.read_node(node) {
                Err(e) => push(
                    VerifyClass::DanglingChainPointer,
                    format!("node {}: {e}", node.raw()),
                ),
                Ok(None) => push(
                    VerifyClass::OrphanedPosting,
                    format!(
                        "label {} posting for node {} but the node is not in the store",
                        label.0,
                        node.raw()
                    ),
                ),
                Ok(Some(stored)) => {
                    let (node_ts, _) = split_commit_ts(stored.properties, inner.commit_ts_key);
                    // Only judge when the store's version is inside our
                    // snapshot; a newer store version may legitimately
                    // have dropped the label.
                    if node_ts <= ts && !stored.labels.contains(&label) {
                        push(
                            VerifyClass::IndexStoreDivergence,
                            format!(
                                "label {} posting for node {} but the store record lacks it",
                                label.0,
                                node.raw()
                            ),
                        );
                    }
                }
            }
        }
    }

    Ok((entities, findings))
}
