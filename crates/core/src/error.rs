//! Error type for the graph database core.

use std::fmt;

use graphsi_storage::{NodeId, RelationshipId, StorageError};
use graphsi_txn::TxnError;
use graphsi_wal::WalError;

/// Errors surfaced by the public graph database API.
#[derive(Debug)]
pub enum DbError {
    /// An error bubbled up from the record storage engine.
    Storage(StorageError),
    /// An error bubbled up from the write-ahead log.
    Wal(WalError),
    /// An error bubbled up from the transaction substrate (conflicts,
    /// deadlocks, lock timeouts).
    Txn(TxnError),
    /// The transaction has already been committed or rolled back.
    TransactionClosed,
    /// A write operation was attempted on a read-only transaction (one
    /// begun with [`crate::TxnOptions::read_only`]).
    ReadOnlyTransaction,
    /// The node does not exist in the transaction's snapshot.
    NodeNotFound(NodeId),
    /// The relationship does not exist in the transaction's snapshot.
    RelationshipNotFound(RelationshipId),
    /// A node cannot be deleted while it still has relationships visible to
    /// the deleting transaction.
    NodeHasRelationships(NodeId),
    /// A property key, label or relationship type name is reserved for
    /// internal use.
    ReservedName(String),
    /// A WAL commit record could not be decoded during recovery.
    CorruptCommitRecord(String),
    /// A commit record cannot be encoded because a field exceeds the
    /// format's limits (e.g. more than 255 labels on one entity). Detected
    /// at encode time, *before* anything reaches the log, so the
    /// transaction aborts cleanly instead of writing a
    /// corrupt-but-checksummed record.
    CommitRecordOverflow(String),
    /// A query pipeline was composed incorrectly (e.g. a source set after
    /// stages were added).
    InvalidQuery(String),
    /// An internal invariant was violated. Reaching this variant is a bug
    /// in graphsi, not a caller mistake; it exists so invariant breaches
    /// surface as typed errors instead of panics in library code.
    Internal(String),
}

impl DbError {
    /// Returns `true` if the error represents a concurrency conflict
    /// (write-write conflict, deadlock, lock timeout) and the transaction
    /// can simply be retried by the application.
    pub fn is_conflict(&self) -> bool {
        matches!(self, DbError::Txn(e) if e.is_retryable())
    }
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Storage(e) => write!(f, "storage error: {e}"),
            DbError::Wal(e) => write!(f, "write-ahead log error: {e}"),
            DbError::Txn(e) => write!(f, "transaction error: {e}"),
            DbError::TransactionClosed => write!(f, "transaction is already closed"),
            DbError::ReadOnlyTransaction => {
                write!(f, "write attempted on a read-only transaction")
            }
            DbError::NodeNotFound(id) => write!(f, "node {id} not found in this snapshot"),
            DbError::RelationshipNotFound(id) => {
                write!(f, "relationship {id} not found in this snapshot")
            }
            DbError::NodeHasRelationships(id) => {
                write!(f, "node {id} still has relationships and cannot be deleted")
            }
            DbError::ReservedName(name) => write!(f, "{name:?} is reserved for internal use"),
            DbError::CorruptCommitRecord(reason) => {
                write!(f, "corrupt WAL commit record: {reason}")
            }
            DbError::CommitRecordOverflow(reason) => {
                write!(f, "commit record exceeds encoding limits: {reason}")
            }
            DbError::InvalidQuery(reason) => write!(f, "invalid query: {reason}"),
            DbError::Internal(reason) => write!(f, "internal invariant violated: {reason}"),
        }
    }
}

impl std::error::Error for DbError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DbError::Storage(e) => Some(e),
            DbError::Wal(e) => Some(e),
            DbError::Txn(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for DbError {
    fn from(e: StorageError) -> Self {
        DbError::Storage(e)
    }
}

impl From<WalError> for DbError {
    fn from(e: WalError) -> Self {
        DbError::Wal(e)
    }
}

impl From<TxnError> for DbError {
    fn from(e: TxnError) -> Self {
        DbError::Txn(e)
    }
}

/// Result alias used throughout the core crate.
pub type Result<T> = std::result::Result<T, DbError>;

#[cfg(test)]
mod tests {
    use super::*;
    use graphsi_txn::locks::LockKey;

    #[test]
    fn conflict_classification() {
        let conflict = DbError::Txn(TxnError::WriteWriteConflict {
            key: LockKey::node(1),
            other: None,
        });
        assert!(conflict.is_conflict());
        assert!(!DbError::TransactionClosed.is_conflict());
        assert!(!DbError::NodeNotFound(NodeId::new(1)).is_conflict());
    }

    #[test]
    fn display_variants() {
        assert!(DbError::NodeNotFound(NodeId::new(3))
            .to_string()
            .contains("node 3"));
        assert!(DbError::RelationshipNotFound(RelationshipId::new(4))
            .to_string()
            .contains("relationship 4"));
        assert!(DbError::NodeHasRelationships(NodeId::new(5))
            .to_string()
            .contains("cannot be deleted"));
        assert!(DbError::ReservedName("__x".into())
            .to_string()
            .contains("reserved"));
        assert!(DbError::TransactionClosed.to_string().contains("closed"));
    }

    #[test]
    fn from_conversions() {
        let e: DbError = TxnError::NotActive {
            txn: graphsi_txn::TxnId(1),
        }
        .into();
        assert!(matches!(e, DbError::Txn(_)));
        let e: DbError = StorageError::RecordNotInUse {
            store: "node",
            id: 1,
        }
        .into();
        assert!(matches!(e, DbError::Storage(_)));
    }
}
