//! The embedded graph database: stores, caches, indexes, transaction
//! machinery and the commit pipeline.
//!
//! [`GraphDb`] is a cheaply-cloneable *handle*: all state lives in a
//! shared [`GraphDbInner`] behind an `Arc`, so handles can be cloned into
//! worker threads, server sessions and connection pools, and the
//! transactions they start own a reference to the database (they are
//! `Send + 'static` and may outlive the handle that created them).

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Mutex, RwLock};

use graphsi_index::GraphIndexes;
use graphsi_mvcc::{gc, CacheLookup, CacheStatsSnapshot, GcStrategy, VersionedCache};
use graphsi_storage::{
    GraphStore, GraphStoreConfig, GraphStoreStats, NodeId, PropertyKeyToken, PropertyValue,
    RelationshipId,
};
use graphsi_txn::{
    check_at_commit, ActiveTransactionTable, ConflictStrategy, LockKey, LockManager,
    LockStatsSnapshot, Timestamp, TimestampOracle, TxnId,
};
use graphsi_wal::{
    payload_kind, AbortRangeRecord, AbortRecord, CheckpointBeginRecord, CheckpointEndRecord,
    PayloadKind, SegmentedWal,
};

use crate::commit::{self, apply_to_store, split_commit_ts, CommitOp, CommitRecord};
use crate::commit_pipeline::CommitPipeline;
use crate::config::{DbConfig, IsolationLevel};
use crate::entity::{NodeData, RelationshipData};
use crate::error::Result;
use crate::lock_rank;
use crate::metrics::{DbMetrics, DbMetricsSnapshot};
use crate::options::TxnOptions;
use crate::transaction::Transaction;
use crate::write_set::WriteSet;

/// Name of the reserved property that persists each entity's commit
/// timestamp in the store (the paper: "We have added an additional property
/// to both of them for keeping the commit timestamp").
pub const COMMIT_TS_PROPERTY: &str = "__graphsi.commit_ts";

/// Prefix reserved for internal property keys, labels and relationship
/// types.
pub const RESERVED_PREFIX: &str = "__graphsi";

/// Pages flushed per chunk by the fuzzy checkpoint's incremental store
/// flush. Between chunks the page-cache lock is released, so concurrent
/// commits interleave with the flush instead of stalling behind it.
const CHECKPOINT_FLUSH_CHUNK: usize = 64;

/// Summary of one garbage-collection run across node cache, relationship
/// cache and indexes.
#[derive(Clone, Copy, Debug)]
pub struct GcSummary {
    /// Strategy used (threaded or vacuum).
    pub strategy: GcStrategy,
    /// Watermark (oldest active start timestamp) the run used.
    pub watermark: Timestamp,
    /// Versions examined across both entity caches.
    pub versions_examined: u64,
    /// Versions reclaimed across both entity caches.
    pub versions_reclaimed: u64,
    /// Chains dropped entirely from the caches.
    pub chains_dropped: u64,
    /// Index postings reclaimed.
    pub index_postings_reclaimed: u64,
    /// Wall-clock duration of the run.
    pub duration: Duration,
}

/// The shared state of one open database. Public API users interact with
/// it only through [`GraphDb`] handles and [`Transaction`]s.
pub(crate) struct GraphDbInner {
    pub(crate) config: DbConfig,
    pub(crate) store: GraphStore,
    pub(crate) wal: SegmentedWal,
    pub(crate) node_cache: VersionedCache<NodeId, NodeData>,
    pub(crate) rel_cache: VersionedCache<RelationshipId, RelationshipData>,
    pub(crate) indexes: GraphIndexes,
    pub(crate) oracle: TimestampOracle,
    pub(crate) active: ActiveTransactionTable,
    pub(crate) locks: LockManager,
    pub(crate) metrics: DbMetrics,
    pub(crate) commit_ts_key: PropertyKeyToken,
    /// Adjacency overlay: relationships that currently have cached versions,
    /// indexed by their endpoint nodes. The persistent store's relationship
    /// chains only reflect the *latest* committed linkage, so an older
    /// snapshot traversing a node must additionally consider relationships
    /// whose deletion it cannot yet see; those live in the relationship
    /// cache and are found through this overlay (the paper's "enriched
    /// iterator"). Per-node sets are ordered (`BTreeSet`) so the chunked
    /// cursors can page them with a resume marker instead of copying the
    /// whole set.
    rel_overlay:
        RwLock<std::collections::HashMap<NodeId, std::collections::BTreeSet<RelationshipId>>>,
    /// The staged commit pipeline: stage-A sequencing, stage-B WAL group
    /// commit and stage-C in-order publication of the visible timestamp.
    /// New transactions snapshot at the pipeline's published watermark
    /// rather than at the raw oracle counter, because a commit timestamp
    /// is allocated *before* installation: a transaction that started in
    /// between would otherwise own a snapshot it cannot read.
    pipeline: CommitPipeline,
    /// Serialises fuzzy checkpoints against each other. Commits never take
    /// this lock — a checkpoint runs concurrently with all three pipeline
    /// stages; only a *second* checkpoint waits here.
    checkpoint_lock: Mutex<()>,
    txn_counter: AtomicU64,
    commits_since_gc: AtomicU64,
}

/// A handle to an embedded graph database with selectable isolation level.
///
/// Cloning is cheap (an `Arc` bump); clones share all state. The database
/// closes when the last handle *and* the last open [`Transaction`] are
/// dropped.
#[derive(Clone)]
pub struct GraphDb {
    inner: Arc<GraphDbInner>,
}

impl GraphDb {
    /// Opens (creating if necessary) a database in `dir` with the given
    /// configuration, replaying the write-ahead log and rebuilding the
    /// in-memory indexes.
    pub fn open(dir: impl AsRef<Path>, config: DbConfig) -> Result<Self> {
        let dir = dir.as_ref();
        let store = GraphStore::open(
            dir,
            GraphStoreConfig {
                cache_pages_per_store: config.cache_pages_per_store,
                verify_pages_on_read: config.verify_pages_on_read,
            },
        )?;
        let commit_ts_key = store.tokens().property_key(COMMIT_TS_PROPERTY)?;
        let wal = SegmentedWal::open(
            dir.join("wal"),
            config.sync_policy,
            config.wal_segment_bytes,
        )?;

        let inner = GraphDbInner {
            node_cache: VersionedCache::new(config.cache_shards),
            rel_cache: VersionedCache::new(config.cache_shards),
            indexes: GraphIndexes::new(),
            oracle: TimestampOracle::new(),
            active: ActiveTransactionTable::new(),
            locks: LockManager::new(config.lock_timeout),
            metrics: DbMetrics::new(),
            commit_ts_key,
            rel_overlay: RwLock::with_rank(
                std::collections::HashMap::new(),
                lock_rank::REL_OVERLAY,
                "core.rel_overlay",
            ),
            pipeline: CommitPipeline::new(
                config.group_commit_max_batch,
                config.group_commit_max_delay,
                wal.durable_lsn(),
                config.store_apply_shards,
            ),
            checkpoint_lock: Mutex::with_rank((), lock_rank::CHECKPOINT, "core.checkpoint"),
            txn_counter: AtomicU64::new(1),
            commits_since_gc: AtomicU64::new(0),
            config,
            store,
            wal,
        };
        inner.recover()?;
        Ok(GraphDb {
            inner: Arc::new(inner),
        })
    }

    /// Opens a database with the default configuration.
    pub fn open_default(dir: impl AsRef<Path>) -> Result<Self> {
        Self::open(dir, DbConfig::default())
    }

    /// The configuration this instance was opened with.
    pub fn config(&self) -> &DbConfig {
        &self.inner.config
    }

    // ------------------------------------------------------------------
    // Transactions
    // ------------------------------------------------------------------

    /// Starts configuring a transaction. Terminate the builder with
    /// [`TxnOptions::begin`]:
    ///
    /// ```
    /// # use graphsi_core::{DbConfig, GraphDb, IsolationLevel};
    /// # let dir = graphsi_core::test_support::TempDir::new("doc-txn");
    /// # let db = GraphDb::open(dir.path(), DbConfig::default()).unwrap();
    /// let tx = db
    ///     .txn()
    ///     .isolation(IsolationLevel::SnapshotIsolation)
    ///     .read_only()
    ///     .begin();
    /// # drop(tx);
    /// ```
    pub fn txn(&self) -> TxnOptions {
        TxnOptions::new(Arc::clone(&self.inner))
    }

    /// Begins a read-write transaction at the database's default isolation
    /// level.
    pub fn begin(&self) -> Transaction {
        self.txn().begin()
    }

    /// Begins a transaction at an explicit isolation level.
    #[deprecated(
        since = "0.2.0",
        note = "use the builder: `db.txn().isolation(..).begin()`"
    )]
    pub fn begin_with_isolation(&self, isolation: IsolationLevel) -> Transaction {
        self.txn().isolation(isolation).begin()
    }

    /// Runs `f` inside a read-only snapshot transaction and returns its
    /// result. Read-only transactions never touch the lock manager and
    /// skip write-set allocation — the paper's "no read locks" fast path.
    pub fn read<R>(&self, f: impl FnOnce(&Transaction) -> Result<R>) -> Result<R> {
        let tx = self.txn().read_only().begin();
        let result = f(&tx)?;
        tx.commit()?;
        Ok(result)
    }

    /// Runs `f` inside a read-write transaction, committing afterwards and
    /// retrying when the attempt fails with a retryable concurrency
    /// conflict — a write-write conflict, deadlock or lock timeout.
    ///
    /// The backoff between attempts uses capped **decorrelated jitter**:
    /// each retry sleeps a uniformly random duration drawn from
    /// `[base, 3 × previous sleep]`, capped at
    /// [`Self::WRITE_RETRY_BACKOFF_CAP_US`]. A deterministic schedule
    /// would wake every colliding session at the same instant and make
    /// them collide again in lockstep; the jitter spreads them out.
    /// Retries and total backoff time are visible as the `write_retries`
    /// / `write_retry_backoff_us` metrics.
    ///
    /// Non-conflict errors are returned immediately; after
    /// [`Self::WRITE_RETRY_LIMIT`] conflicts the last conflict error is
    /// returned.
    pub fn write_with_retry<R>(
        &self,
        mut f: impl FnMut(&mut Transaction) -> Result<R>,
    ) -> Result<R> {
        let mut sleep_us = Self::WRITE_RETRY_BACKOFF_BASE_US;
        let mut attempt = 0;
        loop {
            attempt += 1;
            let mut tx = self.begin();
            let result = f(&mut tx).and_then(|value| tx.commit().map(|_| value));
            match result {
                Ok(value) => return Ok(value),
                Err(e) if e.is_conflict() && attempt < Self::WRITE_RETRY_LIMIT => {
                    sleep_us = jitter_between(
                        Self::WRITE_RETRY_BACKOFF_BASE_US,
                        (sleep_us.saturating_mul(3)).min(Self::WRITE_RETRY_BACKOFF_CAP_US),
                    );
                    self.inner.metrics.record_write_retry(sleep_us);
                    std::thread::sleep(Duration::from_micros(sleep_us));
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Maximum attempts made by [`GraphDb::write_with_retry`]. Jittered
    /// attempts are cheap (the loser of a first-updater conflict aborts
    /// immediately), so the limit is sized for sustained contention on a
    /// single hot key rather than for the common two-party collision.
    pub const WRITE_RETRY_LIMIT: u32 = 32;

    /// Smallest backoff sleep of [`GraphDb::write_with_retry`], in µs.
    pub const WRITE_RETRY_BACKOFF_BASE_US: u64 = 50;

    /// Largest backoff sleep of [`GraphDb::write_with_retry`], in µs.
    pub const WRITE_RETRY_BACKOFF_CAP_US: u64 = 5_000;

    /// The newest commit timestamp whose effects are fully installed and
    /// therefore readable. This is what new transactions snapshot at.
    pub fn visible_timestamp(&self) -> Timestamp {
        self.inner.visible_timestamp()
    }

    /// Runs a **fuzzy checkpoint**: flushes committed state to the store
    /// and retires fully-covered WAL segments, all while stages A–C keep
    /// admitting and committing — no quiesce, no stop-the-world.
    ///
    /// The procedure brackets the flush with a `CheckpointBegin` /
    /// `CheckpointEnd` record pair:
    ///
    /// 1. `CheckpointBegin{epoch, begin_ts}` is appended *under the
    ///    sequencing lock*, which aligns the LSN and commit-timestamp
    ///    orders: a commit record before the begin mark in the log has
    ///    `commit_ts <= begin_ts`, and vice versa.
    /// 2. The pipeline settles: wait until every commit at or below
    ///    `begin_ts` has finished its store flush-through (or withdrawn).
    ///    Later commits are *not* waited for — they keep flowing.
    /// 3. The dirty page set is snapshotted once and flushed in chunks
    ///    ([`CHECKPOINT_FLUSH_CHUNK`]); pages dirtied after the snapshot
    ///    belong to post-begin commits, which WAL replay covers, so the
    ///    flush terminates even under sustained writes.
    /// 4. `CheckpointEnd{epoch, stable_ts}` is appended and made durable.
    ///    Recovery replays only the suffix after the last begin mark with
    ///    a matching later end mark; an unpaired begin is ignored.
    /// 5. Segments entirely at or below the begin mark are released
    ///    ([`SegmentedWal::release_upto`]) — everything in them is now
    ///    owned by the store.
    pub fn checkpoint(&self) -> Result<()> {
        let inner = &*self.inner;
        // Only a second concurrent checkpoint waits here; commits never
        // take this lock.
        let _ckpt = inner.checkpoint_lock.lock();
        let commits_before = inner.metrics.snapshot().commits;
        let epoch = inner.wal.advance_epoch();
        // Pages flushed from here on carry this epoch in their trailer
        // stamp, dating any later corruption finding.
        inner.store.set_page_stamp(epoch);
        let (begin_lsn, begin_ts) = {
            let _seq = inner.pipeline.sequence();
            let begin_ts = inner.oracle.current();
            let lsn = inner.wal.append(
                &CheckpointBeginRecord {
                    epoch,
                    begin_ts: begin_ts.raw(),
                }
                .encode(),
            )?;
            (lsn, begin_ts)
        };
        inner.pipeline.wait_published_upto(begin_ts);
        let pages = inner.store.flush_incremental(CHECKPOINT_FLUSH_CHUNK)?;
        let end_lsn = inner.wal.append(
            &CheckpointEndRecord {
                epoch,
                stable_ts: begin_ts.raw(),
            }
            .encode(),
        )?;
        inner
            .pipeline
            .wait_durable(&inner.wal, end_lsn, &inner.metrics)?;
        inner.wal.release_upto(begin_lsn)?;
        let commits_after = inner.metrics.snapshot().commits;
        inner
            .metrics
            .record_checkpoint(pages, commits_after.saturating_sub(commits_before));
        Ok(())
    }

    /// Runs the paper's threaded garbage collector: versions and index
    /// postings that no active transaction can observe are reclaimed by
    /// walking only the reclaimable prefix of the GC lists.
    pub fn run_gc(&self) -> GcSummary {
        self.inner.run_gc_with(GcStrategy::Threaded)
    }

    /// Runs the vacuum-style baseline garbage collector (visits every
    /// cached chain). Used by experiment E6 for comparison.
    pub fn run_gc_vacuum(&self) -> GcSummary {
        self.inner.run_gc_with(GcStrategy::Vacuum)
    }

    /// Database-level metrics. The WAL segment gauges are read live from
    /// the log here (they are owned by the WAL, not the counter struct).
    pub fn metrics(&self) -> DbMetricsSnapshot {
        let mut snapshot = self.inner.metrics.snapshot();
        snapshot.wal_segments_created = self.inner.wal.segments_created();
        snapshot.wal_segments_deleted = self.inner.wal.segments_deleted();
        snapshot.wal_retained_bytes = self.inner.wal.retained_bytes();
        snapshot.page_checksum_failures = self.inner.store.checksum_failures();
        snapshot.torn_pages_recovered = self.inner.store.torn_pages_recovered();
        snapshot
    }

    /// Counters of the node object cache.
    pub fn node_cache_stats(&self) -> CacheStatsSnapshot {
        self.inner.node_cache.stats()
    }

    /// Counters of the relationship object cache.
    pub fn relationship_cache_stats(&self) -> CacheStatsSnapshot {
        self.inner.rel_cache.stats()
    }

    /// Counters of the lock manager.
    pub fn lock_stats(&self) -> LockStatsSnapshot {
        self.inner.locks.stats()
    }

    /// Counters of the persistent store (page cache, record writes).
    pub fn store_stats(&self) -> GraphStoreStats {
        self.inner.store.stats()
    }

    /// The most recently issued commit timestamp.
    pub fn current_timestamp(&self) -> Timestamp {
        self.inner.oracle.current()
    }

    /// Number of transactions currently active.
    pub fn active_transactions(&self) -> usize {
        self.inner.active.len()
    }

    /// Runs the online integrity verifier: page-trailer CRCs, store chain
    /// pointers, MVCC cache and posting indexes are cross-checked under a
    /// read snapshot with bounded pages per lock hold, so commits keep
    /// flowing while it runs. Transient anomalies from in-flight commits
    /// are confirmed against a settled second walk before being reported
    /// — a clean database under churn verifies with zero findings. See
    /// [`crate::verify::VerifyReport`] for the finding classes.
    pub fn verify(&self) -> Result<crate::verify::VerifyReport> {
        crate::verify::run(&self.inner)
    }

    /// Crash-testing hook: arms a one-shot page-write fault (torn
    /// half-page, stale page, bit flip) on the store file holding
    /// `target`. The next write-back of that file suffers the fault while
    /// the cache believes the write succeeded — exactly what a crash
    /// between DMA and completion does. The store crash-point matrix
    /// drives this, proving checkpoint+replay recovers or
    /// [`GraphDb::verify`] reports.
    pub fn inject_store_write_fault(
        &self,
        target: graphsi_storage::StoreTarget,
        fault: graphsi_storage::PageFault,
    ) {
        self.inner.store.inject_write_fault(target, fault);
    }

    /// Crash-testing hook: makes the next `n` WAL sync operations fail
    /// with an injected I/O error, exercising the pipeline's failed-fsync
    /// paths (batch abort, abort-record invalidation). The commit records
    /// of failed committers stay in the log — exactly like a kernel-level
    /// sync failure — so recovery tests can assert they are never
    /// resurrected.
    pub fn inject_wal_sync_failures(&self, n: u32) {
        self.inner.wal.fail_syncs(n);
    }

    /// Resolves a label name to its token if it exists.
    pub fn label_token(&self, name: &str) -> Option<graphsi_storage::LabelToken> {
        self.inner.store.tokens().existing_label(name)
    }

    /// Resolves a property key name to its token if it exists.
    pub fn property_key_token(&self, name: &str) -> Option<PropertyKeyToken> {
        self.inner.store.tokens().existing_property_key(name)
    }

    /// Resolves a relationship type name to its token if it exists.
    pub fn rel_type_token(&self, name: &str) -> Option<graphsi_storage::RelTypeToken> {
        self.inner.store.tokens().existing_rel_type(name)
    }
}

impl GraphDbInner {
    /// The newest fully-installed (readable) commit timestamp.
    pub(crate) fn visible_timestamp(&self) -> Timestamp {
        self.pipeline.visible_timestamp()
    }

    /// Blocks until every commit sequenced so far has fully applied and
    /// published — the verifier's confirm barrier.
    pub(crate) fn settle_pipeline(&self) {
        self.pipeline.wait_published_upto(self.oracle.current());
    }

    /// Allocates a transaction ID and registers it as active.
    pub(crate) fn register_transaction(&self) -> (TxnId, Timestamp) {
        let id = TxnId(self.txn_counter.fetch_add(1, Ordering::Relaxed));
        let start_ts = self.visible_timestamp();
        self.active.register(id, start_ts);
        self.metrics.record_begin();
        (id, start_ts)
    }

    fn run_gc_with(&self, strategy: GcStrategy) -> GcSummary {
        let start = Instant::now();
        let watermark = self.active.gc_watermark(self.visible_timestamp());
        let (nodes, rels) = match strategy {
            GcStrategy::Threaded => (
                gc::run_threaded(&self.node_cache, watermark),
                gc::run_threaded(&self.rel_cache, watermark),
            ),
            GcStrategy::Vacuum => (
                gc::run_vacuum(&self.node_cache, watermark),
                gc::run_vacuum(&self.rel_cache, watermark),
            ),
        };
        let index_postings_reclaimed = self.indexes.gc(watermark);
        let summary = GcSummary {
            strategy,
            watermark,
            versions_examined: nodes.versions_examined + rels.versions_examined,
            versions_reclaimed: nodes.versions_reclaimed + rels.versions_reclaimed,
            chains_dropped: nodes.chains_dropped + rels.chains_dropped,
            index_postings_reclaimed,
            duration: start.elapsed(),
        };
        self.metrics.record_gc(summary.versions_reclaimed);
        summary
    }

    // ------------------------------------------------------------------
    // Internal read path (shared by both isolation levels)
    // ------------------------------------------------------------------

    /// Reads the node version visible at `read_ts`, returning the data and
    /// the commit timestamp of that version.
    pub(crate) fn read_node_version(
        &self,
        id: NodeId,
        read_ts: Timestamp,
    ) -> Result<Option<(Arc<NodeData>, Timestamp)>> {
        self.metrics.record_read();
        match self.node_cache.lookup(id, read_ts) {
            CacheLookup::Hit(v) => Ok(v.payload.map(|p| (p, v.commit_ts))),
            CacheLookup::NotVisible => Ok(None),
            CacheLookup::Miss => {
                match self.store.read_node(id)? {
                    None => Ok(self.recheck_node_cache(id, read_ts)),
                    Some(stored) => {
                        let (base_ts, properties) =
                            split_commit_ts(stored.properties, self.commit_ts_key);
                        if base_ts.visible_to(read_ts) {
                            Ok(Some((
                                Arc::new(NodeData::new(stored.labels, properties)),
                                base_ts,
                            )))
                        } else {
                            // The store was overwritten by a commit newer
                            // than our snapshot; the pre-image must now be
                            // in the cache (it is installed before the
                            // store is overwritten).
                            Ok(self.recheck_node_cache(id, read_ts))
                        }
                    }
                }
            }
        }
    }

    fn recheck_node_cache(
        &self,
        id: NodeId,
        read_ts: Timestamp,
    ) -> Option<(Arc<NodeData>, Timestamp)> {
        match self.node_cache.lookup(id, read_ts) {
            CacheLookup::Hit(v) => v.payload.map(|p| (p, v.commit_ts)),
            _ => None,
        }
    }

    /// Single-key fast path of [`GraphDbInner::read_node_version`]: the
    /// values of `tokens` on the node version visible at `read_ts`, without
    /// materialising the node's full property list. Cache hits answer from
    /// the already-materialised `NodeData`; cache misses use the store's
    /// selective chain decode ([`GraphStore::read_node_properties`]), which
    /// stops early and never loads values the caller did not ask for.
    ///
    /// Outer `None` = the node is invisible at `read_ts`; inner `None`s =
    /// the node exists but lacks that property.
    pub(crate) fn read_node_properties_version(
        &self,
        id: NodeId,
        tokens: &[PropertyKeyToken],
        read_ts: Timestamp,
    ) -> Result<Option<Vec<Option<PropertyValue>>>> {
        self.metrics.record_read();
        let from_data = |data: &NodeData| {
            tokens
                .iter()
                .map(|t| data.properties.get(t).cloned())
                .collect::<Vec<_>>()
        };
        let recheck = |inner: &Self| {
            Ok(match inner.node_cache.lookup(id, read_ts) {
                CacheLookup::Hit(v) => v.payload.map(|p| from_data(&p)),
                _ => None,
            })
        };
        match self.node_cache.lookup(id, read_ts) {
            CacheLookup::Hit(v) => Ok(v.payload.map(|p| from_data(&p))),
            CacheLookup::NotVisible => Ok(None),
            CacheLookup::Miss => {
                // One selective chain walk fetches the persisted commit-ts
                // property (needed for the visibility check) alongside the
                // requested keys.
                let mut keys = Vec::with_capacity(tokens.len() + 1);
                keys.push(self.commit_ts_key);
                keys.extend_from_slice(tokens);
                match self.store.read_node_properties(id, &keys)? {
                    None => recheck(self),
                    Some(mut values) => {
                        let base_ts = match values.remove(0) {
                            Some(PropertyValue::Int(raw)) => Timestamp(raw as u64),
                            _ => Timestamp::BOOTSTRAP,
                        };
                        if base_ts.visible_to(read_ts) {
                            Ok(Some(values))
                        } else {
                            // Overwritten by a newer commit; the pre-image
                            // is in the cache (installed before the store
                            // was overwritten).
                            recheck(self)
                        }
                    }
                }
            }
        }
    }

    /// Reads the relationship version visible at `read_ts`.
    pub(crate) fn read_relationship_version(
        &self,
        id: RelationshipId,
        read_ts: Timestamp,
    ) -> Result<Option<(Arc<RelationshipData>, Timestamp)>> {
        self.metrics.record_read();
        match self.rel_cache.lookup(id, read_ts) {
            CacheLookup::Hit(v) => Ok(v.payload.map(|p| (p, v.commit_ts))),
            CacheLookup::NotVisible => Ok(None),
            CacheLookup::Miss => match self.store.read_relationship(id)? {
                None => Ok(self.recheck_rel_cache(id, read_ts)),
                Some(stored) => {
                    let (base_ts, properties) =
                        split_commit_ts(stored.properties, self.commit_ts_key);
                    if base_ts.visible_to(read_ts) {
                        Ok(Some((
                            Arc::new(RelationshipData::new(
                                stored.source,
                                stored.target,
                                stored.rel_type,
                                properties,
                            )),
                            base_ts,
                        )))
                    } else {
                        Ok(self.recheck_rel_cache(id, read_ts))
                    }
                }
            },
        }
    }

    fn recheck_rel_cache(
        &self,
        id: RelationshipId,
        read_ts: Timestamp,
    ) -> Option<(Arc<RelationshipData>, Timestamp)> {
        match self.rel_cache.lookup(id, read_ts) {
            CacheLookup::Hit(v) => v.payload.map(|p| (p, v.commit_ts)),
            _ => None,
        }
    }

    /// Pages the relationship overlay of `node`: appends up to `chunk`
    /// overlay IDs that still have cached versions to `buf` (cleared
    /// first), resuming after `after`. Returns the resume marker for the
    /// next page, or `None` once the set is exhausted. Overlay entries
    /// whose versions GC has dropped are pruned lazily along the way —
    /// they are dead for every active snapshot, so no cursor can need
    /// them.
    pub(crate) fn overlay_page(
        &self,
        node: NodeId,
        after: Option<RelationshipId>,
        chunk: usize,
        buf: &mut Vec<RelationshipId>,
    ) -> Option<RelationshipId> {
        buf.clear();
        let mut stale = Vec::new();
        let mut last = None;
        {
            let overlay = self.rel_overlay.read();
            if let Some(set) = overlay.get(&node) {
                let range: Box<dyn Iterator<Item = &RelationshipId>> = match after {
                    None => Box::new(set.iter()),
                    Some(a) => Box::new(
                        set.range((std::ops::Bound::Excluded(a), std::ops::Bound::Unbounded)),
                    ),
                };
                for &id in range {
                    last = Some(id);
                    if self.rel_cache.contains(id) {
                        buf.push(id);
                    } else {
                        stale.push(id);
                    }
                    if buf.len() >= chunk {
                        break;
                    }
                }
            }
        }
        if !stale.is_empty() {
            let mut overlay = self.rel_overlay.write();
            if let Some(set) = overlay.get_mut(&node) {
                for id in stale {
                    set.remove(&id);
                }
                if set.is_empty() {
                    overlay.remove(&node);
                }
            }
        }
        last
    }

    fn overlay_add(&self, node: NodeId, rel: RelationshipId) {
        self.rel_overlay
            .write()
            .entry(node)
            .or_default()
            .insert(rel);
    }

    /// The newest committed timestamp known for a node (cache first, store
    /// as fallback), used for write-write conflict detection.
    pub(crate) fn newest_node_commit_ts(&self, id: NodeId) -> Result<Option<Timestamp>> {
        if let Some(ts) = self.node_cache.newest_commit_ts(id) {
            return Ok(Some(ts));
        }
        match self.store.read_node(id)? {
            Some(stored) => {
                let (ts, _) = split_commit_ts(stored.properties, self.commit_ts_key);
                Ok(Some(ts))
            }
            None => Ok(None),
        }
    }

    /// The newest committed timestamp known for a relationship.
    pub(crate) fn newest_rel_commit_ts(&self, id: RelationshipId) -> Result<Option<Timestamp>> {
        if let Some(ts) = self.rel_cache.newest_commit_ts(id) {
            return Ok(Some(ts));
        }
        match self.store.read_relationship(id)? {
            Some(stored) => {
                let (ts, _) = split_commit_ts(stored.properties, self.commit_ts_key);
                Ok(Some(ts))
            }
            None => Ok(None),
        }
    }

    /// Allocates a fresh node ID for a create buffered in a transaction.
    pub(crate) fn allocate_node_id(&self) -> NodeId {
        self.store.allocate_node_id()
    }

    /// Allocates a fresh relationship ID.
    pub(crate) fn allocate_relationship_id(&self) -> RelationshipId {
        self.store.allocate_relationship_id()
    }

    // ------------------------------------------------------------------
    // Commit pipeline
    // ------------------------------------------------------------------

    /// Finishes a read-only transaction. By construction it holds no locks
    /// and has no write set, so this never touches the lock manager.
    pub(crate) fn finish_read_only(&self, txn: TxnId, committed: bool) {
        let _ = self.active.deregister(txn);
        if committed {
            self.metrics.record_commit(true);
        } else {
            self.metrics.record_rollback();
        }
    }

    /// Aborts a read-write transaction: releases its locks and removes it
    /// from the active table.
    pub(crate) fn abort_transaction(&self, txn: TxnId, conflict: bool) {
        self.locks.release_all(txn);
        let _ = self.active.deregister(txn);
        if conflict {
            self.metrics.record_conflict_abort();
        } else {
            self.metrics.record_rollback();
        }
    }

    /// Commits a transaction's write set through the staged pipeline,
    /// returning the commit timestamp.
    ///
    /// * **Stage A** (short sequencing lock): first-committer-wins
    ///   validation, commit-timestamp assignment and WAL append, so
    ///   records land in the log in commit-timestamp order.
    /// * **Stage B** (no lock): leader/follower group sync — one fsync per
    ///   batch of concurrent committers.
    /// * **Stage C** (concurrent, per-shard store-apply locks): version
    ///   install, store flush-through and index updates overlap across
    ///   committers — the flush-through holds only the shard locks of the
    ///   commit's node-page/relationship-chain footprint, so disjoint
    ///   commits apply concurrently; the publication queue then advances
    ///   the visible timestamp strictly in commit-timestamp order.
    pub(crate) fn commit_transaction(
        &self,
        txn: TxnId,
        start_ts: Timestamp,
        strategy: ConflictStrategy,
        write_set: &WriteSet,
    ) -> Result<Timestamp> {
        if write_set.is_empty() {
            self.locks.release_all(txn);
            self.active.deregister(txn)?;
            self.metrics.record_commit(true);
            return Ok(start_ts);
        }

        // Off the sequencing critical path: snapshot the write set into
        // commit ops and pre-encode the WAL payload body (the header is
        // framed once the commit timestamp is known). Encoding validates
        // format limits, so an over-limit record aborts here — before a
        // timestamp is drawn or anything reaches the log.
        let ops = Self::build_commit_ops(write_set);
        let mut payload = match commit::encode_ops(&ops) {
            // Framed with a placeholder timestamp; the real one is patched
            // in place (8 bytes) once it is drawn under the lock, so the
            // critical section never copies the record.
            Ok(body) => commit::frame_record(Timestamp::BOOTSTRAP, &body),
            Err(e) => {
                self.abort_transaction(txn, false);
                return Err(e);
            }
        };
        let keys = commit_lock_keys(write_set);

        // Stage A — sequencing.
        let (commit_ts, lsn) = {
            let seq = self.pipeline.sequence();

            // First-committer-wins validation (skipped entirely under
            // first-updater-wins, where the long write locks already
            // decided every race at update time).
            if let Err(e) = self.validate_at_commit(start_ts, strategy, write_set) {
                drop(seq);
                self.abort_transaction(txn, true);
                return Err(e);
            }

            let commit_ts = self.oracle.commit_timestamp();
            commit::patch_commit_ts(&mut payload, commit_ts);
            match self.wal.append(&payload) {
                Ok(lsn) => {
                    // Fix this commit's position in the publication order
                    // and expose its keys to validators before leaving the
                    // lock.
                    self.pipeline.register(commit_ts, &keys);
                    (commit_ts, lsn)
                }
                Err(e) => {
                    // The drawn timestamp still gets a (withdrawn) queue
                    // slot: every drawn commit-ts must be registered so
                    // the publication queue stays contiguous in ts, which
                    // is what its O(1) offset indexing relies on.
                    self.pipeline.register(commit_ts, &[]);
                    self.pipeline.withdraw(commit_ts);
                    drop(seq);
                    self.abort_transaction(txn, false);
                    return Err(e.into());
                }
            }
        };

        // Stage B — durability: the commit record reaches stable storage
        // (one group sync covering the whole batch) before any state
        // becomes visible. On failure nothing was installed yet, so the
        // transaction aborts cleanly (locks released, deregistered, its
        // publication slot withdrawn) — otherwise its exclusive locks
        // would wedge every later writer. The commit record stays in the
        // log, but the failing group-commit leader already invalidated
        // the whole failed batch with a range-abort record (appended
        // before any later sync could run), so a later successful sync
        // plus crash recovery can never resurrect this caller-visible
        // abort.
        if let Err(e) = self.pipeline.wait_durable(&self.wal, lsn, &self.metrics) {
            self.pipeline.clear_pending(&keys);
            self.pipeline.withdraw(commit_ts);
            self.abort_transaction(txn, false);
            return Err(e);
        }

        // Stage C — installation, overlapping across committers.
        //
        // 1. Versions: install the new versions (and tombstones) into the
        //    object cache, seeding base versions so older snapshots keep
        //    reading their state. This happens *before* the store is
        //    overwritten so concurrent readers never observe a torn state.
        //    From here the cache answers validators, so the pipeline's
        //    pending table no longer needs this commit's keys.
        self.install_versions(commit_ts, write_set);
        self.pipeline.clear_pending(&keys);

        // 2. Persistent store: only the newest committed version is
        //    written (the paper's flush-through rule), under the shard
        //    locks of this commit's footprint — commits touching disjoint
        //    node pages / relationship chains flush through concurrently,
        //    overlapping ones queue per shard. Endpoints of relationship
        //    updates/deletes come from the write set's before-images (the
        //    ops encode only the ID). On failure the caller sees an abort
        //    while the record is already durable, so an abort record must
        //    invalidate it before recovery can replay it.
        let record = CommitRecord { commit_ts, ops };
        let footprint =
            commit::record_footprint(&record.ops, self.pipeline.store_shard_count(), |id| {
                rel_endpoints(write_set, id)
            });
        {
            let _apply = self.pipeline.store_apply(&footprint, &self.metrics);
            if let Err(e) = apply_to_store(&self.store, &record, self.commit_ts_key, false) {
                // A failed apply may have written *part* of the commit.
                // Undo it from the write set's before-images (still under
                // the shard locks) so the store returns to its pre-commit
                // state; only then is it safe to invalidate the WAL record
                // — with an abort record in the log, replay will never
                // re-apply this commit, so nothing else could repair a
                // half-applied store. If the undo itself fails (the disk
                // is failing under us), the WAL record is left *valid*:
                // recovery replays the whole commit and restores store
                // consistency — at the price of resurrecting a
                // caller-visible abort, the documented double-failure
                // stance (see ROADMAP).
                if self.undo_partial_apply(write_set).is_ok() {
                    self.append_abort_record(commit_ts);
                }
                // Roll the already-installed cache versions back *before*
                // withdrawing: the visible timestamp never reaches a
                // withdrawn commit, so nothing has observed them yet —
                // but once later commits publish past the gap they would
                // become visible, leaking writes the caller was told
                // failed.
                self.rollback_installed_versions(commit_ts, write_set);
                self.pipeline.withdraw(commit_ts);
                self.abort_transaction(txn, false);
                return Err(e);
            }
        }

        // 3. Indexes: versioned posting updates.
        self.update_indexes(commit_ts, write_set);

        // 4. Publication: advance the visible timestamp in strict
        //    commit-timestamp order (low-water mark). Returns once every
        //    earlier commit has published too, so when this commit is
        //    acknowledged a new transaction on the same thread is
        //    guaranteed to snapshot at (or past) it.
        self.pipeline.publish(commit_ts);

        self.locks.release_all(txn);
        self.active.deregister(txn)?;
        self.metrics.record_commit(false);

        if let Some(every) = self.config.auto_gc_every_commits {
            let n = self.commits_since_gc.fetch_add(1, Ordering::Relaxed) + 1;
            if n >= every {
                self.commits_since_gc.store(0, Ordering::Relaxed);
                self.run_gc_with(GcStrategy::Threaded);
            }
        }
        Ok(commit_ts)
    }

    /// Appends an abort (invalidation) record for a commit whose caller is
    /// about to observe a failure even though its commit record is — or
    /// can still become — durable in the log, and syncs it. Replay skips
    /// every commit timestamp named by an abort record, so a
    /// caller-visible abort can never be resurrected by recovery.
    ///
    /// Best-effort by necessity: if appending or syncing the abort record
    /// fails as well, the original abort is still reported and the commit
    /// record remains at risk of resurrection. That residual window is
    /// unavoidable on Linux, where a failed `fsync` may drop the dirty
    /// pages it could not write — a later "successful" sync then proves
    /// nothing about them (see ROADMAP).
    fn append_abort_record(&self, commit_ts: Timestamp) {
        let payload = AbortRecord {
            commit_ts: commit_ts.raw(),
        }
        .encode();
        if let Ok(lsn) = self.wal.append(&payload) {
            self.metrics.record_wal_abort();
            let _ = self.pipeline.wait_durable(&self.wal, lsn, &self.metrics);
        }
    }

    fn validate_at_commit(
        &self,
        start_ts: Timestamp,
        strategy: ConflictStrategy,
        write_set: &WriteSet,
    ) -> Result<()> {
        // Under first-updater-wins every write-write race was already
        // decided at update time through the long write locks; skip the
        // walk so stage A stays short.
        if strategy == ConflictStrategy::FirstUpdaterWins {
            return Ok(());
        }
        let nodes: Vec<NodeId> = write_set
            .nodes
            .iter()
            .filter(|(_, entry)| entry.before.is_some())
            .map(|(&id, _)| id)
            .collect();
        let rels: Vec<RelationshipId> = write_set
            .relationships
            .iter()
            .filter(|(_, entry)| entry.before.is_some())
            .map(|(&id, _)| id)
            .collect();
        // The pipeline's pending table is probed first (one lock for the
        // whole write set), *before* any cache read: a commit between
        // sequencing and version install is visible only there, and it
        // leaves the table only after the cache can answer for it.
        let keys: Vec<LockKey> = nodes
            .iter()
            .map(|id| LockKey::node(id.raw()))
            .chain(rels.iter().map(|id| LockKey::relationship(id.raw())))
            .collect();
        let pending = self.pipeline.pending_for(&keys);
        let (pending_nodes, pending_rels) = pending.split_at(nodes.len());
        for (&id, &p) in nodes.iter().zip(pending_nodes) {
            let newest = max_ts(p, self.newest_node_commit_ts(id)?);
            check_at_commit(strategy, LockKey::node(id.raw()), start_ts, newest)?;
        }
        for (&id, &p) in rels.iter().zip(pending_rels) {
            let newest = max_ts(p, self.newest_rel_commit_ts(id)?);
            check_at_commit(strategy, LockKey::relationship(id.raw()), start_ts, newest)?;
        }
        Ok(())
    }

    /// Snapshots a write set into commit-record operations, in
    /// store-application order (creates before deletes of dependent
    /// entities; relationship deletions before node deletions). Runs
    /// outside the sequencing lock — the ops carry no commit timestamp;
    /// [`CommitRecord`] gains one when the record is framed.
    fn build_commit_ops(write_set: &WriteSet) -> Vec<CommitOp> {
        let mut creates_nodes = Vec::new();
        let mut updates_nodes = Vec::new();
        let mut deletes_nodes = Vec::new();
        for (&id, entry) in &write_set.nodes {
            if entry.is_noop() {
                continue;
            }
            match (&entry.before, &entry.after) {
                (None, Some(after)) => creates_nodes.push(CommitOp::CreateNode {
                    id,
                    labels: after.labels.clone(),
                    properties: props_vec(&after.properties),
                }),
                (Some(_), Some(after)) => updates_nodes.push(CommitOp::UpdateNode {
                    id,
                    labels: after.labels.clone(),
                    properties: props_vec(&after.properties),
                }),
                (Some(_), None) => deletes_nodes.push(CommitOp::DeleteNode { id }),
                (None, None) => {}
            }
        }
        let mut creates_rels = Vec::new();
        let mut updates_rels = Vec::new();
        let mut deletes_rels = Vec::new();
        for (&id, entry) in &write_set.relationships {
            if entry.is_noop() {
                continue;
            }
            match (&entry.before, &entry.after) {
                (None, Some(after)) => creates_rels.push(CommitOp::CreateRelationship {
                    id,
                    source: after.source,
                    target: after.target,
                    rel_type: after.rel_type,
                    properties: props_vec(&after.properties),
                }),
                (Some(_), Some(after)) => updates_rels.push(CommitOp::UpdateRelationship {
                    id,
                    properties: props_vec(&after.properties),
                }),
                (Some(_), None) => deletes_rels.push(CommitOp::DeleteRelationship { id }),
                (None, None) => {}
            }
        }
        let mut ops = Vec::with_capacity(
            creates_nodes.len()
                + updates_nodes.len()
                + creates_rels.len()
                + updates_rels.len()
                + deletes_rels.len()
                + deletes_nodes.len(),
        );
        ops.extend(creates_nodes);
        ops.extend(updates_nodes);
        ops.extend(creates_rels);
        ops.extend(updates_rels);
        ops.extend(deletes_rels);
        ops.extend(deletes_nodes);
        ops
    }

    fn install_versions(&self, commit_ts: Timestamp, write_set: &WriteSet) {
        for (&id, entry) in &write_set.nodes {
            if entry.is_noop() {
                continue;
            }
            if let (Some(before), Some(before_ts)) = (&entry.before, entry.before_ts) {
                self.node_cache
                    .ensure_base(id, before_ts, Arc::clone(before));
            }
            self.node_cache
                .install_committed(id, commit_ts, entry.after.clone().map(Arc::new));
        }
        for (&id, entry) in &write_set.relationships {
            if entry.is_noop() {
                continue;
            }
            if let (Some(before), Some(before_ts)) = (&entry.before, entry.before_ts) {
                self.rel_cache
                    .ensure_base(id, before_ts, Arc::clone(before));
            }
            self.rel_cache
                .install_committed(id, commit_ts, entry.after.clone().map(Arc::new));
            // Keep the adjacency overlay in sync so snapshot traversals can
            // find relationships whose latest committed state differs from
            // what an older snapshot should observe.
            let endpoints = entry
                .after
                .as_ref()
                .map(|d| (d.source, d.target))
                .or_else(|| entry.before.as_ref().map(|d| (d.source, d.target)));
            if let Some((source, target)) = endpoints {
                self.overlay_add(source, id);
                if target != source {
                    self.overlay_add(target, id);
                }
            }
        }
    }

    /// Restores the persistent store to a commit's pre-image after a
    /// failed (possibly partial) `apply_to_store`, using the write set's
    /// before-images. Must run under the commit's store-apply shard locks
    /// so no concurrent commit observes — or splices into — the half
    /// state.
    ///
    /// Every step is guarded by an existence probe, so entities the
    /// failed apply never reached are untouched. Restored entities get
    /// their *original* commit-timestamp property back (`before_ts`), so
    /// a later cold read or reopen seeds base versions exactly as before
    /// the aborted commit. Order mirrors reverse dependency: node
    /// pre-images first (relationship restores need their endpoints),
    /// then created relationships out, then relationship pre-images back,
    /// then created nodes out.
    fn undo_partial_apply(&self, write_set: &WriteSet) -> Result<()> {
        let ts_prop = |ts: Option<Timestamp>| {
            ts.map(|t| (self.commit_ts_key, PropertyValue::Int(t.raw() as i64)))
        };
        // 1. Node pre-images (updated or deleted nodes back to before).
        for (&id, entry) in &write_set.nodes {
            if entry.is_noop() {
                continue;
            }
            let Some(before) = entry.before.as_deref() else {
                continue;
            };
            let extra = ts_prop(entry.before_ts);
            let props = props_vec(&before.properties);
            if self.store.node_exists(id)? {
                self.store
                    .update_node_with(id, &before.labels, &props, extra.as_ref())?;
            } else {
                self.store
                    .create_node_with(id, &before.labels, &props, extra.as_ref())?;
            }
        }
        // 2. Created relationships out (before their created endpoints).
        for (&id, entry) in &write_set.relationships {
            if entry.before.is_none() && !entry.is_noop() && self.store.relationship_exists(id)? {
                self.store.delete_relationship(id)?;
            }
        }
        // 3. Relationship pre-images (updated back, deleted re-spliced).
        for (&id, entry) in &write_set.relationships {
            if entry.is_noop() {
                continue;
            }
            let Some(before) = entry.before.as_deref() else {
                continue;
            };
            let extra = ts_prop(entry.before_ts);
            let props = props_vec(&before.properties);
            if self.store.relationship_exists(id)? {
                self.store
                    .update_relationship_with(id, &props, extra.as_ref())?;
            } else {
                self.store.create_relationship_with(
                    id,
                    before.source,
                    before.target,
                    before.rel_type,
                    &props,
                    extra.as_ref(),
                )?;
            }
        }
        // 4. Created nodes out (their created relationships are gone).
        for (&id, entry) in &write_set.nodes {
            if entry.before.is_none() && !entry.is_noop() && self.store.node_exists(id)? {
                self.store.delete_node(id)?;
            }
        }
        Ok(())
    }

    /// Removes the versions [`Self::install_versions`] installed at
    /// `commit_ts` from the caches — the rollback half of a stage-C abort.
    /// Base (pre-image) versions seeded alongside them stay: they mirror
    /// state the persistent store really holds. Overlay entries added for
    /// the commit's relationships are pruned lazily by `overlay_page`
    /// once the cache no longer answers for them.
    fn rollback_installed_versions(&self, commit_ts: Timestamp, write_set: &WriteSet) {
        for (&id, entry) in &write_set.nodes {
            if !entry.is_noop() {
                self.node_cache.remove_version(id, commit_ts);
            }
        }
        for (&id, entry) in &write_set.relationships {
            if !entry.is_noop() {
                self.rel_cache.remove_version(id, commit_ts);
            }
        }
    }

    fn update_indexes(&self, commit_ts: Timestamp, write_set: &WriteSet) {
        for (&id, entry) in &write_set.nodes {
            if entry.is_noop() {
                continue;
            }
            let empty = NodeData::default();
            let before = entry.before.as_deref().unwrap_or(&empty);
            let after_default = NodeData::default();
            let after = entry.after.as_ref().unwrap_or(&after_default);
            // Labels.
            for label in &after.labels {
                if !before.labels.contains(label) {
                    self.indexes.labels.add(*label, id, commit_ts);
                }
            }
            for label in &before.labels {
                if !after.labels.contains(label) {
                    self.indexes.labels.remove(*label, id, commit_ts);
                }
            }
            // Properties.
            for (key, value) in &after.properties {
                match before.properties.get(key) {
                    Some(old) if old == value => {}
                    Some(old) => {
                        self.indexes
                            .node_properties
                            .remove(*key, old, id, commit_ts);
                        self.indexes.node_properties.add(*key, value, id, commit_ts);
                    }
                    None => self.indexes.node_properties.add(*key, value, id, commit_ts),
                }
            }
            for (key, value) in &before.properties {
                if !after.properties.contains_key(key) {
                    self.indexes
                        .node_properties
                        .remove(*key, value, id, commit_ts);
                }
            }
        }
        for (&id, entry) in &write_set.relationships {
            if entry.is_noop() {
                continue;
            }
            let before_props: &BTreeMap<PropertyKeyToken, PropertyValue> = match &entry.before {
                Some(b) => &b.properties,
                None => &EMPTY_PROPS,
            };
            let after_props: &BTreeMap<PropertyKeyToken, PropertyValue> = match &entry.after {
                Some(a) => &a.properties,
                None => &EMPTY_PROPS,
            };
            for (key, value) in after_props {
                match before_props.get(key) {
                    Some(old) if old == value => {}
                    Some(old) => {
                        self.indexes
                            .relationship_properties
                            .remove(*key, old, id, commit_ts);
                        self.indexes
                            .relationship_properties
                            .add(*key, value, id, commit_ts);
                    }
                    None => self
                        .indexes
                        .relationship_properties
                        .add(*key, value, id, commit_ts),
                }
            }
            for (key, value) in before_props {
                if !after_props.contains_key(key) {
                    self.indexes
                        .relationship_properties
                        .remove(*key, value, id, commit_ts);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Recovery
    // ------------------------------------------------------------------

    fn recover(&self) -> Result<()> {
        // 0. Permissive fault-in for the duration of replay: a store page
        //    that fails its trailer checksum now is *suspect*, not yet
        //    fatal — if WAL replay rewrites it, it was a torn write fully
        //    covered by the log and the rebuilt in-memory copy reseals at
        //    the next flush. Only a suspect replay never touches is
        //    unexplainable corruption.
        self.store.begin_recovery();

        // 1. Replay the WAL: re-apply committed transactions that may not
        //    have reached the store files before the crash. Bookkeeping
        //    records are collected first:
        //
        //    * Abort records invalidate commits (by commit timestamp —
        //      stage-C apply failure — or by LSN range — a failed group
        //      sync): those belong to transactions whose callers saw them
        //      fail, so replaying them would resurrect an acknowledged
        //      abort. Ranges only ever cover records that were never
        //      durably acknowledged, so they can never invalidate a
        //      checkpointed commit.
        //    * A `CheckpointBegin` with a matching *later* same-epoch
        //      `CheckpointEnd` proves every commit at or before the begin
        //      mark was flushed to the store before the end mark was
        //      written — that prefix is skipped. An unpaired begin (crash
        //      mid-checkpoint) proves nothing and is ignored. If the pair
        //      itself was already released with its segment, the retained
        //      log starts after the begin mark anyway, so replaying all
        //      of it is equivalent.
        let scan = self.wal.scan()?;
        let mut aborted_ts = std::collections::HashSet::new();
        let mut aborted_ranges = Vec::new();
        let mut open_begins: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        let mut replay_after_lsn = 0u64;
        let mut max_epoch = 0u64;
        let mut max_ts = Timestamp::BOOTSTRAP;
        for entry in &scan.entries {
            match payload_kind(&entry.payload, entry.lsn)? {
                PayloadKind::Abort => {
                    aborted_ts.insert(AbortRecord::decode(&entry.payload, entry.lsn)?.commit_ts);
                }
                PayloadKind::AbortRange => {
                    aborted_ranges.push(AbortRangeRecord::decode(&entry.payload, entry.lsn)?);
                }
                PayloadKind::SegmentHeader => {
                    // Validated by the WAL's own open-time stitching.
                }
                PayloadKind::CheckpointBegin => {
                    let record = CheckpointBeginRecord::decode(&entry.payload, entry.lsn)?;
                    open_begins.insert(record.epoch, entry.lsn);
                    max_epoch = max_epoch.max(record.epoch);
                    if Timestamp(record.begin_ts) > max_ts {
                        max_ts = Timestamp(record.begin_ts);
                    }
                }
                PayloadKind::CheckpointEnd => {
                    let record = CheckpointEndRecord::decode(&entry.payload, entry.lsn)?;
                    max_epoch = max_epoch.max(record.epoch);
                    if let Some(&begin_lsn) = open_begins.get(&record.epoch) {
                        replay_after_lsn = replay_after_lsn.max(begin_lsn);
                    }
                    if Timestamp(record.stable_ts) > max_ts {
                        max_ts = Timestamp(record.stable_ts);
                    }
                }
                PayloadKind::Commit => {}
            }
        }
        for entry in &scan.entries {
            if payload_kind(&entry.payload, entry.lsn)? != PayloadKind::Commit {
                continue;
            }
            let record = CommitRecord::decode(&entry.payload)?;
            if record.commit_ts > max_ts {
                // Dead or alive, the timestamp is consumed: the clock must
                // never hand it out again.
                max_ts = record.commit_ts;
            }
            if entry.lsn <= replay_after_lsn {
                // Covered by the last completed checkpoint: already in
                // the store.
                continue;
            }
            if aborted_ts.contains(&record.commit_ts.raw())
                || aborted_ranges.iter().any(|r| r.covers(entry.lsn))
            {
                continue;
            }
            apply_to_store(&self.store, &record, self.commit_ts_key, true)?;
        }

        // Replay is done: resolve the suspects. Pages replay rewrote are
        // torn writes healed from the log (counted as
        // `torn_pages_recovered`); anything left over is fatal — better a
        // typed error at open than a silent wrong answer later.
        for (file, outcome) in self.store.end_recovery() {
            if let Some(&(page, expected, found)) = outcome.unresolved.first() {
                return Err(graphsi_storage::StorageError::PageChecksum {
                    file: file.to_string(),
                    page,
                    expected,
                    found,
                }
                .into());
            }
        }

        // 2. Rebuild the in-memory indexes from the store, using each
        //    entity's persisted commit timestamp as the posting timestamp.
        for id in self.store.scan_node_ids()? {
            if let Some(stored) = self.store.read_node(id)? {
                let (ts, properties) = split_commit_ts(stored.properties, self.commit_ts_key);
                if ts > max_ts {
                    max_ts = ts;
                }
                for label in &stored.labels {
                    self.indexes.labels.add(*label, id, ts);
                }
                for (key, value) in &properties {
                    self.indexes.node_properties.add(*key, value, id, ts);
                }
            }
        }
        for id in self.store.scan_relationship_ids()? {
            if let Some(stored) = self.store.read_relationship(id)? {
                let (ts, properties) = split_commit_ts(stored.properties, self.commit_ts_key);
                if ts > max_ts {
                    max_ts = ts;
                }
                for (key, value) in &properties {
                    self.indexes
                        .relationship_properties
                        .add(*key, value, id, ts);
                }
            }
        }

        // 3. Resume the logical clock after the newest commit seen
        //    anywhere, and the checkpoint epoch after the newest epoch in
        //    the log. No flush-and-truncate here: recovery replays into
        //    the page cache and store, and the next *fuzzy* checkpoint
        //    retires the replayed suffix — open stays cheap.
        self.oracle.advance_to(max_ts);
        self.pipeline.set_visible_timestamp(max_ts);
        self.wal.raise_epoch(max_epoch);
        Ok(())
    }
}

static EMPTY_PROPS: BTreeMap<PropertyKeyToken, PropertyValue> = BTreeMap::new();

/// Lock keys of every effective (non-noop) entry of a write set — the keys
/// the pipeline's pending-commit table exposes to validators between
/// sequencing and version install.
fn commit_lock_keys(write_set: &WriteSet) -> Vec<LockKey> {
    let mut keys = Vec::with_capacity(write_set.nodes.len() + write_set.relationships.len());
    for (&id, entry) in &write_set.nodes {
        if !entry.is_noop() {
            keys.push(LockKey::node(id.raw()));
        }
    }
    for (&id, entry) in &write_set.relationships {
        if !entry.is_noop() {
            keys.push(LockKey::relationship(id.raw()));
        }
    }
    keys
}

/// Endpoints of a relationship in a write set, for store-apply footprint
/// extraction: update/delete ops encode only the relationship ID, but the
/// write set's before-image (or the buffered after-state, for entries that
/// never had one) always knows the endpoints — they are immutable for the
/// lifetime of a relationship.
fn rel_endpoints(write_set: &WriteSet, id: RelationshipId) -> Option<(NodeId, NodeId)> {
    write_set.relationships.get(&id).and_then(|entry| {
        entry
            .before
            .as_deref()
            .map(|d| (d.source, d.target))
            .or_else(|| entry.after.as_ref().map(|d| (d.source, d.target)))
    })
}

/// A uniformly random value in `[lo, hi]` from a cheap thread-local
/// SplitMix64 generator (seeded per thread from `RandomState`), used for
/// the decorrelated retry jitter. Deliberately not seedable: two sessions
/// must never share a sequence, or their backoffs re-align.
fn jitter_between(lo: u64, hi: u64) -> u64 {
    use std::cell::Cell;
    use std::collections::hash_map::RandomState;
    use std::hash::{BuildHasher, Hasher};

    if hi <= lo {
        return lo;
    }
    thread_local! {
        static STATE: Cell<u64> = Cell::new(RandomState::new().build_hasher().finish());
    }
    STATE.with(|state| {
        let mut z = state.get().wrapping_add(0x9e37_79b9_7f4a_7c15);
        state.set(z);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        lo + (z ^ (z >> 31)) % (hi - lo + 1)
    })
}

/// The newer of two optional timestamps.
fn max_ts(a: Option<Timestamp>, b: Option<Timestamp>) -> Option<Timestamp> {
    match (a, b) {
        (Some(a), Some(b)) => Some(a.max(b)),
        (a, None) => a,
        (None, b) => b,
    }
}

fn props_vec(
    props: &BTreeMap<PropertyKeyToken, PropertyValue>,
) -> Vec<(PropertyKeyToken, PropertyValue)> {
    props.iter().map(|(k, v)| (*k, v.clone())).collect()
}

impl std::fmt::Debug for GraphDb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GraphDb")
            .field("dir", &self.inner.store.dir())
            .field("isolation", &self.inner.config.isolation)
            .field("current_ts", &self.inner.oracle.current())
            .field("active_txns", &self.inner.active.len())
            .field("handles", &Arc::strong_count(&self.inner))
            .finish()
    }
}

// `DbError` is not `Clone`, so the closure conveniences cannot be tested
// exhaustively here; see `tests/integration_threads.rs` for the
// multi-threaded retry coverage.
#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::DbError;
    use graphsi_storage::test_util::TempDir;

    #[test]
    fn handles_are_cheap_clones_sharing_state() {
        let dir = TempDir::new("db_handle");
        let db = GraphDb::open(dir.path(), DbConfig::default()).unwrap();
        let other = db.clone();
        let mut tx = other.begin();
        let node = tx.create_node(&["H"], &[]).unwrap();
        tx.commit().unwrap();
        let tx = db.begin();
        assert!(tx.node_exists(node).unwrap());
    }

    #[test]
    fn handle_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync + 'static>() {}
        assert_send_sync::<GraphDb>();
    }

    #[test]
    fn read_closure_commits_read_only() {
        let dir = TempDir::new("db_read_closure");
        let db = GraphDb::open(dir.path(), DbConfig::default()).unwrap();
        let mut tx = db.begin();
        let node = tx.create_node(&["R"], &[]).unwrap();
        tx.commit().unwrap();
        let before = db.metrics();
        let found = db.read(|tx| tx.node_exists(node)).unwrap();
        assert!(found);
        let after = db.metrics();
        assert_eq!(after.read_only_commits, before.read_only_commits + 1);
    }

    #[test]
    fn write_with_retry_commits_and_returns_value() {
        let dir = TempDir::new("db_write_retry");
        let db = GraphDb::open(dir.path(), DbConfig::default()).unwrap();
        let node = db
            .write_with_retry(|tx| tx.create_node(&["W"], &[]))
            .unwrap();
        assert!(db.read(|tx| tx.node_exists(node)).unwrap());
    }

    #[test]
    fn jitter_stays_in_bounds_and_varies() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..256 {
            let v = jitter_between(50, 5_000);
            assert!((50..=5_000).contains(&v));
            seen.insert(v);
        }
        // A degenerate (constant) generator would defeat the whole point
        // of decorrelated jitter.
        assert!(seen.len() > 32, "jitter draws must vary: {}", seen.len());
        assert_eq!(jitter_between(7, 7), 7);
        assert_eq!(jitter_between(9, 3), 9, "inverted range clamps to lo");
    }

    #[test]
    fn write_with_retry_propagates_non_conflict_errors() {
        let dir = TempDir::new("db_write_retry_err");
        let db = GraphDb::open(dir.path(), DbConfig::default()).unwrap();
        let err = db
            .write_with_retry(|tx| tx.node_labels(NodeId::new(404)).map(|_| ()))
            .unwrap_err();
        assert!(matches!(err, DbError::NodeNotFound(_)));
    }
}
