//! Snapshot-consistent lazy iterators over a transaction's view.
//!
//! These replace the eager `Vec`-returning read paths: candidates are
//! enumerated as bare IDs (persistent chain, versioned-cache overlay,
//! index postings) and each element is resolved against the snapshot — and
//! merged with the transaction's private write set — only when the
//! iterator reaches it. The paper's *enriched iterator* (§4) lives here:
//! relationship expansion merges the committed chain with cached versions
//! an older snapshot must still observe and with the transaction's own
//! pending writes, without ever materialising the whole adjacency list.

use std::collections::HashSet;

use graphsi_storage::{LabelToken, NodeId, PropertyKeyToken, PropertyValue, RelationshipId};

use crate::entity::{Direction, Relationship};
use crate::error::Result;
use crate::transaction::Transaction;

/// Lazy iterator over the relationships touching one node, in the
/// transaction's view. Yields `Result<Relationship>`; an error aborts the
/// iteration (subsequent `next` calls return `None`).
///
/// Created by [`Transaction::relationships`].
pub struct RelIter<'tx> {
    tx: &'tx Transaction,
    node: NodeId,
    direction: Direction,
    /// Committed candidates: persistent chain + overlay, bare IDs.
    committed: std::vec::IntoIter<RelationshipId>,
    /// This transaction's pending creations touching the node.
    pending: std::vec::IntoIter<RelationshipId>,
    seen: HashSet<RelationshipId>,
    failed: bool,
}

impl<'tx> RelIter<'tx> {
    pub(crate) fn new(tx: &'tx Transaction, node: NodeId, direction: Direction) -> Result<Self> {
        let committed = tx.db().candidate_relationships_of(node)?;
        let pending: Vec<RelationshipId> = tx
            .write_set_ref()
            .map(|ws| {
                ws.pending_relationships_of(node)
                    .into_iter()
                    .map(|(id, _)| id)
                    .collect()
            })
            .unwrap_or_default();
        Ok(RelIter {
            tx,
            node,
            direction,
            committed: committed.into_iter(),
            pending: pending.into_iter(),
            seen: HashSet::new(),
            failed: false,
        })
    }
}

impl Iterator for RelIter<'_> {
    type Item = Result<Relationship>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        // Committed candidates first: own deletions and updates win, the
        // snapshot decides the rest.
        for id in self.committed.by_ref() {
            if !self.seen.insert(id) {
                continue;
            }
            if let Some(state) = self
                .tx
                .write_set_ref()
                .and_then(|ws| ws.relationship_state(id))
            {
                if let Some(data) = state {
                    if data.touches(self.node)
                        && self.direction.matches(self.node, data.source, data.target)
                    {
                        return Some(Ok(self.tx.to_public_relationship(id, data)));
                    }
                }
                continue;
            }
            match self.tx.visible_relationship(id) {
                Ok(Some(data)) => {
                    if data.touches(self.node)
                        && self.direction.matches(self.node, data.source, data.target)
                    {
                        return Some(Ok(self.tx.to_public_relationship(id, &data)));
                    }
                }
                Ok(None) => {}
                Err(e) => {
                    self.failed = true;
                    return Some(Err(e));
                }
            }
        }
        // Then the transaction's own pending creations.
        for id in self.pending.by_ref() {
            if !self.seen.insert(id) {
                continue;
            }
            let Some(Some(data)) = self
                .tx
                .write_set_ref()
                .map(|ws| ws.relationship_state(id).flatten())
            else {
                continue;
            };
            if self.direction.matches(self.node, data.source, data.target) {
                return Some(Ok(self.tx.to_public_relationship(id, data)));
            }
        }
        None
    }
}

impl std::fmt::Debug for RelIter<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RelIter")
            .field("node", &self.node)
            .field("direction", &self.direction)
            .finish_non_exhaustive()
    }
}

/// Lazy iterator over the IDs of a node's neighbours, deduplicated in
/// visit order. Created by [`Transaction::neighbors`].
pub struct NeighborIter<'tx> {
    rels: RelIter<'tx>,
    node: NodeId,
    yielded: HashSet<NodeId>,
}

impl<'tx> NeighborIter<'tx> {
    pub(crate) fn new(rels: RelIter<'tx>, node: NodeId) -> Self {
        NeighborIter {
            rels,
            node,
            yielded: HashSet::new(),
        }
    }
}

impl Iterator for NeighborIter<'_> {
    type Item = Result<NodeId>;

    fn next(&mut self) -> Option<Self::Item> {
        for rel in self.rels.by_ref() {
            match rel {
                Ok(rel) => {
                    let other = rel.other_node(self.node);
                    if self.yielded.insert(other) {
                        return Some(Ok(other));
                    }
                }
                Err(e) => return Some(Err(e)),
            }
        }
        None
    }
}

impl std::fmt::Debug for NeighborIter<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NeighborIter")
            .field("node", &self.node)
            .finish_non_exhaustive()
    }
}

/// What a [`NodeIdIter`] checks before yielding a base candidate, and
/// which write-set additions it appends.
enum NodeScan {
    /// Index-backed label scan: write-set state decides membership.
    Label(LabelToken),
    /// Index-backed property scan.
    Property(PropertyKeyToken, PropertyValue),
    /// Whole-graph scan: every candidate is visibility-checked.
    All,
    /// Nothing matches (unknown label/property name).
    Empty,
}

/// Lazy iterator over node IDs from a label scan, a property scan or a
/// whole-graph scan, merged with the transaction's write set. Yields
/// `Result<NodeId>` in no particular order; use the `*_vec` shims on
/// [`Transaction`] for sorted output.
pub struct NodeIdIter<'tx> {
    tx: &'tx Transaction,
    base: std::vec::IntoIter<NodeId>,
    /// Write-set additions not present in the base listing (computed
    /// eagerly over the — small — write set at construction time).
    pending: std::vec::IntoIter<NodeId>,
    scan: NodeScan,
    seen: HashSet<NodeId>,
    failed: bool,
}

impl<'tx> NodeIdIter<'tx> {
    pub(crate) fn empty(tx: &'tx Transaction) -> Self {
        Self::build(tx, Vec::new(), NodeScan::Empty)
    }

    pub(crate) fn with_label(tx: &'tx Transaction, base: Vec<NodeId>, token: LabelToken) -> Self {
        Self::build(tx, base, NodeScan::Label(token))
    }

    pub(crate) fn with_property(
        tx: &'tx Transaction,
        base: Vec<NodeId>,
        token: PropertyKeyToken,
        value: PropertyValue,
    ) -> Self {
        Self::build(tx, base, NodeScan::Property(token, value))
    }

    pub(crate) fn all_nodes(tx: &'tx Transaction, candidates: Vec<NodeId>) -> Self {
        Self::build(tx, candidates, NodeScan::All)
    }

    fn build(tx: &'tx Transaction, base: Vec<NodeId>, scan: NodeScan) -> Self {
        // Write-set additions that the index/base listing cannot know
        // about. The base membership check goes through a set built once,
        // keeping construction O(|base| + |write set|); read-only
        // transactions (no write set) skip all of this.
        let pending: Vec<NodeId> = match (&scan, tx.write_set_ref()) {
            (NodeScan::Label(..) | NodeScan::Property(..), Some(ws)) if !ws.nodes.is_empty() => {
                let in_base: HashSet<NodeId> = base.iter().copied().collect();
                ws.nodes
                    .iter()
                    .filter(|(id, entry)| {
                        let matches = match &scan {
                            NodeScan::Label(token) => {
                                entry.after.as_ref().is_some_and(|a| a.has_label(*token))
                            }
                            NodeScan::Property(token, value) => entry
                                .after
                                .as_ref()
                                .is_some_and(|a| a.properties.get(token) == Some(value)),
                            _ => false,
                        };
                        matches && !in_base.contains(id)
                    })
                    .map(|(&id, _)| id)
                    .collect()
            }
            _ => Vec::new(),
        };
        NodeIdIter {
            tx,
            base: base.into_iter(),
            pending: pending.into_iter(),
            scan,
            seen: HashSet::new(),
            failed: false,
        }
    }
}

impl Iterator for NodeIdIter<'_> {
    type Item = Result<NodeId>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        for id in self.base.by_ref() {
            match &self.scan {
                NodeScan::Empty => return None,
                NodeScan::Label(token) => {
                    match self.tx.write_set_ref().and_then(|ws| ws.node_state(id)) {
                        // Own write decides: still carries the label?
                        Some(Some(after)) => {
                            if after.has_label(*token) {
                                return Some(Ok(id));
                            }
                        }
                        // Deleted by this transaction.
                        Some(None) => {}
                        // Untouched: the versioned index already filtered
                        // by snapshot visibility.
                        None => return Some(Ok(id)),
                    }
                }
                NodeScan::Property(token, value) => {
                    match self.tx.write_set_ref().and_then(|ws| ws.node_state(id)) {
                        Some(Some(after)) => {
                            if after.properties.get(token) == Some(value) {
                                return Some(Ok(id));
                            }
                        }
                        Some(None) => {}
                        None => return Some(Ok(id)),
                    }
                }
                NodeScan::All => {
                    if !self.seen.insert(id) {
                        continue;
                    }
                    match self.tx.visible_node(id) {
                        Ok(Some(_)) => return Some(Ok(id)),
                        Ok(None) => {}
                        Err(e) => {
                            self.failed = true;
                            return Some(Err(e));
                        }
                    }
                }
            }
        }
        self.pending.next().map(Ok)
    }
}

impl std::fmt::Debug for NodeIdIter<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodeIdIter").finish_non_exhaustive()
    }
}

/// Lazy iterator over every relationship ID visible to the transaction.
/// Created by [`Transaction::all_relationships`].
pub struct RelIdIter<'tx> {
    tx: &'tx Transaction,
    candidates: std::vec::IntoIter<RelationshipId>,
    seen: HashSet<RelationshipId>,
    failed: bool,
}

impl<'tx> RelIdIter<'tx> {
    pub(crate) fn new(tx: &'tx Transaction, candidates: Vec<RelationshipId>) -> Self {
        RelIdIter {
            tx,
            candidates: candidates.into_iter(),
            seen: HashSet::new(),
            failed: false,
        }
    }
}

impl Iterator for RelIdIter<'_> {
    type Item = Result<RelationshipId>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        for id in self.candidates.by_ref() {
            if !self.seen.insert(id) {
                continue;
            }
            match self.tx.visible_relationship(id) {
                Ok(Some(_)) => return Some(Ok(id)),
                Ok(None) => {}
                Err(e) => {
                    self.failed = true;
                    return Some(Err(e));
                }
            }
        }
        None
    }
}

impl std::fmt::Debug for RelIdIter<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RelIdIter").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use crate::config::DbConfig;
    use crate::db::GraphDb;
    use crate::entity::Direction;
    use crate::error::Result;
    use graphsi_storage::test_util::TempDir;

    #[test]
    fn rel_iter_is_lazy_and_complete() {
        let dir = TempDir::new("iter_rel");
        let db = GraphDb::open(dir.path(), DbConfig::default()).unwrap();
        let mut tx = db.begin();
        let hub = tx.create_node(&["Hub"], &[]).unwrap();
        let spokes: Vec<_> = (0..10)
            .map(|_| tx.create_node(&["Spoke"], &[]).unwrap())
            .collect();
        for &s in &spokes {
            tx.create_relationship(hub, s, "SPOKE", &[]).unwrap();
        }
        tx.commit().unwrap();

        let tx = db.begin();
        // Early termination: taking 3 elements must not resolve the rest.
        let reads_before = db.metrics().reads;
        let first_three: Vec<_> = tx
            .relationships(hub, Direction::Outgoing)
            .unwrap()
            .take(3)
            .collect::<Result<_>>()
            .unwrap();
        assert_eq!(first_three.len(), 3);
        let reads_for_three = db.metrics().reads - reads_before;

        let reads_before = db.metrics().reads;
        let all: Vec<_> = tx
            .relationships(hub, Direction::Outgoing)
            .unwrap()
            .collect::<Result<_>>()
            .unwrap();
        assert_eq!(all.len(), 10);
        let reads_for_all = db.metrics().reads - reads_before;
        assert!(
            reads_for_three < reads_for_all,
            "lazy iterator must resolve fewer versions when stopped early \
             ({reads_for_three} vs {reads_for_all})"
        );
    }

    #[test]
    fn rel_iter_merges_pending_writes_and_deletions() {
        let dir = TempDir::new("iter_rel_ws");
        let db = GraphDb::open(dir.path(), DbConfig::default()).unwrap();
        let mut tx = db.begin();
        let a = tx.create_node(&["N"], &[]).unwrap();
        let b = tx.create_node(&["N"], &[]).unwrap();
        let c = tx.create_node(&["N"], &[]).unwrap();
        let ab = tx.create_relationship(a, b, "T", &[]).unwrap();
        tx.create_relationship(a, c, "T", &[]).unwrap();
        tx.commit().unwrap();

        let mut tx = db.begin();
        tx.delete_relationship(ab).unwrap();
        let d = tx.create_node(&["N"], &[]).unwrap();
        let ad = tx.create_relationship(a, d, "T", &[]).unwrap();
        let ids: Vec<_> = tx
            .relationships(a, Direction::Both)
            .unwrap()
            .map(|r| r.map(|r| r.id))
            .collect::<Result<_>>()
            .unwrap();
        assert!(!ids.contains(&ab), "own deletion wins");
        assert!(ids.contains(&ad), "own pending creation visible");
        assert_eq!(ids.len(), 2);
    }

    #[test]
    fn node_id_iter_merges_write_set() {
        let dir = TempDir::new("iter_label");
        let db = GraphDb::open(dir.path(), DbConfig::default()).unwrap();
        let mut tx = db.begin();
        let keep = tx.create_node(&["P"], &[]).unwrap();
        let relabel = tx.create_node(&["P"], &[]).unwrap();
        tx.commit().unwrap();

        let mut tx = db.begin();
        tx.remove_label(relabel, "P").unwrap();
        let fresh = tx.create_node(&["P"], &[]).unwrap();
        let mut ids = tx.nodes_with_label_vec("P").unwrap();
        ids.sort();
        assert_eq!(ids, {
            let mut v = vec![keep, fresh];
            v.sort();
            v
        });
    }

    #[test]
    fn unknown_label_yields_empty_iterator() {
        let dir = TempDir::new("iter_empty");
        let db = GraphDb::open(dir.path(), DbConfig::default()).unwrap();
        let tx = db.begin();
        assert_eq!(tx.nodes_with_label("Nope").unwrap().count(), 0);
    }
}
