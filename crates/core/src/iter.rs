//! Snapshot-consistent, **chunked** lazy iterators over a transaction's
//! view.
//!
//! PR 1 made the read paths lazy but still buffered full candidate-ID
//! lists at creation; this layer removes even that. Candidates now come
//! from resumable, GC-safe cursors — the store's relationship/slot chains
//! ([`graphsi_storage::RelChainCursor`], [`graphsi_storage::NodeScanCursor`]),
//! the versioned index postings ([`graphsi_index::PostingCursor`]) and the
//! MVCC cache's shard pages — each buffering at most one fixed-size chunk
//! of bare IDs and re-validating its position on every refill, so
//! concurrent commits and GC above the watermark are safe. (One scoped
//! exception: the whole-graph scans' cache stage transiently stages one
//! cache shard's key set at a time, bounded by the largest shard and
//! tracked by the `shard_key_buffer_peak` metric — see [`ScanSource`].)
//! The paper's
//! *enriched iterator* (§4) still happens here, but per element: every
//! candidate is merged with the version cache overlay and the
//! transaction's private write set only when the iterator reaches it, so a
//! k-hop expansion over a million-node graph holds O(frontier + chunk)
//! memory instead of O(candidates).

use std::collections::HashSet;
use std::ops::Bound;

use graphsi_index::{PostingCursor, PropertyIndexKey, RangePostingCursor};
use graphsi_storage::{
    LabelToken, NodeId, NodeScanCursor, PropertyKeyToken, PropertyValue, RelChainCursor,
    RelScanCursor, RelationshipId, ValueKey,
};

use crate::entity::{Direction, Relationship, RelationshipData};
use crate::error::Result;
use crate::transaction::Transaction;

// ----------------------------------------------------------------------
// Committed relationship candidates: chain cursor ∪ overlay pages
// ----------------------------------------------------------------------

/// Where the committed-candidate cursor currently draws IDs from.
enum RelStage<'tx> {
    /// The persistent relationship chain, paged by the store cursor.
    Chain(RelChainCursor<'tx>),
    /// The version-cache overlay (relationships with cached versions
    /// touching the node), paged by ID order with a resume marker.
    Overlay {
        marker: Option<RelationshipId>,
    },
    Done,
}

/// Chunked source of committed candidate relationship IDs for one node:
/// first the persistent chain, then the overlay of relationships whose
/// versions live only in the MVCC cache (the enriched-iterator merge).
/// Buffers at most one chunk; holds no lock between refills.
struct RelCandidateCursor<'tx> {
    tx: &'tx Transaction,
    node: NodeId,
    chunk: usize,
    buf: Vec<RelationshipId>,
    pos: usize,
    /// Chain-cursor restarts already flushed to the metrics. Flushing the
    /// delta after every refill (not at exhaustion) keeps the
    /// `cursor_restarts` counter accurate even when the iterator is
    /// dropped early (a `limit`, an aborted traversal).
    restarts_reported: u64,
    stage: RelStage<'tx>,
}

impl<'tx> RelCandidateCursor<'tx> {
    fn new(tx: &'tx Transaction, node: NodeId, chunk: usize) -> Result<Self> {
        let cursor = tx.db().store.rel_chain_cursor(node, chunk)?;
        Ok(RelCandidateCursor {
            tx,
            node,
            chunk,
            buf: Vec::new(),
            pos: 0,
            restarts_reported: 0,
            stage: RelStage::Chain(cursor),
        })
    }

    fn next_id(&mut self) -> Result<Option<RelationshipId>> {
        loop {
            if self.pos < self.buf.len() {
                let id = self.buf[self.pos];
                self.pos += 1;
                return Ok(Some(id));
            }
            self.pos = 0;
            match &mut self.stage {
                RelStage::Chain(cursor) => {
                    let result = cursor.next_chunk(&mut self.buf);
                    let restarts = cursor.restarts();
                    self.tx
                        .db()
                        .metrics
                        .record_cursor_restarts(restarts - self.restarts_reported);
                    self.restarts_reported = restarts;
                    if !result? {
                        self.stage = RelStage::Overlay { marker: None };
                        continue;
                    }
                    self.tx.db().metrics.record_chunk_refill(self.buf.len());
                }
                RelStage::Overlay { marker } => {
                    let next =
                        self.tx
                            .db()
                            .overlay_page(self.node, *marker, self.chunk, &mut self.buf);
                    if !self.buf.is_empty() {
                        self.tx.db().metrics.record_chunk_refill(self.buf.len());
                    }
                    match next {
                        Some(m) => *marker = Some(m),
                        None => self.stage = RelStage::Done,
                    }
                }
                RelStage::Done => return Ok(None),
            }
        }
    }
}

// ----------------------------------------------------------------------
// Relationship iterators
// ----------------------------------------------------------------------

/// Internal engine iterator over the relationships touching one node in
/// the transaction's view, yielding raw `(id, data)` pairs without
/// resolving token names. [`RelIter`], [`NeighborIter`] and the query
/// expansion stage all ride on it.
pub(crate) struct RelEntryIter<'tx> {
    tx: &'tx Transaction,
    node: NodeId,
    direction: Direction,
    candidates: RelCandidateCursor<'tx>,
    /// This transaction's pending creations touching the node (small:
    /// bounded by the write set).
    pending: std::vec::IntoIter<RelationshipId>,
    seen: HashSet<RelationshipId>,
    failed: bool,
}

impl<'tx> RelEntryIter<'tx> {
    pub(crate) fn new(
        tx: &'tx Transaction,
        node: NodeId,
        direction: Direction,
        chunk: usize,
    ) -> Result<Self> {
        let candidates = RelCandidateCursor::new(tx, node, chunk)?;
        let pending: Vec<RelationshipId> = tx
            .write_set_ref()
            .map(|ws| {
                ws.pending_relationships_of(node)
                    .into_iter()
                    .map(|(id, _)| id)
                    .collect()
            })
            .unwrap_or_default();
        Ok(RelEntryIter {
            tx,
            node,
            direction,
            candidates,
            pending: pending.into_iter(),
            seen: HashSet::new(),
            failed: false,
        })
    }

    pub(crate) fn node(&self) -> NodeId {
        self.node
    }
}

impl Iterator for RelEntryIter<'_> {
    type Item = Result<(RelationshipId, RelationshipData)>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        // Committed candidates first: own deletions and updates win, the
        // snapshot decides the rest. The `seen` set both deduplicates the
        // chain ∪ overlay merge and absorbs re-yields after a chain-cursor
        // restart.
        loop {
            let id = match self.candidates.next_id() {
                Ok(Some(id)) => id,
                Ok(None) => break,
                Err(e) => {
                    self.failed = true;
                    return Some(Err(e));
                }
            };
            if !self.seen.insert(id) {
                continue;
            }
            if let Some(state) = self
                .tx
                .write_set_ref()
                .and_then(|ws| ws.relationship_state(id))
            {
                if let Some(data) = state {
                    if data.touches(self.node)
                        && self.direction.matches(self.node, data.source, data.target)
                    {
                        return Some(Ok((id, data.clone())));
                    }
                }
                continue;
            }
            match self.tx.visible_relationship(id) {
                Ok(Some(data)) => {
                    if data.touches(self.node)
                        && self.direction.matches(self.node, data.source, data.target)
                    {
                        return Some(Ok((id, data)));
                    }
                }
                Ok(None) => {}
                Err(e) => {
                    self.failed = true;
                    return Some(Err(e));
                }
            }
        }
        // Then the transaction's own pending creations.
        for id in self.pending.by_ref() {
            if !self.seen.insert(id) {
                continue;
            }
            let Some(Some(data)) = self
                .tx
                .write_set_ref()
                .map(|ws| ws.relationship_state(id).flatten())
            else {
                continue;
            };
            if self.direction.matches(self.node, data.source, data.target) {
                return Some(Ok((id, data.clone())));
            }
        }
        None
    }
}

impl std::fmt::Debug for RelEntryIter<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RelEntryIter")
            .field("node", &self.node)
            .field("direction", &self.direction)
            .finish_non_exhaustive()
    }
}

/// Lazy iterator over the relationships touching one node, in the
/// transaction's view. Yields `Result<Relationship>`; an error aborts the
/// iteration (subsequent `next` calls return `None`).
///
/// Created by [`Transaction::relationships`].
pub struct RelIter<'tx> {
    entries: RelEntryIter<'tx>,
}

impl<'tx> RelIter<'tx> {
    pub(crate) fn new(
        tx: &'tx Transaction,
        node: NodeId,
        direction: Direction,
        chunk: usize,
    ) -> Result<Self> {
        Ok(RelIter {
            entries: RelEntryIter::new(tx, node, direction, chunk)?,
        })
    }
}

impl Iterator for RelIter<'_> {
    type Item = Result<Relationship>;

    fn next(&mut self) -> Option<Self::Item> {
        let tx = self.entries.tx;
        match self.entries.next()? {
            Ok((id, data)) => Some(Ok(tx.to_public_relationship(id, &data))),
            Err(e) => Some(Err(e)),
        }
    }
}

impl std::fmt::Debug for RelIter<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RelIter")
            .field("node", &self.entries.node)
            .field("direction", &self.entries.direction)
            .finish_non_exhaustive()
    }
}

/// Lazy iterator over the IDs of a node's neighbours, deduplicated in
/// visit order. Created by [`Transaction::neighbors`]. Rides directly on
/// the raw entry iterator, so neighbour expansion never materialises
/// property maps or token names.
pub struct NeighborIter<'tx> {
    rels: RelEntryIter<'tx>,
    node: NodeId,
    yielded: HashSet<NodeId>,
}

impl<'tx> NeighborIter<'tx> {
    pub(crate) fn new(rels: RelEntryIter<'tx>) -> Self {
        let node = rels.node();
        NeighborIter {
            rels,
            node,
            yielded: HashSet::new(),
        }
    }
}

impl Iterator for NeighborIter<'_> {
    type Item = Result<NodeId>;

    fn next(&mut self) -> Option<Self::Item> {
        for rel in self.rels.by_ref() {
            match rel {
                Ok((_, data)) => {
                    let other = data.other_node(self.node);
                    if self.yielded.insert(other) {
                        return Some(Ok(other));
                    }
                }
                Err(e) => return Some(Err(e)),
            }
        }
        None
    }
}

impl std::fmt::Debug for NeighborIter<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NeighborIter")
            .field("node", &self.node)
            .finish_non_exhaustive()
    }
}

// ----------------------------------------------------------------------
// Node scans
// ----------------------------------------------------------------------

/// What a [`NodeIdIter`] checks before yielding a base candidate.
enum NodeScan {
    /// Index-backed label scan: write-set state decides membership.
    Label(LabelToken),
    /// Index-backed property scan.
    Property(PropertyKeyToken, PropertyValue),
    /// Index-backed property **range** scan (pushed-down comparison
    /// predicate): write-set state decides membership via the shared
    /// range semantics.
    PropertyRange {
        token: PropertyKeyToken,
        lo: Bound<ValueKey>,
        hi: Bound<ValueKey>,
    },
    /// Sorted-posting intersection: the base walks the *driver* range
    /// cursor; each candidate must also appear in every pre-drained,
    /// sorted leg build side (binary search — no property decode).
    /// Write-set state decides membership against all predicates at once.
    Intersection {
        token: PropertyKeyToken,
        lo: Bound<ValueKey>,
        hi: Bound<ValueKey>,
        legs: Vec<(PropertyKeyToken, Bound<ValueKey>, Bound<ValueKey>)>,
        builds: Vec<Vec<NodeId>>,
    },
    /// Whole-graph scan: every candidate is visibility-checked.
    All,
    /// Nothing matches (unknown label/property name).
    Empty,
}

/// The shape both store slot-scan cursors share, so the whole-graph scan
/// source can be written once for nodes and relationships.
trait SlotScanCursor {
    type Id: Copy + Eq + std::hash::Hash;
    fn next_chunk(&mut self, buf: &mut Vec<Self::Id>) -> graphsi_storage::Result<bool>;
}

impl SlotScanCursor for NodeScanCursor<'_> {
    type Id = NodeId;
    fn next_chunk(&mut self, buf: &mut Vec<NodeId>) -> graphsi_storage::Result<bool> {
        NodeScanCursor::next_chunk(self, buf)
    }
}

impl SlotScanCursor for RelScanCursor<'_> {
    type Id = RelationshipId;
    fn next_chunk(&mut self, buf: &mut Vec<RelationshipId>) -> graphsi_storage::Result<bool> {
        RelScanCursor::next_chunk(self, buf)
    }
}

/// Chunked source of whole-graph candidates, shared by [`NodeIdIter`]'s
/// `All` scan and [`RelIdIter`]: the store's slot scan, then the MVCC
/// cache's keys (entities whose only versions live in the cache, e.g.
/// deleted-but-still-visible ones), then the write set's keys.
///
/// The cache stage pages each shard through the cache's sorted
/// range-resume pages (`shard_keys_page`): between refills only a resume
/// marker is retained, so the stage's *transient* buffering is bounded by
/// the chunk size — not by the largest shard, no matter how skewed the
/// key distribution is (recorded in the `shard_key_buffer_peak` metric).
/// Pages up to one chunk of a cache shard's keys into the out-vector,
/// resuming after the marker; `false` = no such shard (the cache stage is
/// exhausted).
type ShardKeysFn<'tx, Id> = Box<dyn Fn(usize, Option<Id>, usize, &mut Vec<Id>) -> bool + 'tx>;

struct ScanSource<'tx, C: SlotScanCursor> {
    store: C,
    store_done: bool,
    shard: usize,
    shard_keys_fn: ShardKeysFn<'tx, C::Id>,
    /// Resume marker within the current shard: the last key the previous
    /// page yielded.
    shard_after: Option<C::Id>,
    ws_keys: std::vec::IntoIter<C::Id>,
}

impl<C: SlotScanCursor> ScanSource<'_, C> {
    /// Refills `buf` with up to `chunk` candidates; `false` = exhausted.
    fn refill(&mut self, tx: &Transaction, chunk: usize, buf: &mut Vec<C::Id>) -> Result<bool> {
        buf.clear();
        if !self.store_done {
            if self.store.next_chunk(buf)? {
                return Ok(true);
            }
            self.store_done = true;
        }
        loop {
            if !(self.shard_keys_fn)(self.shard, self.shard_after, chunk, buf) {
                break;
            }
            match buf.last() {
                Some(&last) => {
                    self.shard_after = Some(last);
                    tx.db().metrics.record_shard_page(buf.len());
                    return Ok(true);
                }
                None => {
                    // Shard exhausted; move on to the next one.
                    self.shard += 1;
                    self.shard_after = None;
                }
            }
        }
        while buf.len() < chunk {
            match self.ws_keys.next() {
                Some(id) => buf.push(id),
                None => break,
            }
        }
        Ok(!buf.is_empty())
    }
}

/// Source of base candidates for a [`NodeIdIter`].
enum NodeBase<'tx> {
    Empty,
    Label(PostingCursor<'tx, LabelToken, NodeId>),
    Property(PostingCursor<'tx, PropertyIndexKey, NodeId>),
    PropertyRange(RangePostingCursor<'tx, PropertyIndexKey, NodeId>),
    All(Box<ScanSource<'tx, NodeScanCursor<'tx>>>),
}

/// Lazy, chunked iterator over node IDs from a label scan, a property scan
/// or a whole-graph scan, merged with the transaction's write set. Yields
/// `Result<NodeId>` in no particular order; use the `*_vec` shims on
/// [`Transaction`] for sorted output.
pub struct NodeIdIter<'tx> {
    tx: &'tx Transaction,
    base: NodeBase<'tx>,
    base_done: bool,
    chunk: usize,
    buf: Vec<NodeId>,
    pos: usize,
    /// Write-set additions the index/base listing cannot know about
    /// (computed eagerly over the — small — write set at construction).
    pending: std::vec::IntoIter<NodeId>,
    scan: NodeScan,
    /// Deduplication for the whole-graph scan (store ∪ cache ∪ write set).
    seen: HashSet<NodeId>,
    /// Limit pushdown: stop yielding — and stop *paging the base* — once
    /// this many rows streamed. `next_base` clamps the cursor chunk to the
    /// remaining budget so the source never over-fetches postings a
    /// downstream `limit` would drop.
    budget: Option<usize>,
    yielded: usize,
    /// The budget came from a served top-k terminal: reaching it with the
    /// base unexhausted is a `topk_early_exits` event.
    topk: bool,
    early_exit_recorded: bool,
    failed: bool,
}

impl<'tx> NodeIdIter<'tx> {
    pub(crate) fn empty(tx: &'tx Transaction) -> Self {
        Self::build(tx, NodeBase::Empty, NodeScan::Empty, Vec::new(), 1)
    }

    pub(crate) fn with_label(tx: &'tx Transaction, token: LabelToken, chunk: usize) -> Self {
        let read_ts = tx.read_timestamp();
        let cursor = tx.db().indexes.labels.cursor(token, read_ts, chunk);
        // Write-set additions the versioned index cannot know about: nodes
        // whose pending state carries the label but whose visible index
        // membership says otherwise.
        let pending: Vec<NodeId> = match tx.write_set_ref() {
            Some(ws) if !ws.nodes.is_empty() => ws
                .nodes
                .iter()
                .filter(|(id, entry)| {
                    entry.after.as_ref().is_some_and(|a| a.has_label(token))
                        && !tx.db().indexes.labels.has_label(token, **id, read_ts)
                })
                .map(|(&id, _)| id)
                .collect(),
            _ => Vec::new(),
        };
        Self::build(
            tx,
            NodeBase::Label(cursor),
            NodeScan::Label(token),
            pending,
            chunk,
        )
    }

    pub(crate) fn with_property(
        tx: &'tx Transaction,
        token: PropertyKeyToken,
        value: PropertyValue,
        chunk: usize,
    ) -> Self {
        let read_ts = tx.read_timestamp();
        let cursor = tx
            .db()
            .indexes
            .node_properties
            .cursor(token, &value, read_ts, chunk);
        let pending: Vec<NodeId> = match tx.write_set_ref() {
            Some(ws) if !ws.nodes.is_empty() => ws
                .nodes
                .iter()
                .filter(|(id, entry)| {
                    entry
                        .after
                        .as_ref()
                        .is_some_and(|a| a.properties.get(&token) == Some(&value))
                        && !tx
                            .db()
                            .indexes
                            .node_properties
                            .contains(token, &value, **id, read_ts)
                })
                .map(|(&id, _)| id)
                .collect(),
            _ => Vec::new(),
        };
        Self::build(
            tx,
            NodeBase::Property(cursor),
            NodeScan::Property(token, value),
            pending,
            chunk,
        )
    }

    /// Index-backed property **range** scan: the base is a
    /// [`RangePostingCursor`] over the sorted key dimension of the node
    /// property index — a pushed-down comparison predicate that never
    /// decodes candidate property lists. Pending write-set additions are
    /// found by comparing each buffered node's after-state against the
    /// range and its *committed* visible value through the single-key
    /// decode fast path.
    pub(crate) fn with_property_range(
        tx: &'tx Transaction,
        token: PropertyKeyToken,
        lo: Bound<ValueKey>,
        hi: Bound<ValueKey>,
        chunk: usize,
        descending: bool,
    ) -> crate::error::Result<Self> {
        let read_ts = tx.read_timestamp();
        let index = &tx.db().indexes.node_properties;
        let cursor = if descending {
            index.range_cursor_desc(
                token,
                graphsi_index::bound_as_ref(&lo),
                graphsi_index::bound_as_ref(&hi),
                read_ts,
                chunk,
            )
        } else {
            index.range_cursor(
                token,
                graphsi_index::bound_as_ref(&lo),
                graphsi_index::bound_as_ref(&hi),
                read_ts,
                chunk,
            )
        };
        let mut pending: Vec<NodeId> = Vec::new();
        if let Some(ws) = tx.write_set_ref() {
            for (&id, entry) in &ws.nodes {
                let in_range = entry.after.as_ref().is_some_and(|a| {
                    a.properties
                        .get(&token)
                        .is_some_and(|v| crate::plan::value_key_in_bounds(&v.index_key(), &lo, &hi))
                });
                if !in_range {
                    continue;
                }
                // Only nodes the index cannot already yield for this
                // snapshot: their committed visible value (if any) must
                // fall outside the range.
                let committed = tx
                    .db()
                    .read_node_properties_version(id, &[token], read_ts)?
                    .and_then(|mut v| v.pop().flatten());
                let index_yields = committed
                    .is_some_and(|v| crate::plan::value_key_in_bounds(&v.index_key(), &lo, &hi));
                if !index_yields {
                    pending.push(id);
                }
            }
        }
        Ok(Self::build(
            tx,
            NodeBase::PropertyRange(cursor),
            NodeScan::PropertyRange { token, lo, hi },
            pending,
            chunk,
        ))
    }

    /// Sorted-posting merge-intersect over two or more pushdown-able
    /// predicates. The *driver* (smallest estimated leg, chosen by the
    /// planner) streams through a range cursor — ascending or descending,
    /// so a served `order_by` can ride it — while every other leg is
    /// drained once into a sorted, deduplicated build side checked by
    /// binary search per driver candidate. No property list is decoded on
    /// the committed path.
    pub(crate) fn with_intersection(
        tx: &'tx Transaction,
        driver: (PropertyKeyToken, Bound<ValueKey>, Bound<ValueKey>),
        legs: Vec<(PropertyKeyToken, Bound<ValueKey>, Bound<ValueKey>)>,
        chunk: usize,
        descending: bool,
    ) -> crate::error::Result<Self> {
        let read_ts = tx.read_timestamp();
        let (token, lo, hi) = driver;
        let index = &tx.db().indexes.node_properties;
        let mut builds: Vec<Vec<NodeId>> = Vec::with_capacity(legs.len());
        for (ltok, llo, lhi) in &legs {
            let mut cursor = index.range_cursor(
                *ltok,
                graphsi_index::bound_as_ref(llo),
                graphsi_index::bound_as_ref(lhi),
                read_ts,
                chunk,
            );
            let mut build: Vec<NodeId> = Vec::new();
            let mut buf: Vec<NodeId> = Vec::new();
            while cursor.next_chunk(&mut buf) {
                tx.db().metrics.record_chunk_refill(buf.len());
                build.extend_from_slice(&buf);
            }
            // A node holding several distinct in-range values appears once
            // per value key in the posting walk.
            build.sort_unstable();
            build.dedup();
            builds.push(build);
        }
        let cursor = if descending {
            index.range_cursor_desc(
                token,
                graphsi_index::bound_as_ref(&lo),
                graphsi_index::bound_as_ref(&hi),
                read_ts,
                chunk,
            )
        } else {
            index.range_cursor(
                token,
                graphsi_index::bound_as_ref(&lo),
                graphsi_index::bound_as_ref(&hi),
                read_ts,
                chunk,
            )
        };
        // Write-set additions: pending nodes whose after-state satisfies
        // every predicate but whose *committed* visible state the driver ∩
        // legs walk would not surface.
        let mut pending: Vec<NodeId> = Vec::new();
        if let Some(ws) = tx.write_set_ref() {
            if !ws.nodes.is_empty() {
                let tokens: Vec<PropertyKeyToken> = std::iter::once(token)
                    .chain(legs.iter().map(|(t, _, _)| *t))
                    .collect();
                let bounds: Vec<(&Bound<ValueKey>, &Bound<ValueKey>)> = std::iter::once((&lo, &hi))
                    .chain(legs.iter().map(|(_, l, h)| (l, h)))
                    .collect();
                for (&id, entry) in &ws.nodes {
                    let after_ok = entry.after.as_ref().is_some_and(|a| {
                        tokens.iter().zip(&bounds).all(|(t, (l, h))| {
                            a.properties.get(t).is_some_and(|v| {
                                crate::plan::value_key_in_bounds(&v.index_key(), l, h)
                            })
                        })
                    });
                    if !after_ok {
                        continue;
                    }
                    let committed = tx.db().read_node_properties_version(id, &tokens, read_ts)?;
                    let index_yields = committed.is_some_and(|vals| {
                        vals.iter().zip(&bounds).all(|(v, (l, h))| {
                            v.as_ref().is_some_and(|v| {
                                crate::plan::value_key_in_bounds(&v.index_key(), l, h)
                            })
                        })
                    });
                    if !index_yields {
                        pending.push(id);
                    }
                }
            }
        }
        Ok(Self::build(
            tx,
            NodeBase::PropertyRange(cursor),
            NodeScan::Intersection {
                token,
                lo,
                hi,
                legs,
                builds,
            },
            pending,
            chunk,
        ))
    }

    pub(crate) fn all_nodes(tx: &'tx Transaction, chunk: usize) -> Self {
        let ws_keys: Vec<NodeId> = tx
            .write_set_ref()
            .map(|ws| ws.nodes.keys().copied().collect())
            .unwrap_or_default();
        let db = tx.db();
        let source = ScanSource {
            store: db.store.node_scan_cursor(chunk),
            store_done: false,
            shard: 0,
            shard_keys_fn: Box::new(move |shard, after, page, out| {
                db.node_cache.shard_keys_page(shard, after, page, out)
            }),
            shard_after: None,
            ws_keys: ws_keys.into_iter(),
        };
        Self::build(
            tx,
            NodeBase::All(Box::new(source)),
            NodeScan::All,
            Vec::new(),
            chunk,
        )
    }

    fn build(
        tx: &'tx Transaction,
        base: NodeBase<'tx>,
        scan: NodeScan,
        pending: Vec<NodeId>,
        chunk: usize,
    ) -> Self {
        NodeIdIter {
            tx,
            base,
            base_done: false,
            chunk,
            buf: Vec::new(),
            pos: 0,
            pending: pending.into_iter(),
            scan,
            seen: HashSet::new(),
            budget: None,
            yielded: 0,
            topk: false,
            early_exit_recorded: false,
            failed: false,
        }
    }

    /// Attaches the planner's remaining-row budget (limit pushdown). With
    /// `topk`, hitting the budget before the base drains is recorded as a
    /// `topk_early_exits` event.
    pub(crate) fn with_budget(mut self, budget: Option<usize>, topk: bool) -> Self {
        self.budget = budget;
        self.topk = topk;
        self
    }

    /// Pulls the next base candidate, refilling the chunk buffer on demand.
    fn next_base(&mut self) -> Result<Option<NodeId>> {
        loop {
            if self.pos < self.buf.len() {
                let id = self.buf[self.pos];
                self.pos += 1;
                return Ok(Some(id));
            }
            if self.base_done {
                return Ok(None);
            }
            self.pos = 0;
            // Limit pushdown: never page more candidates than the budget
            // still needs (the cursor clamp persists across refills, so
            // the final page is exactly-sized rather than a full chunk).
            let remaining = self.budget.map(|b| b.saturating_sub(self.yielded));
            let refilled = match &mut self.base {
                NodeBase::Empty => false,
                NodeBase::Label(cursor) => {
                    if let Some(r) = remaining {
                        cursor.clamp_chunk(r);
                    }
                    cursor.next_chunk(&mut self.buf)
                }
                NodeBase::Property(cursor) => {
                    if let Some(r) = remaining {
                        cursor.clamp_chunk(r);
                    }
                    cursor.next_chunk(&mut self.buf)
                }
                NodeBase::PropertyRange(cursor) => {
                    if let Some(r) = remaining {
                        cursor.clamp_chunk(r);
                    }
                    cursor.next_chunk(&mut self.buf)
                }
                NodeBase::All(source) => {
                    let chunk = remaining.map_or(self.chunk, |r| self.chunk.min(r.max(1)));
                    source.refill(self.tx, chunk, &mut self.buf)?
                }
            };
            if !refilled {
                // Not a refill: nothing was buffered and the base is done
                // for good (the pending drain must not re-poll it).
                self.base_done = true;
                return Ok(None);
            }
            self.tx.db().metrics.record_chunk_refill(self.buf.len());
        }
    }

    /// The scan body behind [`Iterator::next`]; the public wrapper layers
    /// the row budget (limit pushdown / top-k early exit) on top.
    fn next_inner(&mut self) -> Option<Result<NodeId>> {
        if self.failed {
            return None;
        }
        loop {
            let id = match self.next_base() {
                Ok(Some(id)) => id,
                Ok(None) => break,
                Err(e) => {
                    self.failed = true;
                    return Some(Err(e));
                }
            };
            match &self.scan {
                NodeScan::Empty => return None,
                NodeScan::Label(token) => {
                    match self.tx.write_set_ref().and_then(|ws| ws.node_state(id)) {
                        // Own write decides: still carries the label?
                        Some(Some(after)) => {
                            if after.has_label(*token) {
                                return Some(Ok(id));
                            }
                        }
                        // Deleted by this transaction.
                        Some(None) => {}
                        // Untouched: the versioned index already filtered
                        // by snapshot visibility.
                        None => return Some(Ok(id)),
                    }
                }
                NodeScan::Property(token, value) => {
                    match self.tx.write_set_ref().and_then(|ws| ws.node_state(id)) {
                        Some(Some(after)) => {
                            if after.properties.get(token) == Some(value) {
                                return Some(Ok(id));
                            }
                        }
                        Some(None) => {}
                        None => return Some(Ok(id)),
                    }
                }
                NodeScan::PropertyRange { token, lo, hi } => {
                    match self.tx.write_set_ref().and_then(|ws| ws.node_state(id)) {
                        // Own write decides: after-state value still in
                        // range?
                        Some(Some(after)) => {
                            let still_in = after.properties.get(token).is_some_and(|v| {
                                crate::plan::value_key_in_bounds(&v.index_key(), lo, hi)
                            });
                            if still_in {
                                return Some(Ok(id));
                            }
                        }
                        Some(None) => {}
                        // Untouched: the range cursor already applied both
                        // snapshot visibility and the bounds.
                        None => return Some(Ok(id)),
                    }
                }
                NodeScan::Intersection {
                    token,
                    lo,
                    hi,
                    legs,
                    builds,
                } => {
                    match self.tx.write_set_ref().and_then(|ws| ws.node_state(id)) {
                        // Own write decides: after-state must satisfy the
                        // driver predicate *and* every leg.
                        Some(Some(after)) => {
                            let all_match = after.properties.get(token).is_some_and(|v| {
                                crate::plan::value_key_in_bounds(&v.index_key(), lo, hi)
                            }) && legs.iter().all(|(t, l, h)| {
                                after.properties.get(t).is_some_and(|v| {
                                    crate::plan::value_key_in_bounds(&v.index_key(), l, h)
                                })
                            });
                            if all_match {
                                return Some(Ok(id));
                            }
                        }
                        Some(None) => {}
                        // Untouched: the driver walk already applied
                        // snapshot visibility and its bounds; the legs are
                        // membership probes into sorted build sides.
                        None => {
                            if builds.iter().all(|b| b.binary_search(&id).is_ok()) {
                                return Some(Ok(id));
                            }
                            self.tx.db().metrics.record_intersection_leg_skips(1);
                        }
                    }
                }
                NodeScan::All => {
                    if !self.seen.insert(id) {
                        continue;
                    }
                    match self.tx.visible_node(id) {
                        Ok(Some(_)) => return Some(Ok(id)),
                        Ok(None) => {}
                        Err(e) => {
                            self.failed = true;
                            return Some(Err(e));
                        }
                    }
                }
            }
        }
        self.pending.next().map(Ok)
    }
}

impl Iterator for NodeIdIter<'_> {
    type Item = Result<NodeId>;

    fn next(&mut self) -> Option<Self::Item> {
        let Some(budget) = self.budget else {
            return self.next_inner();
        };
        if self.yielded >= budget {
            return None;
        }
        let item = self.next_inner();
        if matches!(item, Some(Ok(_))) {
            self.yielded += 1;
            // Record the early exit the instant the budget fills — a
            // downstream `limit` stops polling at that point, so a
            // trailing check would never run.
            if self.topk && self.yielded >= budget && !self.base_done && !self.early_exit_recorded {
                self.early_exit_recorded = true;
                self.tx.db().metrics.record_topk_early_exit();
            }
        }
        item
    }
}

impl std::fmt::Debug for NodeIdIter<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodeIdIter")
            .field("chunk", &self.chunk)
            .finish_non_exhaustive()
    }
}

// ----------------------------------------------------------------------
// Whole-graph relationship scan
// ----------------------------------------------------------------------

/// Lazy, chunked iterator over every relationship ID visible to the
/// transaction. Created by [`Transaction::all_relationships`]. Rides on
/// the same three-stage [`ScanSource`] as the whole-graph node scan.
pub struct RelIdIter<'tx> {
    tx: &'tx Transaction,
    source: ScanSource<'tx, RelScanCursor<'tx>>,
    chunk: usize,
    buf: Vec<RelationshipId>,
    pos: usize,
    seen: HashSet<RelationshipId>,
    failed: bool,
}

impl<'tx> RelIdIter<'tx> {
    pub(crate) fn new(tx: &'tx Transaction, chunk: usize) -> Self {
        let ws_keys: Vec<RelationshipId> = tx
            .write_set_ref()
            .map(|ws| ws.relationships.keys().copied().collect())
            .unwrap_or_default();
        let db = tx.db();
        RelIdIter {
            tx,
            source: ScanSource {
                store: db.store.rel_scan_cursor(chunk),
                store_done: false,
                shard: 0,
                shard_keys_fn: Box::new(move |shard, after, page, out| {
                    db.rel_cache.shard_keys_page(shard, after, page, out)
                }),
                shard_after: None,
                ws_keys: ws_keys.into_iter(),
            },
            chunk,
            buf: Vec::new(),
            pos: 0,
            seen: HashSet::new(),
            failed: false,
        }
    }
}

impl Iterator for RelIdIter<'_> {
    type Item = Result<RelationshipId>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        loop {
            if self.pos >= self.buf.len() {
                self.pos = 0;
                match self.source.refill(self.tx, self.chunk, &mut self.buf) {
                    Ok(true) => {
                        self.tx.db().metrics.record_chunk_refill(self.buf.len());
                    }
                    Ok(false) => return None,
                    Err(e) => {
                        self.failed = true;
                        return Some(Err(e));
                    }
                }
            }
            let id = self.buf[self.pos];
            self.pos += 1;
            if !self.seen.insert(id) {
                continue;
            }
            match self.tx.visible_relationship(id) {
                Ok(Some(_)) => return Some(Ok(id)),
                Ok(None) => {}
                Err(e) => {
                    self.failed = true;
                    return Some(Err(e));
                }
            }
        }
    }
}

impl std::fmt::Debug for RelIdIter<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RelIdIter")
            .field("chunk", &self.chunk)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use crate::config::DbConfig;
    use crate::db::GraphDb;
    use crate::entity::Direction;
    use crate::error::Result;
    use graphsi_storage::test_util::TempDir;

    #[test]
    fn rel_iter_is_lazy_and_complete() {
        let dir = TempDir::new("iter_rel");
        let db = GraphDb::open(dir.path(), DbConfig::default()).unwrap();
        let mut tx = db.begin();
        let hub = tx.create_node(&["Hub"], &[]).unwrap();
        let spokes: Vec<_> = (0..10)
            .map(|_| tx.create_node(&["Spoke"], &[]).unwrap())
            .collect();
        for &s in &spokes {
            tx.create_relationship(hub, s, "SPOKE", &[]).unwrap();
        }
        tx.commit().unwrap();

        let tx = db.begin();
        // Early termination: taking 3 elements must not resolve the rest.
        let reads_before = db.metrics().reads;
        let first_three: Vec<_> = tx
            .relationships(hub, Direction::Outgoing)
            .unwrap()
            .take(3)
            .collect::<Result<_>>()
            .unwrap();
        assert_eq!(first_three.len(), 3);
        let reads_for_three = db.metrics().reads - reads_before;

        let reads_before = db.metrics().reads;
        let all: Vec<_> = tx
            .relationships(hub, Direction::Outgoing)
            .unwrap()
            .collect::<Result<_>>()
            .unwrap();
        assert_eq!(all.len(), 10);
        let reads_for_all = db.metrics().reads - reads_before;
        assert!(
            reads_for_three < reads_for_all,
            "lazy iterator must resolve fewer versions when stopped early \
             ({reads_for_three} vs {reads_for_all})"
        );
    }

    #[test]
    fn rel_iter_merges_pending_writes_and_deletions() {
        let dir = TempDir::new("iter_rel_ws");
        let db = GraphDb::open(dir.path(), DbConfig::default()).unwrap();
        let mut tx = db.begin();
        let a = tx.create_node(&["N"], &[]).unwrap();
        let b = tx.create_node(&["N"], &[]).unwrap();
        let c = tx.create_node(&["N"], &[]).unwrap();
        let ab = tx.create_relationship(a, b, "T", &[]).unwrap();
        tx.create_relationship(a, c, "T", &[]).unwrap();
        tx.commit().unwrap();

        let mut tx = db.begin();
        tx.delete_relationship(ab).unwrap();
        let d = tx.create_node(&["N"], &[]).unwrap();
        let ad = tx.create_relationship(a, d, "T", &[]).unwrap();
        let ids: Vec<_> = tx
            .relationships(a, Direction::Both)
            .unwrap()
            .map(|r| r.map(|r| r.id))
            .collect::<Result<_>>()
            .unwrap();
        assert!(!ids.contains(&ab), "own deletion wins");
        assert!(ids.contains(&ad), "own pending creation visible");
        assert_eq!(ids.len(), 2);
    }

    #[test]
    fn node_id_iter_merges_write_set() {
        let dir = TempDir::new("iter_label");
        let db = GraphDb::open(dir.path(), DbConfig::default()).unwrap();
        let mut tx = db.begin();
        let keep = tx.create_node(&["P"], &[]).unwrap();
        let relabel = tx.create_node(&["P"], &[]).unwrap();
        tx.commit().unwrap();

        let mut tx = db.begin();
        tx.remove_label(relabel, "P").unwrap();
        let fresh = tx.create_node(&["P"], &[]).unwrap();
        let mut ids = tx.nodes_with_label_vec("P").unwrap();
        ids.sort();
        assert_eq!(ids, {
            let mut v = vec![keep, fresh];
            v.sort();
            v
        });
    }

    #[test]
    fn unknown_label_yields_empty_iterator() {
        let dir = TempDir::new("iter_empty");
        let db = GraphDb::open(dir.path(), DbConfig::default()).unwrap();
        let tx = db.begin();
        assert_eq!(tx.nodes_with_label("Nope").unwrap().count(), 0);
    }

    #[test]
    fn scans_work_at_every_chunk_size() {
        let dir = TempDir::new("iter_chunks");
        let db = GraphDb::open(dir.path(), DbConfig::default()).unwrap();
        let mut tx = db.begin();
        let hub = tx.create_node(&["C"], &[]).unwrap();
        for _ in 0..7 {
            let n = tx.create_node(&["C"], &[]).unwrap();
            tx.create_relationship(hub, n, "T", &[]).unwrap();
        }
        tx.commit().unwrap();

        let baseline: Vec<_> = {
            let tx = db.begin();
            tx.nodes_with_label_vec("C").unwrap()
        };
        for chunk in [1usize, 2, 3, 256] {
            let tx = db.txn().scan_chunk_size(chunk).begin();
            assert_eq!(tx.nodes_with_label_vec("C").unwrap(), baseline);
            assert_eq!(tx.all_nodes_vec().unwrap(), baseline);
            assert_eq!(tx.degree(hub, Direction::Both).unwrap(), 7);
            assert_eq!(tx.all_relationships_vec().unwrap().len(), 7);
        }
    }

    #[test]
    fn candidate_buffering_is_bounded_by_the_chunk_size() {
        let dir = TempDir::new("iter_bounded");
        // Open with a tiny chunk so even the seeding writes obey the bound.
        let db = GraphDb::open(dir.path(), DbConfig::default().with_scan_chunk_size(4)).unwrap();
        let mut tx = db.begin();
        let hub = tx.create_node(&["B"], &[]).unwrap();
        for _ in 0..100 {
            let n = tx.create_node(&["B"], &[]).unwrap();
            tx.create_relationship(hub, n, "T", &[]).unwrap();
        }
        tx.commit().unwrap();

        let tx = db.begin();
        assert_eq!(tx.nodes_with_label("B").unwrap().count(), 101);
        let mut degree = 0;
        for rel in tx.relationships(hub, Direction::Both).unwrap() {
            rel.unwrap();
            degree += 1;
        }
        assert_eq!(degree, 100);
        let metrics = db.metrics();
        assert!(metrics.chunk_refills > 0, "cursors must have refilled");
        assert!(
            metrics.candidate_buffer_peak <= 4,
            "a 100-way scan must never buffer more than one chunk \
             (peak {} > 4)",
            metrics.candidate_buffer_peak
        );
    }
}
