//! The query planner: turns the declarative parts of a composed
//! [`crate::QueryBuilder`] pipeline into an explicit [`Plan`].
//!
//! PR 5 ran this logic inline in `query.rs`; extracting it gives the plan
//! an inspectable shape — a [`SourcePlan`] (index range, label scan,
//! sorted-posting intersection, whole-graph decode fallback, ...) plus the
//! residual stage list — and room for the three shapes this module adds:
//!
//! * **ordered streaming**: `order_by`/`top_k` terminals ride the range
//!   cursor's sorted `BTreeMap` key walk (ascending or descending) with no
//!   sort buffer, early-exiting after the top-k budget;
//! * **multi-predicate intersection**: two or more pushdown-able
//!   predicates compile to one driving range cursor plus sorted posting
//!   membership legs instead of an index scan + decode-filter chain, the
//!   driver chosen by live-count cardinality estimates;
//! * **decode fallback**: whatever the index cannot serve (opaque
//!   predicates, orders broken by expansion or pending node writes) runs
//!   as per-candidate decode stages or a buffered sort, exactly as before.
//!
//! The planner only consults **live** posting counts
//! ([`graphsi_index::VersionedPostingIndex::postings_estimate`] excludes
//! tombstoned churn), so GC-heavy workloads no longer steer plans wrong.

use std::ops::Bound;

use graphsi_storage::{NodeId, PropertyValue, ValueKey};

use crate::entity::Direction;
use crate::error::{DbError, Result};
use crate::transaction::Transaction;

/// Shared semantics of a compiled range predicate: `true` if the value
/// key lies inside the bounds. Range predicates are **type-homogeneous**:
/// a typed bound only matches values of its own type, which is exactly
/// the key interval [`graphsi_index::composite_range_bounds`] confines an
/// index range scan to — so the decode path and the pushdown path agree
/// on every input.
pub(crate) fn value_key_in_bounds(
    k: &ValueKey,
    lo: &Bound<ValueKey>,
    hi: &Bound<ValueKey>,
) -> bool {
    let type_ok = |b: &Bound<ValueKey>| match b {
        Bound::Included(x) | Bound::Excluded(x) => k.same_type(x),
        Bound::Unbounded => true,
    };
    if !type_ok(lo) || !type_ok(hi) {
        return false;
    }
    let above = match lo {
        Bound::Included(x) => k >= x,
        Bound::Excluded(x) => k > x,
        Bound::Unbounded => true,
    };
    let below = match hi {
        Bound::Included(x) => k <= x,
        Bound::Excluded(x) => k < x,
        Bound::Unbounded => true,
    };
    above && below
}

/// Maps user-facing `PropertyValue` range bounds onto the index's
/// `ValueKey` bound pair — shared by the query builder's declarative
/// predicates and the transaction-level range scan.
pub(crate) fn value_range_key_bounds(
    range: &impl std::ops::RangeBounds<PropertyValue>,
) -> (Bound<ValueKey>, Bound<ValueKey>) {
    let key_of = |b: Bound<&PropertyValue>| match b {
        Bound::Included(v) => Bound::Included(v.index_key()),
        Bound::Excluded(v) => Bound::Excluded(v.index_key()),
        Bound::Unbounded => Bound::Unbounded,
    };
    (key_of(range.start_bound()), key_of(range.end_bound()))
}

/// A declarative property predicate (equality is the degenerate
/// `Included(v) ..= Included(v)` range) — the unit the planner decides
/// index-vs-decode for.
#[derive(Clone, Debug)]
pub(crate) struct RangePred {
    pub(crate) name: String,
    pub(crate) lo: Bound<ValueKey>,
    pub(crate) hi: Bound<ValueKey>,
}

impl RangePred {
    pub(crate) fn from_range(name: &str, range: impl std::ops::RangeBounds<PropertyValue>) -> Self {
        let (lo, hi) = value_range_key_bounds(&range);
        RangePred {
            name: name.to_owned(),
            lo,
            hi,
        }
    }

    pub(crate) fn equality(name: &str, value: &PropertyValue) -> Self {
        let key = value.index_key();
        RangePred {
            name: name.to_owned(),
            lo: Bound::Included(key.clone()),
            hi: Bound::Included(key),
        }
    }

    /// The full-open predicate over `name` — the ordered walk an
    /// `order_by` compiles to when the pipeline carries no range of its
    /// own. Not a user predicate: it never counts as a pushdown.
    fn unbounded(name: &str) -> Self {
        RangePred {
            name: name.to_owned(),
            lo: Bound::Unbounded,
            hi: Bound::Unbounded,
        }
    }

    fn is_unbounded(&self) -> bool {
        matches!((&self.lo, &self.hi), (Bound::Unbounded, Bound::Unbounded))
    }

    /// `false` when no value can ever satisfy the predicate (mixed-type
    /// or inverted bounds): the planner compiles the whole pipeline to an
    /// empty stream instead of scanning anything.
    pub(crate) fn satisfiable(&self) -> bool {
        match (&self.lo, &self.hi) {
            (Bound::Unbounded, _) | (_, Bound::Unbounded) => true,
            (Bound::Included(a), Bound::Included(b)) => a.same_type(b) && a <= b,
            (Bound::Included(a), Bound::Excluded(b))
            | (Bound::Excluded(a), Bound::Included(b))
            | (Bound::Excluded(a), Bound::Excluded(b)) => a.same_type(b) && a < b,
        }
    }

    pub(crate) fn matches(&self, value: &PropertyValue) -> bool {
        value_key_in_bounds(&value.index_key(), &self.lo, &self.hi)
    }
}

/// An `order_by` / `top_k` terminal: order the final stream by `name`
/// (rows lacking the key are dropped — the same semantics as an index
/// range over it), optionally truncated to the `limit` smallest/largest.
#[derive(Clone, Debug)]
pub(crate) struct OrderSpec {
    pub(crate) name: String,
    pub(crate) descending: bool,
    pub(crate) limit: Option<usize>,
}

/// A boxed snapshot predicate over one node, as stored by filter stages.
pub(crate) type NodePredicate<'tx> = Box<dyn Fn(&Transaction, NodeId) -> Result<bool> + 'tx>;

/// One pipeline stage.
pub(crate) enum Stage<'tx> {
    /// Declarative property predicate — plannable (index or decode).
    Range(RangePred),
    /// Declarative predicate over the **relationship** that produced the
    /// row. Runs as a decode filter today; the relationship property index
    /// already has the sorted key dimension, so this is the planner hook
    /// for rel-side range postings (ROADMAP follow-on).
    RelRange(RangePred),
    /// Opaque property predicate — always the decode path (but only the
    /// named key is ever materialised per candidate).
    FilterProperty(String, Box<dyn Fn(&PropertyValue) -> bool + 'tx>),
    FilterLabel(String),
    Filter(NodePredicate<'tx>),
    Expand {
        direction: Direction,
        rel_type: Option<String>,
    },
    Distinct,
    Limit(usize),
}

/// Where a compiled pipeline draws its initial node stream from — the
/// explicit plan enum the planner produces. The builder composes only the
/// plain variants (`AllNodes`, `Label`, `PropertyEq`, an unordered
/// `IndexRange`, `Fixed`); `Empty`, `Intersection` and the
/// ordered/descending flags are planner output.
pub(crate) enum SourcePlan {
    /// Nothing can match (unsatisfiable predicate, unknown name): the
    /// whole pipeline compiles to a cheap empty stream.
    Empty,
    /// Every node visible to the transaction (the default).
    AllNodes,
    /// Index-backed label scan.
    Label(String),
    /// Index-backed property equality scan (posting list).
    PropertyEq(String, PropertyValue),
    /// Index-backed property range scan over the sorted key dimension.
    /// `ordered` marks a served `order_by`: the walk itself *is* the sort
    /// (`descending` picks the reverse-direction cursor).
    IndexRange {
        pred: RangePred,
        descending: bool,
        ordered: bool,
    },
    /// Sorted-posting merge-intersect: the `driver` range cursor streams
    /// candidates, each probed against the materialised postings of every
    /// leg — zero per-candidate property decoding.
    Intersection {
        driver: RangePred,
        legs: Vec<RangePred>,
        descending: bool,
        ordered: bool,
    },
    /// An explicit start set (visibility-checked when streamed).
    Fixed(Vec<NodeId>),
}

/// Output of [`plan`]: the chosen source, the residual stages, and how
/// ordering/limits execute.
pub(crate) struct Plan<'tx> {
    pub(crate) source: SourcePlan,
    pub(crate) stages: Vec<Stage<'tx>>,
    /// Set when a requested order could not ride the index: the terminal
    /// buffers all rows, decodes the order key per row and sorts.
    pub(crate) sort_fallback: Option<OrderSpec>,
    /// Remaining-row budget threaded into the source so its cursor stops
    /// paging once the pipeline owes no more rows (leading `limit`s and
    /// served top-k).
    pub(crate) source_budget: Option<usize>,
    /// `true` when the budget realises a served top-k: exhausting it
    /// before the source runs dry records a `topk_early_exits`.
    pub(crate) topk: bool,
}

/// Cardinality estimates stop counting range keys here: past this many
/// live postings every leg is "large" and ratios no longer matter.
const EST_CAP: u64 = 4096;

/// A predicate joins an intersection as a membership leg only while its
/// estimate is within this factor of the driver's — materialising a leg
/// orders of magnitude wider than the driver costs more than decoding.
const LEG_FACTOR: u64 = 8;

/// Runs the planner: pushdown demotion/promotion, multi-predicate
/// intersection, order serving, dead-pipeline short-circuits, source
/// budgets — and records which path each predicate compiled to in the
/// database metrics.
pub(crate) fn plan<'tx>(
    db: &crate::db::GraphDbInner,
    mut source: SourcePlan,
    mut stages: Vec<Stage<'tx>>,
    order: Option<OrderSpec>,
    pushdown: bool,
    intersect: bool,
    has_node_writes: bool,
) -> Result<Plan<'tx>> {
    let key_known = |name: &str| db.store.tokens().existing_property_key(name).is_some();
    // `true` if the predicate can execute inside the index: its key token
    // exists (an unknown key cannot match anything) and the bounds are
    // satisfiable.
    let indexable = |pred: &RangePred| pred.satisfiable() && key_known(&pred.name);
    let estimate = |pred: &RangePred, cap: u64| -> u64 {
        match db.store.tokens().existing_property_key(&pred.name) {
            Some(token) => db.indexes.node_properties.range_postings_estimate(
                token,
                graphsi_index::bound_as_ref(&pred.lo),
                graphsi_index::bound_as_ref(&pred.hi),
                cap,
            ),
            None => 0,
        }
    };

    // ---- Pushdown-disabled demotion ------------------------------------
    if !pushdown {
        // Decode baseline: demote index-executed property predicates
        // (range sources and equality sources alike) back to a
        // whole-graph scan with a decode-filter stage.
        match source {
            SourcePlan::IndexRange { pred, .. } => {
                stages.insert(0, Stage::Range(pred));
                source = SourcePlan::AllNodes;
            }
            SourcePlan::PropertyEq(name, value) => {
                stages.insert(0, Stage::Range(RangePred::equality(&name, &value)));
                source = SourcePlan::AllNodes;
            }
            other => source = other,
        }
    } else if let Some(Stage::Range(head)) = stages.first() {
        // A leading declarative predicate can swap into the source.
        let promote = match &source {
            SourcePlan::AllNodes => indexable(head),
            SourcePlan::Label(label) => {
                // Cardinality rule: scan the smaller index side, check
                // the other per element. Both estimates count only live
                // postings, so tombstone churn cannot skew the choice.
                match db.store.tokens().existing_label(label) {
                    Some(ltok) if indexable(head) => {
                        let label_est = db.indexes.labels.postings_estimate(ltok);
                        // The label estimate caps the range walk: once
                        // the range is known to be at least as large,
                        // counting further keys cannot change the
                        // decision.
                        estimate(head, label_est) < label_est
                    }
                    _ => false,
                }
            }
            _ => false,
        };
        if promote {
            let Stage::Range(pred) = stages.remove(0) else {
                return Err(DbError::Internal(
                    "promoted head stage is no longer a range predicate".to_owned(),
                ));
            };
            let old = std::mem::replace(
                &mut source,
                SourcePlan::IndexRange {
                    pred,
                    descending: false,
                    ordered: false,
                },
            );
            if let SourcePlan::Label(label) = old {
                stages.insert(0, Stage::FilterLabel(label));
            }
        }
    }

    // ---- Multi-predicate intersection ----------------------------------
    if pushdown && intersect {
        let (src_pred, replaceable) = match &source {
            SourcePlan::IndexRange { pred, .. } => (Some(pred.clone()), true),
            SourcePlan::PropertyEq(name, value) => {
                // Equality via `index_key` is exactly the degenerate
                // one-key range, so the swap preserves semantics.
                (Some(RangePred::equality(name, value)), true)
            }
            SourcePlan::AllNodes => (None, true),
            _ => (None, false),
        };
        // Range stages up to the first Expand (different row set) or
        // Limit (cuts by count — a filter must not cross it) commute with
        // every other filter and may execute at the source instead.
        let cut = stages
            .iter()
            .position(|s| matches!(s, Stage::Expand { .. } | Stage::Limit(_)))
            .unwrap_or(stages.len());
        let absorbable: Vec<usize> = (0..cut)
            .filter(|&i| matches!(&stages[i], Stage::Range(p) if indexable(p)))
            .collect();
        let pool_len = absorbable.len() + usize::from(src_pred.as_ref().is_some_and(indexable));
        if replaceable && pool_len >= 2 {
            struct Cand {
                stage: Option<usize>,
                pred: RangePred,
                est: u64,
            }
            let mut pool: Vec<Cand> = Vec::with_capacity(pool_len);
            if let Some(p) = src_pred.filter(indexable) {
                pool.push(Cand {
                    stage: None,
                    est: estimate(&p, EST_CAP),
                    pred: p,
                });
            }
            for &i in &absorbable {
                let Stage::Range(p) = &stages[i] else {
                    unreachable!("absorbable index selected a non-range stage")
                };
                pool.push(Cand {
                    stage: Some(i),
                    pred: p.clone(),
                    est: estimate(p, EST_CAP),
                });
            }
            // Drive from the narrowest predicate; every other predicate
            // within LEG_FACTOR of it becomes a membership leg, the rest
            // stay decode filters.
            let di = pool
                .iter()
                .enumerate()
                .min_by_key(|(_, c)| c.est)
                .map(|(i, _)| i)
                .unwrap_or(0);
            let driver = pool.swap_remove(di);
            let cap = driver.est.max(1).saturating_mul(LEG_FACTOR);
            let mut legs: Vec<RangePred> = Vec::new();
            let mut remove: Vec<usize> = driver.stage.into_iter().collect();
            // Predicates that neither drive nor join (the gate): a stage
            // stays where it is; a source predicate demotes to a stage.
            let mut demoted: Vec<RangePred> = Vec::new();
            for c in pool {
                if c.est <= cap {
                    if let Some(i) = c.stage {
                        remove.push(i);
                    }
                    legs.push(c.pred);
                } else if c.stage.is_none() {
                    demoted.push(c.pred);
                }
            }
            remove.sort_unstable();
            for i in remove.into_iter().rev() {
                stages.remove(i);
            }
            for p in demoted {
                stages.insert(0, Stage::Range(p));
            }
            source = if legs.is_empty() {
                SourcePlan::IndexRange {
                    pred: driver.pred,
                    descending: false,
                    ordered: false,
                }
            } else {
                SourcePlan::Intersection {
                    driver: driver.pred,
                    legs,
                    descending: false,
                    ordered: false,
                }
            };
        }
    }

    // ---- Order serving -------------------------------------------------
    // A served order rides the range cursor's sorted key walk. That
    // requires pushdown, a source whose walk *is* the requested order, no
    // expansion (it re-keys the row set), and no pending node writes (the
    // write-set merge appends out of key order).
    let mut sort_fallback: Option<OrderSpec> = None;
    let mut served = false;
    if let Some(ord) = &order {
        if key_known(&ord.name) {
            let no_expand = !stages.iter().any(|s| matches!(s, Stage::Expand { .. }));
            if pushdown && no_expand && !has_node_writes {
                match &mut source {
                    SourcePlan::IndexRange {
                        pred,
                        descending,
                        ordered,
                    } if pred.name == ord.name => {
                        *descending = ord.descending;
                        *ordered = true;
                        served = true;
                    }
                    SourcePlan::AllNodes => {
                        // Rows lacking the order key are dropped, so the
                        // full-open walk over the key *is* the scan.
                        source = SourcePlan::IndexRange {
                            pred: RangePred::unbounded(&ord.name),
                            descending: ord.descending,
                            ordered: true,
                        };
                        served = true;
                    }
                    SourcePlan::PropertyEq(name, _) if *name == ord.name => {
                        // Every row shares the key's single value:
                        // trivially ordered.
                        served = true;
                    }
                    SourcePlan::Intersection {
                        driver,
                        legs,
                        descending,
                        ordered,
                    } => {
                        if driver.name == ord.name {
                            *descending = ord.descending;
                            *ordered = true;
                            served = true;
                        } else if let Some(pos) = legs.iter().position(|l| l.name == ord.name) {
                            // The order key's leg must drive; the old
                            // driver joins the membership legs.
                            let new_driver = legs.remove(pos);
                            legs.push(std::mem::replace(driver, new_driver));
                            *descending = ord.descending;
                            *ordered = true;
                            served = true;
                        }
                    }
                    _ => {}
                }
            }
            if served {
                if let Some(n) = ord.limit {
                    stages.push(Stage::Limit(n));
                }
            } else {
                sort_fallback = Some(ord.clone());
            }
        }
        // Unknown order key: handled by the dead check below (no node can
        // carry a never-interned key, and ordered rows must carry it).
    }

    // ---- Unsatisfiable / unknown-name short circuit --------------------
    // A predicate whose key was never interned (or whose bounds are
    // unsatisfiable) passes nothing, so the entire pipeline is a cheap
    // empty stream — no decode pass that filters everything out.
    let dead_stage = stages.iter().any(|stage| match stage {
        Stage::Range(pred) | Stage::RelRange(pred) => !pred.satisfiable() || !key_known(&pred.name),
        Stage::FilterProperty(name, _) => !key_known(name),
        Stage::FilterLabel(label) => db.store.tokens().existing_label(label).is_none(),
        _ => false,
    });
    let dead_source = match &source {
        SourcePlan::Empty => true,
        SourcePlan::IndexRange { pred, .. } => !indexable(pred),
        SourcePlan::Intersection { driver, legs, .. } => {
            !indexable(driver) || !legs.iter().all(indexable)
        }
        _ => false,
    };
    let dead_order = order.as_ref().is_some_and(|o| !key_known(&o.name));
    if dead_stage || dead_source || dead_order {
        return Ok(Plan {
            source: SourcePlan::Empty,
            stages: Vec::new(),
            sort_fallback: None,
            source_budget: None,
            topk: false,
        });
    }

    // ---- Source budget (limit pushdown) --------------------------------
    // Leading Limit stages truncate the source stream directly, so their
    // minimum bounds how many rows the source cursor ever needs to page —
    // including the implicit Limit a served top-k appended. A sort
    // fallback consumes everything, so no budget applies.
    let mut source_budget: Option<usize> = None;
    if sort_fallback.is_none() {
        for s in &stages {
            match s {
                Stage::Limit(n) => {
                    source_budget = Some(source_budget.map_or(*n, |m| m.min(*n)));
                }
                _ => break,
            }
        }
    }
    let topk =
        source_budget.is_some() && served && order.as_ref().is_some_and(|o| o.limit.is_some());

    // ---- Metrics: which path did each predicate compile to? ------------
    match &source {
        SourcePlan::PropertyEq(name, _) if key_known(name) => {
            db.metrics.record_predicate_pushdown();
        }
        SourcePlan::IndexRange { pred, .. } if !pred.is_unbounded() => {
            db.metrics.record_predicate_pushdown();
        }
        SourcePlan::Intersection { driver, legs, .. } => {
            db.metrics.record_intersection_pushdown();
            if !driver.is_unbounded() {
                db.metrics.record_predicate_pushdown();
            }
            for _ in legs {
                db.metrics.record_predicate_pushdown();
            }
        }
        _ => {}
    }
    if served {
        db.metrics.record_ordered_index_stream();
    }
    for stage in &stages {
        if matches!(
            stage,
            Stage::Range(_) | Stage::RelRange(_) | Stage::FilterProperty(..)
        ) {
            db.metrics.record_decode_filter_fallback();
        }
    }

    Ok(Plan {
        source,
        stages,
        sort_fallback,
        source_budget,
        topk,
    })
}
