//! Graph traversal algorithms on top of a transaction's snapshot.
//!
//! These are the query-side operations the paper's introduction motivates:
//! multi-step graph algorithms whose consistency depends on the isolation
//! level. Under read committed a path observed in one step "might not exist
//! when trying to go through it later in the same transaction"; under
//! snapshot isolation every step sees the same snapshot.
//!
//! Since the streaming-query redesign, all of them are thin shims over the
//! [`Transaction::query`] expansion pipeline: each visited node is
//! expanded through the chunked, GC-safe cursors, so a traversal's memory
//! footprint is O(frontier) — the per-node sort that keeps visit orders
//! deterministic touches one node's neighbours at a time, never a whole
//! candidate list.

use std::collections::{HashMap, HashSet, VecDeque};

use graphsi_storage::NodeId;

use crate::entity::Direction;
use crate::error::Result;
use crate::transaction::Transaction;

/// One sorted expansion step through the streaming query pipeline: the
/// deduplicated neighbours of `node`, ascending. Memory is O(degree of
/// `node`), the frontier unit every traversal below works in.
fn expand_sorted(tx: &Transaction, node: NodeId, direction: Direction) -> Result<Vec<NodeId>> {
    let mut out = tx
        .query()
        .start_nodes([node])
        .expand(direction, None)
        .distinct()
        .ids()?;
    out.sort();
    Ok(out)
}

/// Breadth-first traversal from `start`, up to `max_depth` hops, returning
/// the visited nodes in visit order (including `start`).
pub fn bfs(tx: &Transaction, start: NodeId, max_depth: usize) -> Result<Vec<NodeId>> {
    let mut visited: HashSet<NodeId> = HashSet::new();
    let mut order = Vec::new();
    let mut queue: VecDeque<(NodeId, usize)> = VecDeque::new();
    if !tx.node_exists(start)? {
        return Ok(order);
    }
    visited.insert(start);
    order.push(start);
    queue.push_back((start, 0));
    while let Some((node, depth)) = queue.pop_front() {
        if depth >= max_depth {
            continue;
        }
        // Sorted expansion keeps the visit order deterministic.
        for neighbor in expand_sorted(tx, node, Direction::Both)? {
            if visited.insert(neighbor) {
                order.push(neighbor);
                queue.push_back((neighbor, depth + 1));
            }
        }
    }
    Ok(order)
}

/// Depth-first traversal from `start`, up to `max_depth` hops, returning
/// the visited nodes in visit order.
pub fn dfs(tx: &Transaction, start: NodeId, max_depth: usize) -> Result<Vec<NodeId>> {
    let mut visited: HashSet<NodeId> = HashSet::new();
    let mut order = Vec::new();
    let mut stack: Vec<(NodeId, usize)> = Vec::new();
    if !tx.node_exists(start)? {
        return Ok(order);
    }
    stack.push((start, 0));
    while let Some((node, depth)) = stack.pop() {
        if !visited.insert(node) {
            continue;
        }
        order.push(node);
        if depth >= max_depth {
            continue;
        }
        let mut neighbors = expand_sorted(tx, node, Direction::Both)?;
        // Reverse so that the smallest-ID neighbour is visited first.
        neighbors.reverse();
        for neighbor in neighbors {
            if !visited.contains(&neighbor) {
                stack.push((neighbor, depth + 1));
            }
        }
    }
    Ok(order)
}

/// Unweighted shortest path between two nodes (sequence of node IDs,
/// including both endpoints), or `None` if no path exists within
/// `max_depth` hops.
pub fn shortest_path(
    tx: &Transaction,
    from: NodeId,
    to: NodeId,
    max_depth: usize,
) -> Result<Option<Vec<NodeId>>> {
    if !tx.node_exists(from)? || !tx.node_exists(to)? {
        return Ok(None);
    }
    if from == to {
        return Ok(Some(vec![from]));
    }
    let mut parent: HashMap<NodeId, NodeId> = HashMap::new();
    let mut queue: VecDeque<(NodeId, usize)> = VecDeque::new();
    queue.push_back((from, 0));
    parent.insert(from, from);
    while let Some((node, depth)) = queue.pop_front() {
        if depth >= max_depth {
            continue;
        }
        for neighbor in expand_sorted(tx, node, Direction::Both)? {
            if parent.contains_key(&neighbor) {
                continue;
            }
            parent.insert(neighbor, node);
            if neighbor == to {
                // Reconstruct the path.
                let mut path = vec![to];
                let mut current = to;
                while current != from {
                    current = parent[&current];
                    path.push(current);
                }
                path.reverse();
                return Ok(Some(path));
            }
            queue.push_back((neighbor, depth + 1));
        }
    }
    Ok(None)
}

/// The two-step traversal of the paper's motivating example: collect the
/// neighbours of `start` (step one), then expand each of them again (step
/// two), returning the set of nodes at distance exactly two ("friends of
/// friends"). Under read committed the two steps may observe different
/// graphs.
pub fn friends_of_friends(tx: &Transaction, start: NodeId) -> Result<Vec<NodeId>> {
    // The first hop is consumed twice (membership + expansion), so it is
    // collected — it is exactly the frontier. The second hop streams
    // through the query pipeline; re-reading the frontier as a start set
    // re-checks each friend's visibility, which is where read committed
    // exhibits the anomaly experiment E1 counts (a friend observed in step
    // one may have vanished by step two).
    let first_hop = tx
        .query()
        .start_nodes([start])
        .expand(Direction::Both, None)
        .distinct()
        .ids()?;
    let first_set: HashSet<NodeId> = first_hop.iter().copied().collect();
    let mut result: HashSet<NodeId> = HashSet::new();
    for fof in tx
        .query()
        .start_nodes(first_hop)
        .expand(Direction::Both, None)
        .stream()?
    {
        let fof = fof?;
        if fof != start && !first_set.contains(&fof) {
            result.insert(fof);
        }
    }
    let mut out: Vec<NodeId> = result.into_iter().collect();
    out.sort();
    Ok(out)
}

/// Walks the path `start -> ... -> end` twice and reports whether both
/// walks observed the same sequence of neighbour sets. Returns
/// `(consistent, first_walk, second_walk)`. Used by the unrepeatable-read
/// probe (experiment E1).
pub fn double_walk(
    tx: &Transaction,
    start: NodeId,
    depth: usize,
) -> Result<(bool, Vec<NodeId>, Vec<NodeId>)> {
    let first = bfs(tx, start, depth)?;
    let second = bfs(tx, start, depth)?;
    Ok((first == second, first, second))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DbConfig;
    use crate::db::GraphDb;
    use graphsi_storage::test_util::TempDir;

    /// Builds a path graph a0 - a1 - ... - a5 plus a disconnected island,
    /// returning (db guard dir, db, path nodes, island node).
    fn path_graph() -> (TempDir, GraphDb, Vec<NodeId>, NodeId) {
        let dir = TempDir::new("traversal");
        let db = GraphDb::open(dir.path(), DbConfig::default()).unwrap();
        let mut tx = db.begin();
        let nodes: Vec<NodeId> = (0..6)
            .map(|_| tx.create_node(&["P"], &[]).unwrap())
            .collect();
        for pair in nodes.windows(2) {
            tx.create_relationship(pair[0], pair[1], "NEXT", &[])
                .unwrap();
        }
        let island = tx.create_node(&["Island"], &[]).unwrap();
        tx.commit().unwrap();
        (dir, db, nodes, island)
    }

    #[test]
    fn bfs_visits_by_distance_and_respects_depth() {
        let (_dir, db, nodes, _island) = path_graph();
        let tx = db.begin();
        let all = bfs(&tx, nodes[0], 10).unwrap();
        assert_eq!(all, nodes, "a path graph is visited in order");
        let limited = bfs(&tx, nodes[0], 2).unwrap();
        assert_eq!(limited, nodes[..3].to_vec());
        let from_middle = bfs(&tx, nodes[3], 1).unwrap();
        assert_eq!(from_middle.len(), 3);
    }

    #[test]
    fn bfs_of_missing_node_is_empty() {
        let (_dir, db, _nodes, _island) = path_graph();
        let tx = db.begin();
        assert!(bfs(&tx, NodeId::new(9999), 3).unwrap().is_empty());
        assert!(dfs(&tx, NodeId::new(9999), 3).unwrap().is_empty());
    }

    #[test]
    fn dfs_visits_every_reachable_node_once() {
        let (_dir, db, nodes, island) = path_graph();
        let tx = db.begin();
        let visited = dfs(&tx, nodes[0], 10).unwrap();
        assert_eq!(visited.len(), nodes.len());
        assert!(!visited.contains(&island));
        let mut dedup = visited.clone();
        dedup.dedup();
        assert_eq!(dedup, visited);
    }

    #[test]
    fn shortest_path_on_a_path_graph() {
        let (_dir, db, nodes, island) = path_graph();
        let tx = db.begin();
        let path = shortest_path(&tx, nodes[0], nodes[4], 10).unwrap().unwrap();
        assert_eq!(path, nodes[..5].to_vec());
        assert_eq!(
            shortest_path(&tx, nodes[2], nodes[2], 10).unwrap(),
            Some(vec![nodes[2]])
        );
        // Unreachable within the depth bound or at all.
        assert_eq!(shortest_path(&tx, nodes[0], nodes[5], 2).unwrap(), None);
        assert_eq!(shortest_path(&tx, nodes[0], island, 10).unwrap(), None);
    }

    #[test]
    fn shortest_path_prefers_the_shortcut() {
        let (_dir, db, nodes, _island) = path_graph();
        // Add a shortcut 0 -> 4.
        let mut tx = db.begin();
        tx.create_relationship(nodes[0], nodes[4], "NEXT", &[])
            .unwrap();
        tx.commit().unwrap();
        let tx = db.begin();
        let path = shortest_path(&tx, nodes[0], nodes[5], 10).unwrap().unwrap();
        assert_eq!(path, vec![nodes[0], nodes[4], nodes[5]]);
    }

    #[test]
    fn friends_of_friends_excludes_self_and_direct_friends() {
        let (_dir, db, nodes, _island) = path_graph();
        let tx = db.begin();
        // For the middle of a path, fof = the nodes two hops away.
        let fof = friends_of_friends(&tx, nodes[2]).unwrap();
        assert_eq!(fof, vec![nodes[0], nodes[4]]);
    }

    #[test]
    fn double_walk_is_consistent_within_a_snapshot() {
        let (_dir, db, nodes, _island) = path_graph();
        let tx = db.begin();
        let (consistent, first, second) = double_walk(&tx, nodes[0], 10).unwrap();
        assert!(consistent);
        assert_eq!(first, second);
    }

    #[test]
    fn traversal_sees_own_pending_edges() {
        let (_dir, db, nodes, island) = path_graph();
        let mut tx = db.begin();
        tx.create_relationship(nodes[5], island, "BRIDGE", &[])
            .unwrap();
        let walk = bfs(&tx, nodes[0], 10).unwrap();
        assert!(
            walk.contains(&island),
            "pending edge reachable by the writer"
        );
        drop(tx);
        let other = db.begin();
        let walk = bfs(&other, nodes[0], 10).unwrap();
        assert!(!walk.contains(&island), "rolled-back edge is gone");
    }
}
