//! Transactions: the user-facing unit of work.
//!
//! A [`Transaction`] buffers its writes privately (read-your-own-writes),
//! reads either a fixed snapshot (snapshot isolation) or the latest
//! committed state under short read locks (read committed), and installs
//! its changes atomically at commit through the database's commit pipeline.

use std::collections::{BTreeMap, HashSet};
use std::sync::Arc;

use graphsi_storage::{
    LabelToken, NodeId, PropertyKeyToken, PropertyValue, RelTypeToken, RelationshipId,
};
use graphsi_txn::{check_at_update, LockKey, LockMode, Timestamp, TxnId, UpdateCheck};

use crate::config::IsolationLevel;
use crate::db::{GraphDb, RESERVED_PREFIX};
use crate::entity::{Direction, Node, NodeData, Relationship, RelationshipData};
use crate::error::{DbError, Result};
use crate::write_set::WriteSet;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum TxnState {
    Active,
    Committed,
    RolledBack,
}

/// A transaction over a [`GraphDb`].
///
/// Dropping an active transaction rolls it back.
pub struct Transaction<'db> {
    db: &'db GraphDb,
    id: TxnId,
    start_ts: Timestamp,
    isolation: IsolationLevel,
    state: TxnState,
    write_set: WriteSet,
}

impl<'db> Transaction<'db> {
    pub(crate) fn new(
        db: &'db GraphDb,
        id: TxnId,
        start_ts: Timestamp,
        isolation: IsolationLevel,
    ) -> Self {
        Transaction {
            db,
            id,
            start_ts,
            isolation,
            state: TxnState::Active,
            write_set: WriteSet::new(),
        }
    }

    /// The transaction's ID.
    pub fn id(&self) -> TxnId {
        self.id
    }

    /// The transaction's start timestamp (its snapshot under snapshot
    /// isolation).
    pub fn start_timestamp(&self) -> Timestamp {
        self.start_ts
    }

    /// The isolation level this transaction runs under.
    pub fn isolation(&self) -> IsolationLevel {
        self.isolation
    }

    /// Returns `true` while the transaction can still be used.
    pub fn is_active(&self) -> bool {
        self.state == TxnState::Active
    }

    /// Number of entities with pending (uncommitted) changes.
    pub fn pending_writes(&self) -> usize {
        self.write_set.len()
    }

    /// The timestamp reads are served at: the fixed start timestamp under
    /// snapshot isolation, the latest committed timestamp under read
    /// committed (which is exactly why read committed exhibits unrepeatable
    /// reads and phantoms).
    pub fn read_timestamp(&self) -> Timestamp {
        match self.isolation {
            IsolationLevel::SnapshotIsolation => self.start_ts,
            IsolationLevel::ReadCommitted => self.db.visible_timestamp(),
        }
    }

    // ------------------------------------------------------------------
    // Lifecycle
    // ------------------------------------------------------------------

    /// Commits the transaction, returning its commit timestamp (or the
    /// start timestamp for read-only transactions).
    pub fn commit(mut self) -> Result<Timestamp> {
        self.ensure_active()?;
        let result = self
            .db
            .commit_transaction(self.id, self.start_ts, &self.write_set);
        self.state = match result {
            Ok(_) => TxnState::Committed,
            Err(_) => TxnState::RolledBack,
        };
        result
    }

    /// Rolls the transaction back, discarding all pending changes.
    pub fn rollback(mut self) {
        if self.state == TxnState::Active {
            self.db.abort_transaction(self.id, false);
            self.state = TxnState::RolledBack;
        }
    }

    fn ensure_active(&self) -> Result<()> {
        if self.state == TxnState::Active {
            Ok(())
        } else {
            Err(DbError::TransactionClosed)
        }
    }

    /// Aborts the transaction because of a conflict and returns the error.
    fn conflict_abort(&mut self, err: DbError) -> DbError {
        self.db.abort_transaction(self.id, true);
        self.state = TxnState::RolledBack;
        err
    }

    // ------------------------------------------------------------------
    // Locking helpers
    // ------------------------------------------------------------------

    /// Acquires the long write lock on `key`, applying the configured
    /// write-write conflict strategy. Under snapshot isolation losing the
    /// first-updater race aborts the transaction; under read committed the
    /// acquisition blocks (with deadlock detection).
    ///
    /// Note: staleness of the snapshot (a concurrent writer already
    /// committed a newer version) is checked *after* the lock is held — see
    /// [`Transaction::ensure_node_unchanged`] — because checking before
    /// acquiring the lock races with a concurrent committer releasing it.
    fn write_lock(&mut self, key: LockKey, newest_committed: Option<Timestamp>) -> Result<()> {
        match self.isolation {
            IsolationLevel::ReadCommitted => {
                let acquired = self.db.locks.acquire(key, LockMode::Exclusive, self.id);
                match acquired {
                    Ok(()) => Ok(()),
                    Err(e) => Err(self.conflict_abort(e.into())),
                }
            }
            IsolationLevel::SnapshotIsolation => {
                match check_at_update(
                    self.db.config.conflict_strategy,
                    &self.db.locks,
                    key,
                    self.id,
                    self.start_ts,
                    newest_committed,
                ) {
                    UpdateCheck::Proceed => Ok(()),
                    UpdateCheck::Abort(e) => Err(self.conflict_abort(e.into())),
                }
            }
        }
    }

    /// After the write lock on a node is held: abort if a concurrent
    /// transaction committed a version newer than our snapshot (the
    /// first-updater-wins write rule). Must run *after* lock acquisition so
    /// that a competitor finishing its commit (install + lock release)
    /// cannot slip in between the check and the lock.
    fn ensure_node_unchanged(&mut self, id: NodeId) -> Result<()> {
        if self.isolation != IsolationLevel::SnapshotIsolation
            || self.db.config.conflict_strategy != graphsi_txn::ConflictStrategy::FirstUpdaterWins
        {
            // Read committed serialises through blocking locks; the
            // first-committer-wins strategy validates at commit time.
            return Ok(());
        }
        if let Some(newest) = self.db.newest_node_commit_ts(id)? {
            if !newest.visible_to(self.start_ts) {
                let err = graphsi_txn::TxnError::WriteWriteConflict {
                    key: LockKey::node(id.raw()),
                    other: None,
                };
                return Err(self.conflict_abort(err.into()));
            }
        }
        Ok(())
    }

    /// Relationship counterpart of [`Transaction::ensure_node_unchanged`].
    fn ensure_relationship_unchanged(&mut self, id: RelationshipId) -> Result<()> {
        if self.isolation != IsolationLevel::SnapshotIsolation
            || self.db.config.conflict_strategy != graphsi_txn::ConflictStrategy::FirstUpdaterWins
        {
            return Ok(());
        }
        if let Some(newest) = self.db.newest_rel_commit_ts(id)? {
            if !newest.visible_to(self.start_ts) {
                let err = graphsi_txn::TxnError::WriteWriteConflict {
                    key: LockKey::relationship(id.raw()),
                    other: None,
                };
                return Err(self.conflict_abort(err.into()));
            }
        }
        Ok(())
    }

    /// Runs `f` under a short shared (read) lock when in read-committed
    /// mode; snapshot isolation needs no read locks at all (the paper
    /// removes them).
    fn with_read_lock<R>(&self, key: LockKey, f: impl FnOnce() -> Result<R>) -> Result<R> {
        match self.isolation {
            IsolationLevel::SnapshotIsolation => f(),
            IsolationLevel::ReadCommitted => {
                self.db.locks.acquire(key, LockMode::Shared, self.id)?;
                let result = f();
                let _ = self.db.locks.release(key, self.id);
                result
            }
        }
    }

    // ------------------------------------------------------------------
    // Token helpers
    // ------------------------------------------------------------------

    fn check_name(name: &str) -> Result<()> {
        if name.starts_with(RESERVED_PREFIX) {
            Err(DbError::ReservedName(name.to_owned()))
        } else {
            Ok(())
        }
    }

    fn label_token(&self, name: &str) -> Result<LabelToken> {
        Self::check_name(name)?;
        Ok(self.db.store.tokens().label(name)?)
    }

    fn property_key_token(&self, name: &str) -> Result<PropertyKeyToken> {
        Self::check_name(name)?;
        Ok(self.db.store.tokens().property_key(name)?)
    }

    fn rel_type_token(&self, name: &str) -> Result<RelTypeToken> {
        Self::check_name(name)?;
        Ok(self.db.store.tokens().rel_type(name)?)
    }

    fn label_name(&self, token: LabelToken) -> String {
        self.db
            .store
            .tokens()
            .label_name(token)
            .unwrap_or_else(|| format!("label#{}", token.0))
    }

    fn property_key_name(&self, token: PropertyKeyToken) -> String {
        self.db
            .store
            .tokens()
            .property_key_name(token)
            .unwrap_or_else(|| format!("key#{}", token.0))
    }

    fn rel_type_name(&self, token: RelTypeToken) -> String {
        self.db
            .store
            .tokens()
            .rel_type_name(token)
            .unwrap_or_else(|| format!("type#{}", token.0))
    }

    // ------------------------------------------------------------------
    // Internal snapshot + write-set read path
    // ------------------------------------------------------------------

    /// The node state visible to this transaction (own writes first, then
    /// the snapshot / latest committed state).
    fn visible_node(&self, id: NodeId) -> Result<Option<NodeData>> {
        if let Some(state) = self.write_set.node_state(id) {
            return Ok(state.cloned());
        }
        let read_ts = self.read_timestamp();
        let result = self.with_read_lock(LockKey::node(id.raw()), || {
            self.db.read_node_version(id, read_ts)
        })?;
        Ok(result.map(|(data, _)| (*data).clone()))
    }

    /// The relationship state visible to this transaction.
    fn visible_relationship(&self, id: RelationshipId) -> Result<Option<RelationshipData>> {
        if let Some(state) = self.write_set.relationship_state(id) {
            return Ok(state.cloned());
        }
        let read_ts = self.read_timestamp();
        let result = self.with_read_lock(LockKey::relationship(id.raw()), || {
            self.db.read_relationship_version(id, read_ts)
        })?;
        Ok(result.map(|(data, _)| (*data).clone()))
    }

    /// The committed pre-image of a node (for first writes), with its
    /// commit timestamp.
    fn node_pre_image(&self, id: NodeId) -> Result<Option<(Arc<NodeData>, Timestamp)>> {
        self.db.read_node_version(id, self.read_timestamp())
    }

    fn relationship_pre_image(
        &self,
        id: RelationshipId,
    ) -> Result<Option<(Arc<RelationshipData>, Timestamp)>> {
        self.db.read_relationship_version(id, self.read_timestamp())
    }

    // ------------------------------------------------------------------
    // Node reads
    // ------------------------------------------------------------------

    /// Returns the node if it exists in this transaction's view.
    pub fn get_node(&self, id: NodeId) -> Result<Option<Node>> {
        self.ensure_active()?;
        Ok(self.visible_node(id)?.map(|data| self.to_public_node(id, &data)))
    }

    /// Returns `true` if the node exists in this transaction's view.
    pub fn node_exists(&self, id: NodeId) -> Result<bool> {
        self.ensure_active()?;
        Ok(self.visible_node(id)?.is_some())
    }

    /// Returns one property of a node.
    pub fn node_property(&self, id: NodeId, name: &str) -> Result<Option<PropertyValue>> {
        self.ensure_active()?;
        let Some(data) = self.visible_node(id)? else {
            return Err(DbError::NodeNotFound(id));
        };
        let Some(token) = self.db.store.tokens().existing_property_key(name) else {
            return Ok(None);
        };
        Ok(data.properties.get(&token).cloned())
    }

    /// Returns the labels of a node.
    pub fn node_labels(&self, id: NodeId) -> Result<Vec<String>> {
        self.ensure_active()?;
        let Some(data) = self.visible_node(id)? else {
            return Err(DbError::NodeNotFound(id));
        };
        Ok(data.labels.iter().map(|l| self.label_name(*l)).collect())
    }

    /// Returns `true` if the node carries the label in this transaction's
    /// view.
    pub fn node_has_label(&self, id: NodeId, label: &str) -> Result<bool> {
        self.ensure_active()?;
        let Some(data) = self.visible_node(id)? else {
            return Err(DbError::NodeNotFound(id));
        };
        match self.db.store.tokens().existing_label(label) {
            Some(token) => Ok(data.has_label(token)),
            None => Ok(false),
        }
    }

    // ------------------------------------------------------------------
    // Relationship reads
    // ------------------------------------------------------------------

    /// Returns the relationship if it exists in this transaction's view.
    pub fn get_relationship(&self, id: RelationshipId) -> Result<Option<Relationship>> {
        self.ensure_active()?;
        Ok(self
            .visible_relationship(id)?
            .map(|data| self.to_public_relationship(id, &data)))
    }

    /// Returns one property of a relationship.
    pub fn relationship_property(
        &self,
        id: RelationshipId,
        name: &str,
    ) -> Result<Option<PropertyValue>> {
        self.ensure_active()?;
        let Some(data) = self.visible_relationship(id)? else {
            return Err(DbError::RelationshipNotFound(id));
        };
        let Some(token) = self.db.store.tokens().existing_property_key(name) else {
            return Ok(None);
        };
        Ok(data.properties.get(&token).cloned())
    }

    /// Relationships touching `node` in the given direction, in this
    /// transaction's view (committed snapshot merged with own pending
    /// writes — the paper's enriched iterator).
    pub fn relationships(&self, node: NodeId, direction: Direction) -> Result<Vec<Relationship>> {
        self.ensure_active()?;
        if self.visible_node(node)?.is_none() {
            return Err(DbError::NodeNotFound(node));
        }
        let mut seen: HashSet<RelationshipId> = HashSet::new();
        let mut out = Vec::new();

        // Committed candidates: persistent chain + cached versions.
        for id in self.db.candidate_relationships_of(node)? {
            if !seen.insert(id) {
                continue;
            }
            // Own deletion wins; own update wins.
            if let Some(state) = self.write_set.relationship_state(id) {
                if let Some(data) = state {
                    if data.touches(node) && direction.matches(node, data.source, data.target) {
                        out.push(self.to_public_relationship(id, data));
                    }
                }
                continue;
            }
            if let Some(data) = self.visible_relationship(id)? {
                if data.touches(node) && direction.matches(node, data.source, data.target) {
                    out.push(self.to_public_relationship(id, &data));
                }
            }
        }

        // Own pending creations.
        for (id, data) in self.write_set.pending_relationships_of(node) {
            if seen.insert(id) && direction.matches(node, data.source, data.target) {
                out.push(self.to_public_relationship(id, data));
            }
        }
        out.sort_by_key(|r| r.id);
        Ok(out)
    }

    /// IDs of the neighbouring nodes of `node`.
    pub fn neighbors(&self, node: NodeId, direction: Direction) -> Result<Vec<NodeId>> {
        let mut out: Vec<NodeId> = self
            .relationships(node, direction)?
            .into_iter()
            .map(|r| r.other_node(node))
            .collect();
        out.sort();
        out.dedup();
        Ok(out)
    }

    /// Number of relationships touching `node`.
    pub fn degree(&self, node: NodeId, direction: Direction) -> Result<usize> {
        Ok(self.relationships(node, direction)?.len())
    }

    // ------------------------------------------------------------------
    // Scans (label, property, whole graph)
    // ------------------------------------------------------------------

    /// Nodes carrying `label` in this transaction's view (versioned index
    /// lookup merged with own writes).
    pub fn nodes_with_label(&self, label: &str) -> Result<Vec<NodeId>> {
        self.ensure_active()?;
        let Some(token) = self.db.store.tokens().existing_label(label) else {
            // The label name was never interned, so no committed node and no
            // pending write can carry it.
            return Ok(Vec::new());
        };
        let read_ts = self.read_timestamp();
        let mut ids: HashSet<NodeId> = self
            .db
            .indexes
            .labels
            .nodes_with_label(token, read_ts)
            .into_iter()
            .collect();
        // Merge own writes: additions and removals by this transaction.
        for (&id, entry) in &self.write_set.nodes {
            match &entry.after {
                Some(after) if after.has_label(token) => {
                    ids.insert(id);
                }
                _ => {
                    ids.remove(&id);
                }
            }
        }
        let mut out: Vec<NodeId> = ids.into_iter().collect();
        out.sort();
        Ok(out)
    }

    /// Nodes whose property `name` equals `value` in this transaction's
    /// view.
    pub fn nodes_with_property(&self, name: &str, value: &PropertyValue) -> Result<Vec<NodeId>> {
        self.ensure_active()?;
        let Some(token) = self.db.store.tokens().existing_property_key(name) else {
            return Ok(Vec::new());
        };
        let read_ts = self.read_timestamp();
        let mut ids: HashSet<NodeId> = self
            .db
            .indexes
            .node_properties
            .lookup(token, value, read_ts)
            .into_iter()
            .collect();
        for (&id, entry) in &self.write_set.nodes {
            match &entry.after {
                Some(after) if after.properties.get(&token) == Some(value) => {
                    ids.insert(id);
                }
                _ => {
                    ids.remove(&id);
                }
            }
        }
        let mut out: Vec<NodeId> = ids.into_iter().collect();
        out.sort();
        Ok(out)
    }

    /// Relationships whose property `name` equals `value` in this
    /// transaction's view.
    pub fn relationships_with_property(
        &self,
        name: &str,
        value: &PropertyValue,
    ) -> Result<Vec<RelationshipId>> {
        self.ensure_active()?;
        let Some(token) = self.db.store.tokens().existing_property_key(name) else {
            return Ok(Vec::new());
        };
        let read_ts = self.read_timestamp();
        let mut ids: HashSet<RelationshipId> = self
            .db
            .indexes
            .relationship_properties
            .lookup(token, value, read_ts)
            .into_iter()
            .collect();
        for (&id, entry) in &self.write_set.relationships {
            match &entry.after {
                Some(after) if after.properties.get(&token) == Some(value) => {
                    ids.insert(id);
                }
                _ => {
                    ids.remove(&id);
                }
            }
        }
        let mut out: Vec<RelationshipId> = ids.into_iter().collect();
        out.sort();
        Ok(out)
    }

    /// Every node visible to this transaction. This is a full scan merging
    /// the persistent store, the object cache and the private write set.
    pub fn all_nodes(&self) -> Result<Vec<NodeId>> {
        self.ensure_active()?;
        let mut candidates: HashSet<NodeId> = self.db.stored_node_ids()?.into_iter().collect();
        candidates.extend(self.db.node_cache.all_keys());
        candidates.extend(self.write_set.nodes.keys().copied());
        let mut out = Vec::new();
        for id in candidates {
            if self.visible_node(id)?.is_some() {
                out.push(id);
            }
        }
        out.sort();
        Ok(out)
    }

    /// Every relationship visible to this transaction.
    pub fn all_relationships(&self) -> Result<Vec<RelationshipId>> {
        self.ensure_active()?;
        let mut candidates: HashSet<RelationshipId> =
            self.db.stored_relationship_ids()?.into_iter().collect();
        candidates.extend(self.db.rel_cache.all_keys());
        candidates.extend(self.write_set.relationships.keys().copied());
        let mut out = Vec::new();
        for id in candidates {
            if self.visible_relationship(id)?.is_some() {
                out.push(id);
            }
        }
        out.sort();
        Ok(out)
    }

    /// Number of nodes visible to this transaction.
    pub fn node_count(&self) -> Result<usize> {
        Ok(self.all_nodes()?.len())
    }

    // ------------------------------------------------------------------
    // Node writes
    // ------------------------------------------------------------------

    /// Creates a node with the given labels and properties, returning its
    /// ID. The node becomes visible to other transactions only at commit.
    pub fn create_node(
        &mut self,
        labels: &[&str],
        properties: &[(&str, PropertyValue)],
    ) -> Result<NodeId> {
        self.ensure_active()?;
        let mut label_tokens = Vec::with_capacity(labels.len());
        for name in labels {
            label_tokens.push(self.label_token(name)?);
        }
        let mut props = BTreeMap::new();
        for (name, value) in properties {
            props.insert(self.property_key_token(name)?, value.clone());
        }
        let id = self.db.allocate_node_id();
        self.write_lock(LockKey::node(id.raw()), None)?;
        self.write_set.create_node(id, NodeData::new(label_tokens, props));
        self.db.metrics.record_write();
        Ok(id)
    }

    /// Applies a mutation to a node, buffering the new state in the write
    /// set. Captures the pre-image and acquires the write lock on first
    /// touch.
    fn mutate_node(&mut self, id: NodeId, f: impl FnOnce(&mut NodeData)) -> Result<()> {
        self.ensure_active()?;
        // Fast path: the node is already in our write set.
        if let Some(state) = self.write_set.node_state(id) {
            match state {
                Some(data) => {
                    let mut new = data.clone();
                    f(&mut new);
                    self.write_set.update_node(id, None, new);
                    self.db.metrics.record_write();
                    return Ok(());
                }
                None => return Err(DbError::NodeNotFound(id)),
            }
        }
        // First touch: take the long write lock, then verify the snapshot
        // is still the newest committed state, then capture the pre-image.
        self.write_lock(LockKey::node(id.raw()), None)?;
        self.ensure_node_unchanged(id)?;
        let Some((before, before_ts)) = self.node_pre_image(id)? else {
            return Err(DbError::NodeNotFound(id));
        };
        let mut new = (*before).clone();
        f(&mut new);
        self.write_set
            .update_node(id, Some((before, before_ts)), new);
        self.db.metrics.record_write();
        Ok(())
    }

    /// Sets (or replaces) a property on a node.
    pub fn set_node_property(
        &mut self,
        id: NodeId,
        name: &str,
        value: PropertyValue,
    ) -> Result<()> {
        let token = self.property_key_token(name)?;
        self.mutate_node(id, |data| {
            data.properties.insert(token, value);
        })
    }

    /// Removes a property from a node (a no-op if absent).
    pub fn remove_node_property(&mut self, id: NodeId, name: &str) -> Result<()> {
        let token = self.property_key_token(name)?;
        self.mutate_node(id, |data| {
            data.properties.remove(&token);
        })
    }

    /// Adds a label to a node (a no-op if already present).
    pub fn add_label(&mut self, id: NodeId, label: &str) -> Result<()> {
        let token = self.label_token(label)?;
        self.mutate_node(id, |data| {
            if !data.labels.contains(&token) {
                data.labels.push(token);
            }
        })
    }

    /// Removes a label from a node (a no-op if absent).
    pub fn remove_label(&mut self, id: NodeId, label: &str) -> Result<()> {
        let token = self.label_token(label)?;
        self.mutate_node(id, |data| {
            data.labels.retain(|l| *l != token);
        })
    }

    /// Deletes a node. The node must have no relationships visible to this
    /// transaction (delete them first, as in Neo4j).
    pub fn delete_node(&mut self, id: NodeId) -> Result<()> {
        self.ensure_active()?;
        // The node must exist in our view.
        let exists_in_ws = match self.write_set.node_state(id) {
            Some(Some(_)) => true,
            Some(None) => return Err(DbError::NodeNotFound(id)),
            None => false,
        };
        // It must have no visible relationships left.
        if !self.relationships(id, Direction::Both)?.is_empty() {
            return Err(DbError::NodeHasRelationships(id));
        }
        if exists_in_ws {
            self.write_set.delete_node(id, None);
            self.db.metrics.record_write();
            return Ok(());
        }
        self.write_lock(LockKey::node(id.raw()), None)?;
        self.ensure_node_unchanged(id)?;
        let Some((before, before_ts)) = self.node_pre_image(id)? else {
            return Err(DbError::NodeNotFound(id));
        };
        self.write_set.delete_node(id, Some((before, before_ts)));
        self.db.metrics.record_write();
        Ok(())
    }

    // ------------------------------------------------------------------
    // Relationship writes
    // ------------------------------------------------------------------

    /// Creates a relationship between two nodes, returning its ID.
    ///
    /// Both endpoint nodes are write-locked (as in Neo4j, where creating a
    /// relationship locks its endpoints) to serialise against concurrent
    /// node deletion; their versions are not otherwise modified.
    pub fn create_relationship(
        &mut self,
        source: NodeId,
        target: NodeId,
        rel_type: &str,
        properties: &[(&str, PropertyValue)],
    ) -> Result<RelationshipId> {
        self.ensure_active()?;
        let type_token = self.rel_type_token(rel_type)?;
        let mut props = BTreeMap::new();
        for (name, value) in properties {
            props.insert(self.property_key_token(name)?, value.clone());
        }
        if self.visible_node(source)?.is_none() {
            return Err(DbError::NodeNotFound(source));
        }
        if self.visible_node(target)?.is_none() {
            return Err(DbError::NodeNotFound(target));
        }
        // Lock the endpoints (no stale-snapshot check: adding a
        // relationship does not conflict with property updates on the
        // endpoints) and the new relationship itself.
        self.write_lock(LockKey::node(source.raw()), None)?;
        if target != source {
            self.write_lock(LockKey::node(target.raw()), None)?;
        }
        let id = self.db.allocate_relationship_id();
        self.write_lock(LockKey::relationship(id.raw()), None)?;
        self.write_set
            .create_relationship(id, RelationshipData::new(source, target, type_token, props));
        self.db.metrics.record_write();
        Ok(id)
    }

    /// Applies a mutation to a relationship's properties.
    fn mutate_relationship(
        &mut self,
        id: RelationshipId,
        f: impl FnOnce(&mut RelationshipData),
    ) -> Result<()> {
        self.ensure_active()?;
        if let Some(state) = self.write_set.relationship_state(id) {
            match state {
                Some(data) => {
                    let mut new = data.clone();
                    f(&mut new);
                    self.write_set.update_relationship(id, None, new);
                    self.db.metrics.record_write();
                    return Ok(());
                }
                None => return Err(DbError::RelationshipNotFound(id)),
            }
        }
        self.write_lock(LockKey::relationship(id.raw()), None)?;
        self.ensure_relationship_unchanged(id)?;
        let Some((before, before_ts)) = self.relationship_pre_image(id)? else {
            return Err(DbError::RelationshipNotFound(id));
        };
        let mut new = (*before).clone();
        f(&mut new);
        self.write_set
            .update_relationship(id, Some((before, before_ts)), new);
        self.db.metrics.record_write();
        Ok(())
    }

    /// Sets (or replaces) a property on a relationship.
    pub fn set_relationship_property(
        &mut self,
        id: RelationshipId,
        name: &str,
        value: PropertyValue,
    ) -> Result<()> {
        let token = self.property_key_token(name)?;
        self.mutate_relationship(id, |data| {
            data.properties.insert(token, value);
        })
    }

    /// Removes a property from a relationship (a no-op if absent).
    pub fn remove_relationship_property(&mut self, id: RelationshipId, name: &str) -> Result<()> {
        let token = self.property_key_token(name)?;
        self.mutate_relationship(id, |data| {
            data.properties.remove(&token);
        })
    }

    /// Deletes a relationship.
    pub fn delete_relationship(&mut self, id: RelationshipId) -> Result<()> {
        self.ensure_active()?;
        if let Some(state) = self.write_set.relationship_state(id) {
            match state {
                Some(_) => {
                    self.write_set.delete_relationship(id, None);
                    self.db.metrics.record_write();
                    return Ok(());
                }
                None => return Err(DbError::RelationshipNotFound(id)),
            }
        }
        self.write_lock(LockKey::relationship(id.raw()), None)?;
        self.ensure_relationship_unchanged(id)?;
        let Some((before, before_ts)) = self.relationship_pre_image(id)? else {
            return Err(DbError::RelationshipNotFound(id));
        };
        // Lock the endpoints to serialise against concurrent node deletion.
        self.write_lock(LockKey::node(before.source.raw()), None)?;
        if before.target != before.source {
            self.write_lock(LockKey::node(before.target.raw()), None)?;
        }
        self.write_set.delete_relationship(id, Some((before, before_ts)));
        self.db.metrics.record_write();
        Ok(())
    }

    // ------------------------------------------------------------------
    // Conversions
    // ------------------------------------------------------------------

    fn to_public_node(&self, id: NodeId, data: &NodeData) -> Node {
        Node {
            id,
            labels: data.labels.iter().map(|l| self.label_name(*l)).collect(),
            properties: data
                .properties
                .iter()
                .map(|(k, v)| (self.property_key_name(*k), v.clone()))
                .collect(),
        }
    }

    fn to_public_relationship(&self, id: RelationshipId, data: &RelationshipData) -> Relationship {
        Relationship {
            id,
            source: data.source,
            target: data.target,
            rel_type: self.rel_type_name(data.rel_type),
            properties: data
                .properties
                .iter()
                .map(|(k, v)| (self.property_key_name(*k), v.clone()))
                .collect(),
        }
    }
}

impl Drop for Transaction<'_> {
    fn drop(&mut self) {
        if self.state == TxnState::Active {
            self.db.abort_transaction(self.id, false);
            self.state = TxnState::RolledBack;
        }
    }
}

impl std::fmt::Debug for Transaction<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Transaction")
            .field("id", &self.id)
            .field("start_ts", &self.start_ts)
            .field("isolation", &self.isolation)
            .field("state", &self.state)
            .field("pending_writes", &self.write_set.len())
            .finish()
    }
}
