//! Transactions: the user-facing unit of work.
//!
//! A [`Transaction`] buffers its writes privately (read-your-own-writes),
//! reads either a fixed snapshot (snapshot isolation) or the latest
//! committed state under short read locks (read committed), and installs
//! its changes atomically at commit through the database's commit pipeline.
//!
//! Transactions *own* a reference to the database (`Arc`-backed), so they
//! are `Send + 'static`: they can be parked in server-style sessions,
//! moved across threads and driven by one-transaction-per-thread worker
//! pools. Dropping an active transaction rolls it back.

use std::collections::BTreeMap;
use std::sync::Arc;

use graphsi_storage::{
    LabelToken, NodeId, PropertyKeyToken, PropertyValue, RelTypeToken, RelationshipId,
};
use graphsi_txn::{
    check_at_update, ConflictStrategy, LockKey, LockMode, Timestamp, TxnId, UpdateCheck,
};

use crate::config::IsolationLevel;
use crate::db::{GraphDbInner, RESERVED_PREFIX};
use crate::entity::{Direction, Node, NodeData, Relationship, RelationshipData};
use crate::error::{DbError, Result};
use crate::iter::{NeighborIter, NodeIdIter, RelEntryIter, RelIdIter, RelIter};
use crate::query::QueryBuilder;
use crate::write_set::WriteSet;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum TxnState {
    Active,
    Committed,
    RolledBack,
}

/// A transaction over a [`crate::GraphDb`].
///
/// Obtained from [`crate::GraphDb::begin`] or the
/// [`crate::TxnOptions`] builder. The transaction owns an `Arc` reference
/// to the database, making it `Send + 'static`. Dropping an active
/// transaction rolls it back.
pub struct Transaction {
    db: Arc<GraphDbInner>,
    id: TxnId,
    start_ts: Timestamp,
    isolation: IsolationLevel,
    conflict_strategy: ConflictStrategy,
    state: TxnState,
    /// `None` for read-only transactions — they skip write-set allocation
    /// entirely and reject writes.
    write_set: Option<WriteSet>,
    /// Chunk size of the streaming read cursors this transaction opens.
    scan_chunk_size: usize,
}

// The public contract of the owned-handle redesign: transactions must be
// movable across threads and free of borrowed lifetimes.
const _: () = {
    const fn assert_send<T: Send + 'static>() {}
    assert_send::<Transaction>();
};

impl Transaction {
    pub(crate) fn new(
        db: Arc<GraphDbInner>,
        id: TxnId,
        start_ts: Timestamp,
        isolation: IsolationLevel,
        conflict_strategy: ConflictStrategy,
        read_only: bool,
        scan_chunk_size: usize,
    ) -> Self {
        Transaction {
            db,
            id,
            start_ts,
            isolation,
            conflict_strategy,
            state: TxnState::Active,
            write_set: if read_only {
                None
            } else {
                Some(WriteSet::new())
            },
            scan_chunk_size: scan_chunk_size.max(1),
        }
    }

    /// Chunk size of the streaming read cursors this transaction opens
    /// (set through [`crate::TxnOptions::scan_chunk_size`], defaulting to
    /// [`crate::DbConfig::scan_chunk_size`]).
    pub fn scan_chunk_size(&self) -> usize {
        self.scan_chunk_size
    }

    /// The transaction's ID.
    pub fn id(&self) -> TxnId {
        self.id
    }

    /// The transaction's start timestamp (its snapshot under snapshot
    /// isolation).
    pub fn start_timestamp(&self) -> Timestamp {
        self.start_ts
    }

    /// The isolation level this transaction runs under.
    pub fn isolation(&self) -> IsolationLevel {
        self.isolation
    }

    /// The write-write conflict strategy this transaction applies (the
    /// database default unless overridden through
    /// [`crate::TxnOptions::conflict_strategy`]).
    pub fn conflict_strategy(&self) -> ConflictStrategy {
        self.conflict_strategy
    }

    /// Returns `true` if this is a read-only snapshot transaction.
    pub fn is_read_only(&self) -> bool {
        self.write_set.is_none()
    }

    /// Returns `true` while the transaction can still be used.
    pub fn is_active(&self) -> bool {
        self.state == TxnState::Active
    }

    /// Number of entities with pending (uncommitted) changes.
    pub fn pending_writes(&self) -> usize {
        self.write_set.as_ref().map_or(0, WriteSet::len)
    }

    /// The timestamp reads are served at: the fixed start timestamp under
    /// snapshot isolation (and for every read-only transaction), the
    /// latest committed timestamp under read committed (which is exactly
    /// why read committed exhibits unrepeatable reads and phantoms).
    pub fn read_timestamp(&self) -> Timestamp {
        if self.is_read_only() {
            return self.start_ts;
        }
        match self.isolation {
            IsolationLevel::SnapshotIsolation => self.start_ts,
            IsolationLevel::ReadCommitted => self.db.visible_timestamp(),
        }
    }

    pub(crate) fn db(&self) -> &GraphDbInner {
        &self.db
    }

    pub(crate) fn write_set_ref(&self) -> Option<&WriteSet> {
        self.write_set.as_ref()
    }

    /// The mutable write set, or the read-only rejection error.
    fn write_set_mut(&mut self) -> Result<&mut WriteSet> {
        self.write_set.as_mut().ok_or(DbError::ReadOnlyTransaction)
    }

    fn ensure_writable(&self) -> Result<()> {
        self.ensure_active()?;
        if self.write_set.is_none() {
            return Err(DbError::ReadOnlyTransaction);
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Lifecycle
    // ------------------------------------------------------------------

    /// Commits the transaction, returning its commit timestamp (or the
    /// start timestamp for read-only transactions).
    pub fn commit(mut self) -> Result<Timestamp> {
        self.ensure_active()?;
        let result = match &self.write_set {
            None => {
                // Read-only fast path: no locks were ever taken, so the
                // commit never touches the lock manager.
                self.db.finish_read_only(self.id, true);
                Ok(self.start_ts)
            }
            Some(write_set) => self.db.commit_transaction(
                self.id,
                self.start_ts,
                self.conflict_strategy,
                write_set,
            ),
        };
        self.state = match result {
            Ok(_) => TxnState::Committed,
            Err(_) => TxnState::RolledBack,
        };
        result
    }

    /// Rolls the transaction back, discarding all pending changes.
    pub fn rollback(mut self) {
        self.rollback_in_place();
    }

    fn rollback_in_place(&mut self) {
        if self.state == TxnState::Active {
            if self.write_set.is_none() {
                self.db.finish_read_only(self.id, false);
            } else {
                self.db.abort_transaction(self.id, false);
            }
            self.state = TxnState::RolledBack;
        }
    }

    fn ensure_active(&self) -> Result<()> {
        if self.state == TxnState::Active {
            Ok(())
        } else {
            Err(DbError::TransactionClosed)
        }
    }

    /// Aborts the transaction because of a conflict and returns the error.
    fn conflict_abort(&mut self, err: DbError) -> DbError {
        self.db.abort_transaction(self.id, true);
        self.state = TxnState::RolledBack;
        err
    }

    // ------------------------------------------------------------------
    // Locking helpers
    // ------------------------------------------------------------------

    /// Acquires the long write lock on `key`, applying this transaction's
    /// write-write conflict strategy. Under snapshot isolation losing the
    /// first-updater race aborts the transaction; under read committed the
    /// acquisition blocks (with deadlock detection).
    ///
    /// Note: staleness of the snapshot (a concurrent writer already
    /// committed a newer version) is checked *after* the lock is held — see
    /// [`Transaction::ensure_node_unchanged`] — because checking before
    /// acquiring the lock races with a concurrent committer releasing it.
    fn write_lock(&mut self, key: LockKey, newest_committed: Option<Timestamp>) -> Result<()> {
        match self.isolation {
            IsolationLevel::ReadCommitted => {
                let acquired = self.db.locks.acquire(key, LockMode::Exclusive, self.id);
                match acquired {
                    Ok(()) => Ok(()),
                    Err(e) => Err(self.conflict_abort(e.into())),
                }
            }
            IsolationLevel::SnapshotIsolation => {
                match check_at_update(
                    self.conflict_strategy,
                    &self.db.locks,
                    key,
                    self.id,
                    self.start_ts,
                    newest_committed,
                ) {
                    UpdateCheck::Proceed => Ok(()),
                    UpdateCheck::Abort(e) => Err(self.conflict_abort(e.into())),
                }
            }
        }
    }

    /// After the write lock on a node is held: abort if a concurrent
    /// transaction committed a version newer than our snapshot (the
    /// first-updater-wins write rule). Must run *after* lock acquisition so
    /// that a competitor finishing its commit (install + lock release)
    /// cannot slip in between the check and the lock.
    fn ensure_node_unchanged(&mut self, id: NodeId) -> Result<()> {
        if self.isolation != IsolationLevel::SnapshotIsolation
            || self.conflict_strategy != ConflictStrategy::FirstUpdaterWins
        {
            // Read committed serialises through blocking locks; the
            // first-committer-wins strategy validates at commit time.
            return Ok(());
        }
        if let Some(newest) = self.db.newest_node_commit_ts(id)? {
            if !newest.visible_to(self.start_ts) {
                let err = graphsi_txn::TxnError::WriteWriteConflict {
                    key: LockKey::node(id.raw()),
                    other: None,
                };
                return Err(self.conflict_abort(err.into()));
            }
        }
        Ok(())
    }

    /// Relationship counterpart of [`Transaction::ensure_node_unchanged`].
    fn ensure_relationship_unchanged(&mut self, id: RelationshipId) -> Result<()> {
        if self.isolation != IsolationLevel::SnapshotIsolation
            || self.conflict_strategy != ConflictStrategy::FirstUpdaterWins
        {
            return Ok(());
        }
        if let Some(newest) = self.db.newest_rel_commit_ts(id)? {
            if !newest.visible_to(self.start_ts) {
                let err = graphsi_txn::TxnError::WriteWriteConflict {
                    key: LockKey::relationship(id.raw()),
                    other: None,
                };
                return Err(self.conflict_abort(err.into()));
            }
        }
        Ok(())
    }

    /// Runs `f` under a short shared (read) lock when in read-committed
    /// mode; snapshot isolation — and every read-only transaction — needs
    /// no read locks at all (the paper removes them).
    fn with_read_lock<R>(&self, key: LockKey, f: impl FnOnce() -> Result<R>) -> Result<R> {
        if self.is_read_only() {
            return f();
        }
        match self.isolation {
            IsolationLevel::SnapshotIsolation => f(),
            IsolationLevel::ReadCommitted => {
                self.db.locks.acquire(key, LockMode::Shared, self.id)?;
                let result = f();
                let _ = self.db.locks.release(key, self.id);
                result
            }
        }
    }

    // ------------------------------------------------------------------
    // Token helpers
    // ------------------------------------------------------------------

    fn check_name(name: &str) -> Result<()> {
        if name.starts_with(RESERVED_PREFIX) {
            Err(DbError::ReservedName(name.to_owned()))
        } else {
            Ok(())
        }
    }

    fn label_token(&self, name: &str) -> Result<LabelToken> {
        Self::check_name(name)?;
        Ok(self.db.store.tokens().label(name)?)
    }

    fn property_key_token(&self, name: &str) -> Result<PropertyKeyToken> {
        Self::check_name(name)?;
        Ok(self.db.store.tokens().property_key(name)?)
    }

    fn rel_type_token(&self, name: &str) -> Result<RelTypeToken> {
        Self::check_name(name)?;
        Ok(self.db.store.tokens().rel_type(name)?)
    }

    fn label_name(&self, token: LabelToken) -> String {
        self.db
            .store
            .tokens()
            .label_name(token)
            .unwrap_or_else(|| format!("label#{}", token.0))
    }

    fn property_key_name(&self, token: PropertyKeyToken) -> String {
        self.db
            .store
            .tokens()
            .property_key_name(token)
            .unwrap_or_else(|| format!("key#{}", token.0))
    }

    fn rel_type_name(&self, token: RelTypeToken) -> String {
        self.db
            .store
            .tokens()
            .rel_type_name(token)
            .unwrap_or_else(|| format!("type#{}", token.0))
    }

    // ------------------------------------------------------------------
    // Internal snapshot + write-set read path
    // ------------------------------------------------------------------

    /// The node state visible to this transaction (own writes first, then
    /// the snapshot / latest committed state).
    pub(crate) fn visible_node(&self, id: NodeId) -> Result<Option<NodeData>> {
        if let Some(state) = self.write_set.as_ref().and_then(|ws| ws.node_state(id)) {
            return Ok(state.cloned());
        }
        let read_ts = self.read_timestamp();
        let result = self.with_read_lock(LockKey::node(id.raw()), || {
            self.db.read_node_version(id, read_ts)
        })?;
        Ok(result.map(|(data, _)| (*data).clone()))
    }

    /// The relationship state visible to this transaction.
    pub(crate) fn visible_relationship(
        &self,
        id: RelationshipId,
    ) -> Result<Option<RelationshipData>> {
        if let Some(state) = self
            .write_set
            .as_ref()
            .and_then(|ws| ws.relationship_state(id))
        {
            return Ok(state.cloned());
        }
        let read_ts = self.read_timestamp();
        let result = self.with_read_lock(LockKey::relationship(id.raw()), || {
            self.db.read_relationship_version(id, read_ts)
        })?;
        Ok(result.map(|(data, _)| (*data).clone()))
    }

    /// The committed pre-image of a node (for first writes), with its
    /// commit timestamp.
    fn node_pre_image(&self, id: NodeId) -> Result<Option<(Arc<NodeData>, Timestamp)>> {
        self.db.read_node_version(id, self.read_timestamp())
    }

    fn relationship_pre_image(
        &self,
        id: RelationshipId,
    ) -> Result<Option<(Arc<RelationshipData>, Timestamp)>> {
        self.db.read_relationship_version(id, self.read_timestamp())
    }

    // ------------------------------------------------------------------
    // Node reads
    // ------------------------------------------------------------------

    /// Returns the node if it exists in this transaction's view.
    pub fn get_node(&self, id: NodeId) -> Result<Option<Node>> {
        self.ensure_active()?;
        Ok(self
            .visible_node(id)?
            .map(|data| self.to_public_node(id, &data)))
    }

    /// Returns `true` if the node exists in this transaction's view.
    pub fn node_exists(&self, id: NodeId) -> Result<bool> {
        self.ensure_active()?;
        Ok(self.visible_node(id)?.is_some())
    }

    /// Returns one property of a node.
    pub fn node_property(&self, id: NodeId, name: &str) -> Result<Option<PropertyValue>> {
        self.ensure_active()?;
        let Some(data) = self.visible_node(id)? else {
            return Err(DbError::NodeNotFound(id));
        };
        let Some(token) = self.db.store.tokens().existing_property_key(name) else {
            return Ok(None);
        };
        Ok(data.properties.get(&token).cloned())
    }

    /// Returns the labels of a node.
    pub fn node_labels(&self, id: NodeId) -> Result<Vec<String>> {
        self.ensure_active()?;
        let Some(data) = self.visible_node(id)? else {
            return Err(DbError::NodeNotFound(id));
        };
        Ok(data.labels.iter().map(|l| self.label_name(*l)).collect())
    }

    /// Returns `true` if the node carries the label in this transaction's
    /// view.
    pub fn node_has_label(&self, id: NodeId, label: &str) -> Result<bool> {
        self.ensure_active()?;
        let Some(data) = self.visible_node(id)? else {
            return Err(DbError::NodeNotFound(id));
        };
        match self.db.store.tokens().existing_label(label) {
            Some(token) => Ok(data.has_label(token)),
            None => Ok(false),
        }
    }

    // ------------------------------------------------------------------
    // Relationship reads
    // ------------------------------------------------------------------

    /// Returns the relationship if it exists in this transaction's view.
    pub fn get_relationship(&self, id: RelationshipId) -> Result<Option<Relationship>> {
        self.ensure_active()?;
        Ok(self
            .visible_relationship(id)?
            .map(|data| self.to_public_relationship(id, &data)))
    }

    /// Returns one property of a relationship.
    pub fn relationship_property(
        &self,
        id: RelationshipId,
        name: &str,
    ) -> Result<Option<PropertyValue>> {
        self.ensure_active()?;
        let Some(data) = self.visible_relationship(id)? else {
            return Err(DbError::RelationshipNotFound(id));
        };
        let Some(token) = self.db.store.tokens().existing_property_key(name) else {
            return Ok(None);
        };
        Ok(data.properties.get(&token).cloned())
    }

    /// Lazily iterates the relationships touching `node` in the given
    /// direction, in this transaction's view (committed snapshot merged
    /// with own pending writes — the paper's enriched iterator, §4).
    ///
    /// Candidate IDs are paged from resumable cursors — the persistent
    /// chain and the version-cache overlay — at most one chunk
    /// ([`Transaction::scan_chunk_size`]) at a time, and each element is
    /// resolved against the snapshot only when the iterator reaches it:
    /// traversals that stop early never materialise whole adjacency lists,
    /// and even full traversals never buffer more than one chunk of
    /// candidates.
    pub fn relationships(&self, node: NodeId, direction: Direction) -> Result<RelIter<'_>> {
        self.ensure_active()?;
        if self.visible_node(node)?.is_none() {
            return Err(DbError::NodeNotFound(node));
        }
        RelIter::new(self, node, direction, self.scan_chunk_size)
    }

    /// Eager version of [`Transaction::relationships`]: collects into a
    /// `Vec` sorted by relationship ID.
    pub fn relationships_vec(
        &self,
        node: NodeId,
        direction: Direction,
    ) -> Result<Vec<Relationship>> {
        let mut out: Vec<Relationship> = self
            .relationships(node, direction)?
            .collect::<Result<_>>()?;
        out.sort_by_key(|r| r.id);
        Ok(out)
    }

    /// Lazily iterates the IDs of the neighbouring nodes of `node`,
    /// deduplicated in visit order.
    pub fn neighbors(&self, node: NodeId, direction: Direction) -> Result<NeighborIter<'_>> {
        self.ensure_active()?;
        if self.visible_node(node)?.is_none() {
            return Err(DbError::NodeNotFound(node));
        }
        Ok(NeighborIter::new(RelEntryIter::new(
            self,
            node,
            direction,
            self.scan_chunk_size,
        )?))
    }

    /// [`Transaction::neighbors`] without the node-existence error: a
    /// missing or invisible start node simply expands to nothing. Used by
    /// the query expansion stage, where upstream nodes may have been
    /// deleted by this very transaction mid-stream.
    pub(crate) fn neighbors_or_empty(
        &self,
        node: NodeId,
        direction: Direction,
        chunk: usize,
    ) -> Result<RelEntryIter<'_>> {
        self.ensure_active()?;
        RelEntryIter::new(self, node, direction, chunk)
    }

    /// Eager version of [`Transaction::neighbors`]: sorted, deduplicated
    /// `Vec` of neighbour IDs.
    pub fn neighbors_vec(&self, node: NodeId, direction: Direction) -> Result<Vec<NodeId>> {
        let mut out: Vec<NodeId> = self.neighbors(node, direction)?.collect::<Result<_>>()?;
        out.sort();
        out.dedup();
        Ok(out)
    }

    /// Number of relationships touching `node`. Streams over the lazy
    /// iterator without materialising the relationships.
    pub fn degree(&self, node: NodeId, direction: Direction) -> Result<usize> {
        let mut count = 0usize;
        for rel in self.relationships(node, direction)? {
            rel?;
            count += 1;
        }
        Ok(count)
    }

    // ------------------------------------------------------------------
    // Scans (label, property, whole graph)
    // ------------------------------------------------------------------

    /// Lazily iterates the nodes carrying `label` in this transaction's
    /// view (versioned index cursor merged with own writes), paging the
    /// posting list one chunk at a time.
    pub fn nodes_with_label(&self, label: &str) -> Result<NodeIdIter<'_>> {
        self.nodes_with_label_chunked(label, self.scan_chunk_size)
    }

    pub(crate) fn nodes_with_label_chunked(
        &self,
        label: &str,
        chunk: usize,
    ) -> Result<NodeIdIter<'_>> {
        self.ensure_active()?;
        let Some(token) = self.db.store.tokens().existing_label(label) else {
            // The label name was never interned, so no committed node and no
            // pending write can carry it.
            return Ok(NodeIdIter::empty(self));
        };
        Ok(NodeIdIter::with_label(self, token, chunk))
    }

    /// Eager version of [`Transaction::nodes_with_label`]: sorted `Vec`.
    pub fn nodes_with_label_vec(&self, label: &str) -> Result<Vec<NodeId>> {
        let mut out: Vec<NodeId> = self.nodes_with_label(label)?.collect::<Result<_>>()?;
        out.sort();
        Ok(out)
    }

    /// Lazily iterates the nodes whose property `name` equals `value` in
    /// this transaction's view, paging the posting list one chunk at a
    /// time.
    pub fn nodes_with_property(&self, name: &str, value: &PropertyValue) -> Result<NodeIdIter<'_>> {
        self.nodes_with_property_chunked(name, value, self.scan_chunk_size)
    }

    pub(crate) fn nodes_with_property_chunked(
        &self,
        name: &str,
        value: &PropertyValue,
        chunk: usize,
    ) -> Result<NodeIdIter<'_>> {
        self.ensure_active()?;
        let Some(token) = self.db.store.tokens().existing_property_key(name) else {
            return Ok(NodeIdIter::empty(self));
        };
        Ok(NodeIdIter::with_property(self, token, value.clone(), chunk))
    }

    /// Eager version of [`Transaction::nodes_with_property`]: sorted `Vec`.
    pub fn nodes_with_property_vec(
        &self,
        name: &str,
        value: &PropertyValue,
    ) -> Result<Vec<NodeId>> {
        let mut out: Vec<NodeId> = self
            .nodes_with_property(name, value)?
            .collect::<Result<_>>()?;
        out.sort();
        Ok(out)
    }

    /// Lazily iterates the nodes whose property `name` holds a value
    /// inside `range`, served from the versioned property index's sorted
    /// key dimension (**range postings**) — a pushed-down comparison
    /// predicate that never decodes candidate property lists. Range
    /// semantics are type-homogeneous: an `Int` bound only matches `Int`
    /// values, and a half-open range stays within its bound's type.
    ///
    /// ```
    /// # use graphsi_core::{DbConfig, GraphDb, PropertyValue, Result};
    /// # fn main() -> Result<()> {
    /// # let dir = graphsi_core::test_support::TempDir::new("doc-range");
    /// # let db = GraphDb::open(dir.path(), DbConfig::default())?;
    /// # let mut tx = db.begin();
    /// # tx.create_node(&["P"], &[("age", PropertyValue::Int(36))])?;
    /// # tx.create_node(&["P"], &[("age", PropertyValue::Int(21))])?;
    /// # tx.commit()?;
    /// # let tx = db.txn().read_only().begin();
    /// let adults = tx
    ///     .nodes_with_property_range("age", PropertyValue::Int(30)..=PropertyValue::Int(120))?
    ///     .count();
    /// assert_eq!(adults, 1);
    /// # Ok(()) }
    /// ```
    pub fn nodes_with_property_range(
        &self,
        name: &str,
        range: impl std::ops::RangeBounds<PropertyValue>,
    ) -> Result<NodeIdIter<'_>> {
        let (lo, hi) = crate::plan::value_range_key_bounds(&range);
        self.nodes_with_property_range_chunked(name, lo, hi, self.scan_chunk_size, false)
    }

    pub(crate) fn nodes_with_property_range_chunked(
        &self,
        name: &str,
        lo: std::ops::Bound<graphsi_storage::ValueKey>,
        hi: std::ops::Bound<graphsi_storage::ValueKey>,
        chunk: usize,
        descending: bool,
    ) -> Result<NodeIdIter<'_>> {
        self.ensure_active()?;
        let Some(token) = self.db.store.tokens().existing_property_key(name) else {
            return Ok(NodeIdIter::empty(self));
        };
        NodeIdIter::with_property_range(self, token, lo, hi, chunk, descending)
    }

    /// Sorted-posting merge-intersect source for the query planner: the
    /// driver predicate streams through its range cursor (ascending or
    /// descending) while each leg is pre-drained into a sorted build side.
    /// An unknown property key on any predicate means nothing can match.
    pub(crate) fn nodes_intersection_chunked(
        &self,
        driver: &crate::plan::RangePred,
        legs: &[crate::plan::RangePred],
        chunk: usize,
        descending: bool,
    ) -> Result<NodeIdIter<'_>> {
        self.ensure_active()?;
        let tokens = self.db.store.tokens();
        let Some(driver_token) = tokens.existing_property_key(&driver.name) else {
            return Ok(NodeIdIter::empty(self));
        };
        let mut leg_preds = Vec::with_capacity(legs.len());
        for leg in legs {
            let Some(token) = tokens.existing_property_key(&leg.name) else {
                return Ok(NodeIdIter::empty(self));
            };
            leg_preds.push((token, leg.lo.clone(), leg.hi.clone()));
        }
        NodeIdIter::with_intersection(
            self,
            (driver_token, driver.lo.clone(), driver.hi.clone()),
            leg_preds,
            chunk,
            descending,
        )
    }

    /// One property of the node visible to this transaction, through the
    /// single-key decode fast path: own writes and cache hits answer from
    /// memory, cache misses decode only the requested key (plus the
    /// commit-ts key) out of the store's property chain instead of
    /// materialising the whole list. Outer `None` = node invisible.
    pub(crate) fn visible_node_property(
        &self,
        id: NodeId,
        token: PropertyKeyToken,
    ) -> Result<Option<Option<PropertyValue>>> {
        Ok(self
            .visible_node_properties(id, std::slice::from_ref(&token))?
            .map(|mut v| v.pop().flatten()))
    }

    /// Multi-key variant of [`Transaction::visible_node_property`]; one
    /// chain walk decodes every requested key (row projections use this).
    pub(crate) fn visible_node_properties(
        &self,
        id: NodeId,
        tokens: &[PropertyKeyToken],
    ) -> Result<Option<Vec<Option<PropertyValue>>>> {
        if let Some(state) = self.write_set.as_ref().and_then(|ws| ws.node_state(id)) {
            return Ok(state.map(|data| {
                tokens
                    .iter()
                    .map(|t| data.properties.get(t).cloned())
                    .collect()
            }));
        }
        let read_ts = self.read_timestamp();
        self.with_read_lock(LockKey::node(id.raw()), || {
            self.db.read_node_properties_version(id, tokens, read_ts)
        })
    }

    /// Relationships whose property `name` equals `value` in this
    /// transaction's view, sorted by ID.
    pub fn relationships_with_property(
        &self,
        name: &str,
        value: &PropertyValue,
    ) -> Result<Vec<RelationshipId>> {
        self.ensure_active()?;
        let Some(token) = self.db.store.tokens().existing_property_key(name) else {
            return Ok(Vec::new());
        };
        let read_ts = self.read_timestamp();
        let mut ids: std::collections::HashSet<RelationshipId> = std::collections::HashSet::new();
        self.db
            .indexes
            .relationship_properties
            .lookup_with(token, value, read_ts, |id| {
                ids.insert(id);
            });
        if let Some(ws) = &self.write_set {
            for (&id, entry) in &ws.relationships {
                match &entry.after {
                    Some(after) if after.properties.get(&token) == Some(value) => {
                        ids.insert(id);
                    }
                    _ => {
                        ids.remove(&id);
                    }
                }
            }
        }
        let mut out: Vec<RelationshipId> = ids.into_iter().collect();
        out.sort();
        Ok(out)
    }

    /// Lazily iterates every node visible to this transaction: the
    /// persistent store's slot scan, the object cache's shard pages and
    /// the private write set are merged chunk by chunk, and each candidate
    /// is visibility-checked only when the iterator reaches it.
    pub fn all_nodes(&self) -> Result<NodeIdIter<'_>> {
        self.all_nodes_chunked(self.scan_chunk_size)
    }

    pub(crate) fn all_nodes_chunked(&self, chunk: usize) -> Result<NodeIdIter<'_>> {
        self.ensure_active()?;
        Ok(NodeIdIter::all_nodes(self, chunk))
    }

    /// Eager version of [`Transaction::all_nodes`]: sorted `Vec`.
    pub fn all_nodes_vec(&self) -> Result<Vec<NodeId>> {
        let mut out: Vec<NodeId> = self.all_nodes()?.collect::<Result<_>>()?;
        out.sort();
        Ok(out)
    }

    /// Lazily iterates every relationship visible to this transaction,
    /// merging the store's slot scan, the cache's shard pages and the
    /// write set chunk by chunk.
    pub fn all_relationships(&self) -> Result<RelIdIter<'_>> {
        self.ensure_active()?;
        Ok(RelIdIter::new(self, self.scan_chunk_size))
    }

    /// Eager version of [`Transaction::all_relationships`]: sorted `Vec`.
    pub fn all_relationships_vec(&self) -> Result<Vec<RelationshipId>> {
        let mut out: Vec<RelationshipId> = self.all_relationships()?.collect::<Result<_>>()?;
        out.sort();
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Query builder
    // ------------------------------------------------------------------

    /// Starts a composable, streaming query over this transaction's
    /// snapshot (merged with its own pending writes):
    ///
    /// ```
    /// # use graphsi_core::{DbConfig, Direction, GraphDb, PropertyValue, Result};
    /// # fn main() -> Result<()> {
    /// # let dir = graphsi_core::test_support::TempDir::new("doc-query");
    /// # let db = GraphDb::open(dir.path(), DbConfig::default())?;
    /// # let mut tx = db.begin();
    /// # let ada = tx.create_node(&["Person"], &[("age", PropertyValue::Int(36))])?;
    /// # let lin = tx.create_node(&["Person"], &[("age", PropertyValue::Int(21))])?;
    /// # tx.create_relationship(ada, lin, "KNOWS", &[])?;
    /// # tx.commit()?;
    /// # let tx = db.txn().read_only().begin();
    /// let friends_of_adults = tx
    ///     .query()
    ///     .nodes_with_label("Person")
    ///     .filter_property("age", |v| v.as_int().is_some_and(|age| age >= 30))
    ///     .expand(Direction::Outgoing, Some("KNOWS"))
    ///     .distinct()
    ///     .limit(10)
    ///     .ids()?;
    /// assert_eq!(friends_of_adults, vec![lin]);
    /// # Ok(()) }
    /// ```
    ///
    /// The pipeline streams: results are produced element by element from
    /// the chunked cursors, never buffering more than one chunk of
    /// candidates per stage (plus the deduplication set a `distinct()`
    /// stage needs for the rows it has already emitted).
    pub fn query(&self) -> QueryBuilder<'_> {
        QueryBuilder::new(self)
    }

    /// Number of nodes visible to this transaction.
    pub fn node_count(&self) -> Result<usize> {
        let mut count = 0usize;
        for id in self.all_nodes()? {
            id?;
            count += 1;
        }
        Ok(count)
    }

    // ------------------------------------------------------------------
    // Node writes
    // ------------------------------------------------------------------

    /// Creates a node with the given labels and properties, returning its
    /// ID. The node becomes visible to other transactions only at commit.
    pub fn create_node(
        &mut self,
        labels: &[&str],
        properties: &[(&str, PropertyValue)],
    ) -> Result<NodeId> {
        self.ensure_writable()?;
        let mut label_tokens = Vec::with_capacity(labels.len());
        for name in labels {
            label_tokens.push(self.label_token(name)?);
        }
        let mut props = BTreeMap::new();
        for (name, value) in properties {
            props.insert(self.property_key_token(name)?, value.clone());
        }
        let id = self.db.allocate_node_id();
        self.write_lock(LockKey::node(id.raw()), None)?;
        self.write_set_mut()?
            .create_node(id, NodeData::new(label_tokens, props));
        self.db.metrics.record_write();
        Ok(id)
    }

    /// Applies a mutation to a node, buffering the new state in the write
    /// set. Captures the pre-image and acquires the write lock on first
    /// touch.
    fn mutate_node(&mut self, id: NodeId, f: impl FnOnce(&mut NodeData)) -> Result<()> {
        self.ensure_writable()?;
        // Fast path: the node is already in our write set.
        if let Some(state) = self.write_set.as_ref().and_then(|ws| ws.node_state(id)) {
            match state {
                Some(data) => {
                    let mut new = data.clone();
                    f(&mut new);
                    self.write_set_mut()?.update_node(id, None, new);
                    self.db.metrics.record_write();
                    return Ok(());
                }
                None => return Err(DbError::NodeNotFound(id)),
            }
        }
        // First touch: take the long write lock, then verify the snapshot
        // is still the newest committed state, then capture the pre-image.
        self.write_lock(LockKey::node(id.raw()), None)?;
        self.ensure_node_unchanged(id)?;
        let Some((before, before_ts)) = self.node_pre_image(id)? else {
            return Err(DbError::NodeNotFound(id));
        };
        let mut new = (*before).clone();
        f(&mut new);
        self.write_set_mut()?
            .update_node(id, Some((before, before_ts)), new);
        self.db.metrics.record_write();
        Ok(())
    }

    /// Sets (or replaces) a property on a node.
    pub fn set_node_property(
        &mut self,
        id: NodeId,
        name: &str,
        value: PropertyValue,
    ) -> Result<()> {
        let token = self.property_key_token(name)?;
        self.mutate_node(id, |data| {
            data.properties.insert(token, value);
        })
    }

    /// Removes a property from a node (a no-op if absent).
    pub fn remove_node_property(&mut self, id: NodeId, name: &str) -> Result<()> {
        let token = self.property_key_token(name)?;
        self.mutate_node(id, |data| {
            data.properties.remove(&token);
        })
    }

    /// Adds a label to a node (a no-op if already present).
    pub fn add_label(&mut self, id: NodeId, label: &str) -> Result<()> {
        let token = self.label_token(label)?;
        self.mutate_node(id, |data| {
            if !data.labels.contains(&token) {
                data.labels.push(token);
            }
        })
    }

    /// Removes a label from a node (a no-op if absent).
    pub fn remove_label(&mut self, id: NodeId, label: &str) -> Result<()> {
        let token = self.label_token(label)?;
        self.mutate_node(id, |data| {
            data.labels.retain(|l| *l != token);
        })
    }

    /// Deletes a node. The node must have no relationships visible to this
    /// transaction (delete them first, as in Neo4j).
    pub fn delete_node(&mut self, id: NodeId) -> Result<()> {
        self.ensure_writable()?;
        // The node must exist in our view.
        let exists_in_ws = match self.write_set.as_ref().and_then(|ws| ws.node_state(id)) {
            Some(Some(_)) => true,
            Some(None) => return Err(DbError::NodeNotFound(id)),
            None => false,
        };
        // It must have no visible relationships left.
        if self.degree(id, Direction::Both)? > 0 {
            return Err(DbError::NodeHasRelationships(id));
        }
        if exists_in_ws {
            self.write_set_mut()?.delete_node(id, None);
            self.db.metrics.record_write();
            return Ok(());
        }
        self.write_lock(LockKey::node(id.raw()), None)?;
        self.ensure_node_unchanged(id)?;
        let Some((before, before_ts)) = self.node_pre_image(id)? else {
            return Err(DbError::NodeNotFound(id));
        };
        self.write_set_mut()?
            .delete_node(id, Some((before, before_ts)));
        self.db.metrics.record_write();
        Ok(())
    }

    // ------------------------------------------------------------------
    // Relationship writes
    // ------------------------------------------------------------------

    /// Creates a relationship between two nodes, returning its ID.
    ///
    /// Both endpoint nodes are write-locked (as in Neo4j, where creating a
    /// relationship locks its endpoints) to serialise against concurrent
    /// node deletion; their versions are not otherwise modified.
    pub fn create_relationship(
        &mut self,
        source: NodeId,
        target: NodeId,
        rel_type: &str,
        properties: &[(&str, PropertyValue)],
    ) -> Result<RelationshipId> {
        self.ensure_writable()?;
        let type_token = self.rel_type_token(rel_type)?;
        let mut props = BTreeMap::new();
        for (name, value) in properties {
            props.insert(self.property_key_token(name)?, value.clone());
        }
        if self.visible_node(source)?.is_none() {
            return Err(DbError::NodeNotFound(source));
        }
        if self.visible_node(target)?.is_none() {
            return Err(DbError::NodeNotFound(target));
        }
        // Lock the endpoints (no stale-snapshot check: adding a
        // relationship does not conflict with property updates on the
        // endpoints) and the new relationship itself.
        self.write_lock(LockKey::node(source.raw()), None)?;
        if target != source {
            self.write_lock(LockKey::node(target.raw()), None)?;
        }
        let id = self.db.allocate_relationship_id();
        self.write_lock(LockKey::relationship(id.raw()), None)?;
        self.write_set_mut()?
            .create_relationship(id, RelationshipData::new(source, target, type_token, props));
        self.db.metrics.record_write();
        Ok(id)
    }

    /// Applies a mutation to a relationship's properties.
    fn mutate_relationship(
        &mut self,
        id: RelationshipId,
        f: impl FnOnce(&mut RelationshipData),
    ) -> Result<()> {
        self.ensure_writable()?;
        if let Some(state) = self
            .write_set
            .as_ref()
            .and_then(|ws| ws.relationship_state(id))
        {
            match state {
                Some(data) => {
                    let mut new = data.clone();
                    f(&mut new);
                    self.write_set_mut()?.update_relationship(id, None, new);
                    self.db.metrics.record_write();
                    return Ok(());
                }
                None => return Err(DbError::RelationshipNotFound(id)),
            }
        }
        self.write_lock(LockKey::relationship(id.raw()), None)?;
        self.ensure_relationship_unchanged(id)?;
        let Some((before, before_ts)) = self.relationship_pre_image(id)? else {
            return Err(DbError::RelationshipNotFound(id));
        };
        let mut new = (*before).clone();
        f(&mut new);
        self.write_set_mut()?
            .update_relationship(id, Some((before, before_ts)), new);
        self.db.metrics.record_write();
        Ok(())
    }

    /// Sets (or replaces) a property on a relationship.
    pub fn set_relationship_property(
        &mut self,
        id: RelationshipId,
        name: &str,
        value: PropertyValue,
    ) -> Result<()> {
        let token = self.property_key_token(name)?;
        self.mutate_relationship(id, |data| {
            data.properties.insert(token, value);
        })
    }

    /// Removes a property from a relationship (a no-op if absent).
    pub fn remove_relationship_property(&mut self, id: RelationshipId, name: &str) -> Result<()> {
        let token = self.property_key_token(name)?;
        self.mutate_relationship(id, |data| {
            data.properties.remove(&token);
        })
    }

    /// Deletes a relationship.
    pub fn delete_relationship(&mut self, id: RelationshipId) -> Result<()> {
        self.ensure_writable()?;
        if let Some(state) = self
            .write_set
            .as_ref()
            .and_then(|ws| ws.relationship_state(id))
        {
            match state {
                Some(_) => {
                    self.write_set_mut()?.delete_relationship(id, None);
                    self.db.metrics.record_write();
                    return Ok(());
                }
                None => return Err(DbError::RelationshipNotFound(id)),
            }
        }
        self.write_lock(LockKey::relationship(id.raw()), None)?;
        self.ensure_relationship_unchanged(id)?;
        let Some((before, before_ts)) = self.relationship_pre_image(id)? else {
            return Err(DbError::RelationshipNotFound(id));
        };
        // Lock the endpoints to serialise against concurrent node deletion.
        self.write_lock(LockKey::node(before.source.raw()), None)?;
        if before.target != before.source {
            self.write_lock(LockKey::node(before.target.raw()), None)?;
        }
        self.write_set_mut()?
            .delete_relationship(id, Some((before, before_ts)));
        self.db.metrics.record_write();
        Ok(())
    }

    // ------------------------------------------------------------------
    // Conversions
    // ------------------------------------------------------------------

    pub(crate) fn to_public_node(&self, id: NodeId, data: &NodeData) -> Node {
        Node {
            id,
            labels: data.labels.iter().map(|l| self.label_name(*l)).collect(),
            properties: data
                .properties
                .iter()
                .map(|(k, v)| (self.property_key_name(*k), v.clone()))
                .collect(),
        }
    }

    pub(crate) fn to_public_relationship(
        &self,
        id: RelationshipId,
        data: &RelationshipData,
    ) -> Relationship {
        Relationship {
            id,
            source: data.source,
            target: data.target,
            rel_type: self.rel_type_name(data.rel_type),
            properties: data
                .properties
                .iter()
                .map(|(k, v)| (self.property_key_name(*k), v.clone()))
                .collect(),
        }
    }
}

impl Drop for Transaction {
    fn drop(&mut self) {
        self.rollback_in_place();
    }
}

impl std::fmt::Debug for Transaction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Transaction")
            .field("id", &self.id)
            .field("start_ts", &self.start_ts)
            .field("isolation", &self.isolation)
            .field("conflict_strategy", &self.conflict_strategy)
            .field("read_only", &self.is_read_only())
            .field("state", &self.state)
            .field("pending_writes", &self.pending_writes())
            .finish()
    }
}
