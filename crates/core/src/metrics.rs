//! Database-level metrics, used by the experiments and exposed through
//! [`crate::db::GraphDb::metrics`].

use std::sync::atomic::{AtomicU64, Ordering};

/// Internal atomic counters.
#[derive(Debug, Default)]
pub struct DbMetrics {
    begins: AtomicU64,
    commits: AtomicU64,
    read_only_commits: AtomicU64,
    rollbacks: AtomicU64,
    conflict_aborts: AtomicU64,
    reads: AtomicU64,
    writes: AtomicU64,
    gc_runs: AtomicU64,
    versions_reclaimed: AtomicU64,
    chunk_refills: AtomicU64,
    candidate_buffer_peak: AtomicU64,
    shard_key_buffer_peak: AtomicU64,
    cursor_restarts: AtomicU64,
    wal_syncs: AtomicU64,
    group_commit_batches: AtomicU64,
    group_commit_batch_size_max: AtomicU64,
    store_apply_shard_conflicts: AtomicU64,
    store_apply_concurrency_peak: AtomicU64,
    wal_abort_records: AtomicU64,
    predicate_pushdowns: AtomicU64,
    decode_filter_fallbacks: AtomicU64,
    property_decodes: AtomicU64,
}

/// A point-in-time snapshot of [`DbMetrics`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DbMetricsSnapshot {
    /// Transactions started.
    pub begins: u64,
    /// Transactions committed (including read-only ones).
    pub commits: u64,
    /// Read-only commits (no write set).
    pub read_only_commits: u64,
    /// Transactions rolled back explicitly or on drop.
    pub rollbacks: u64,
    /// Transactions aborted because of write-write conflicts, deadlocks or
    /// lock timeouts.
    pub conflict_aborts: u64,
    /// Entity reads served.
    pub reads: u64,
    /// Entity writes buffered.
    pub writes: u64,
    /// Garbage-collection runs.
    pub gc_runs: u64,
    /// Versions reclaimed by garbage collection.
    pub versions_reclaimed: u64,
    /// Chunk refills performed by the streaming read cursors.
    pub chunk_refills: u64,
    /// Largest number of candidate IDs any single cursor refill buffered —
    /// the knob the chunked redesign bounds: with chunk size `c`, this
    /// never exceeds `c` no matter how large the scanned label, posting
    /// list or relationship chain is.
    pub candidate_buffer_peak: u64,
    /// Largest MVCC cache-shard key page a whole-graph scan buffered in
    /// one refill. Whole-graph scans (`all_nodes`, `all_relationships`)
    /// page each shard through sorted range-resume pages, so this peak is
    /// bounded by the scan's chunk size — not by the largest shard, no
    /// matter how skewed the key distribution is.
    pub shard_key_buffer_peak: u64,
    /// Times a chain cursor had to restart from the head because a
    /// concurrent commit rewired the chain under it.
    pub cursor_restarts: u64,
    /// WAL `fsync`s issued by the commit pipeline. Under group commit this
    /// is the number that proves batching: with concurrent committers it
    /// stays strictly below the committed-transaction count, because one
    /// leader sync covers every committer parked on the batcher.
    pub wal_syncs: u64,
    /// Group-commit batches completed (leader sync rounds). Equal to
    /// `wal_syncs` when every sync goes through the batcher.
    pub group_commit_batches: u64,
    /// Largest number of commit records any single group-commit sync made
    /// durable at once.
    pub group_commit_batch_size_max: u64,
    /// Store-apply shard acquisitions that found the shard already held by
    /// another in-flight commit (overlapping footprints queueing).
    pub store_apply_shard_conflicts: u64,
    /// Largest number of commits simultaneously inside their stage-C store
    /// flush-through. Above 1 proves disjoint-footprint commits really
    /// applied to the persistent store concurrently (E13).
    pub store_apply_concurrency_peak: u64,
    /// Abort (invalidation) records appended to the WAL for commits failed
    /// after their record reached the log — each one is a transaction that
    /// recovery replay must skip.
    pub wal_abort_records: u64,
    /// Property predicates (equality or range) the query planner compiled
    /// into a versioned-index source — executed as postings/range-postings
    /// scans, with **zero** per-candidate property decoding.
    pub predicate_pushdowns: u64,
    /// Property predicate stages the planner had to execute as
    /// decode-based filters (no usable index range, planner estimate
    /// favoured the other source, opaque predicate closure, or pushdown
    /// disabled). Together with `predicate_pushdowns` this proves which
    /// path a filtered scan ran.
    pub decode_filter_fallbacks: u64,
    /// Per-candidate property materialisations performed by decode-based
    /// filter stages. The E14 acceptance gauge: a pushed-down predicate
    /// performs none of these, a decode fallback pays one per candidate
    /// scanned.
    pub property_decodes: u64,
}

impl DbMetricsSnapshot {
    /// Abort rate over all completed transactions.
    pub fn abort_rate(&self) -> f64 {
        let finished = self.commits + self.rollbacks + self.conflict_aborts;
        if finished == 0 {
            0.0
        } else {
            self.conflict_aborts as f64 / finished as f64
        }
    }
}

impl DbMetrics {
    /// Creates zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn record_begin(&self) {
        self.begins.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_commit(&self, read_only: bool) {
        self.commits.fetch_add(1, Ordering::Relaxed);
        if read_only {
            self.read_only_commits.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub(crate) fn record_rollback(&self) {
        self.rollbacks.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_conflict_abort(&self) {
        self.conflict_aborts.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_read(&self) {
        self.reads.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_write(&self) {
        self.writes.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_gc(&self, versions_reclaimed: u64) {
        self.gc_runs.fetch_add(1, Ordering::Relaxed);
        self.versions_reclaimed
            .fetch_add(versions_reclaimed, Ordering::Relaxed);
    }

    pub(crate) fn record_chunk_refill(&self, buffered: usize) {
        self.chunk_refills.fetch_add(1, Ordering::Relaxed);
        self.candidate_buffer_peak
            .fetch_max(buffered as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_shard_page(&self, buffered: usize) {
        self.shard_key_buffer_peak
            .fetch_max(buffered as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_cursor_restarts(&self, restarts: u64) {
        if restarts > 0 {
            self.cursor_restarts.fetch_add(restarts, Ordering::Relaxed);
        }
    }

    /// Records one WAL sync that made `batch_size` commit records durable.
    pub(crate) fn record_group_sync(&self, batch_size: u64) {
        self.wal_syncs.fetch_add(1, Ordering::Relaxed);
        self.group_commit_batches.fetch_add(1, Ordering::Relaxed);
        self.group_commit_batch_size_max
            .fetch_max(batch_size, Ordering::Relaxed);
    }

    /// Records one contended store-apply shard acquisition.
    pub(crate) fn record_store_apply_conflict(&self) {
        self.store_apply_shard_conflicts
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Feeds the store-apply concurrency peak with the current number of
    /// commits inside their flush-through.
    pub(crate) fn record_store_apply_concurrency(&self, in_flight: u64) {
        self.store_apply_concurrency_peak
            .fetch_max(in_flight, Ordering::Relaxed);
    }

    /// Records one abort record appended to the WAL.
    pub(crate) fn record_wal_abort(&self) {
        self.wal_abort_records.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one property predicate compiled to an index source.
    pub(crate) fn record_predicate_pushdown(&self) {
        self.predicate_pushdowns.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one property predicate stage compiled to a decode filter.
    pub(crate) fn record_decode_filter_fallback(&self) {
        self.decode_filter_fallbacks.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one per-candidate property materialisation by a
    /// decode-based filter stage.
    pub(crate) fn record_property_decode(&self) {
        self.property_decodes.fetch_add(1, Ordering::Relaxed);
    }

    /// Takes a snapshot of every counter.
    pub fn snapshot(&self) -> DbMetricsSnapshot {
        DbMetricsSnapshot {
            begins: self.begins.load(Ordering::Relaxed),
            commits: self.commits.load(Ordering::Relaxed),
            read_only_commits: self.read_only_commits.load(Ordering::Relaxed),
            rollbacks: self.rollbacks.load(Ordering::Relaxed),
            conflict_aborts: self.conflict_aborts.load(Ordering::Relaxed),
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            gc_runs: self.gc_runs.load(Ordering::Relaxed),
            versions_reclaimed: self.versions_reclaimed.load(Ordering::Relaxed),
            chunk_refills: self.chunk_refills.load(Ordering::Relaxed),
            candidate_buffer_peak: self.candidate_buffer_peak.load(Ordering::Relaxed),
            shard_key_buffer_peak: self.shard_key_buffer_peak.load(Ordering::Relaxed),
            cursor_restarts: self.cursor_restarts.load(Ordering::Relaxed),
            wal_syncs: self.wal_syncs.load(Ordering::Relaxed),
            group_commit_batches: self.group_commit_batches.load(Ordering::Relaxed),
            group_commit_batch_size_max: self.group_commit_batch_size_max.load(Ordering::Relaxed),
            store_apply_shard_conflicts: self.store_apply_shard_conflicts.load(Ordering::Relaxed),
            store_apply_concurrency_peak: self.store_apply_concurrency_peak.load(Ordering::Relaxed),
            wal_abort_records: self.wal_abort_records.load(Ordering::Relaxed),
            predicate_pushdowns: self.predicate_pushdowns.load(Ordering::Relaxed),
            decode_filter_fallbacks: self.decode_filter_fallbacks.load(Ordering::Relaxed),
            property_decodes: self.property_decodes.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = DbMetrics::new();
        m.record_begin();
        m.record_begin();
        m.record_commit(false);
        m.record_commit(true);
        m.record_rollback();
        m.record_conflict_abort();
        m.record_read();
        m.record_write();
        m.record_gc(5);
        m.record_chunk_refill(3);
        m.record_chunk_refill(7);
        m.record_chunk_refill(2);
        m.record_shard_page(31);
        m.record_shard_page(12);
        m.record_cursor_restarts(0);
        m.record_cursor_restarts(2);
        m.record_group_sync(4);
        m.record_group_sync(9);
        m.record_group_sync(1);
        m.record_store_apply_conflict();
        m.record_store_apply_conflict();
        m.record_store_apply_concurrency(3);
        m.record_store_apply_concurrency(1);
        m.record_wal_abort();
        m.record_predicate_pushdown();
        m.record_decode_filter_fallback();
        m.record_decode_filter_fallback();
        m.record_property_decode();
        m.record_property_decode();
        m.record_property_decode();
        let s = m.snapshot();
        assert_eq!(s.begins, 2);
        assert_eq!(s.commits, 2);
        assert_eq!(s.read_only_commits, 1);
        assert_eq!(s.rollbacks, 1);
        assert_eq!(s.conflict_aborts, 1);
        assert_eq!(s.reads, 1);
        assert_eq!(s.writes, 1);
        assert_eq!(s.gc_runs, 1);
        assert_eq!(s.versions_reclaimed, 5);
        assert_eq!(s.chunk_refills, 3);
        assert_eq!(s.candidate_buffer_peak, 7, "peak is a max, not a sum");
        assert_eq!(s.shard_key_buffer_peak, 31);
        assert_eq!(s.cursor_restarts, 2);
        assert_eq!(s.wal_syncs, 3);
        assert_eq!(s.group_commit_batches, 3);
        assert_eq!(s.group_commit_batch_size_max, 9, "max, not sum");
        assert_eq!(s.store_apply_shard_conflicts, 2);
        assert_eq!(s.store_apply_concurrency_peak, 3, "peak is a max");
        assert_eq!(s.wal_abort_records, 1);
        assert_eq!(s.predicate_pushdowns, 1);
        assert_eq!(s.decode_filter_fallbacks, 2);
        assert_eq!(s.property_decodes, 3);
    }

    #[test]
    fn abort_rate() {
        let s = DbMetricsSnapshot {
            commits: 8,
            conflict_aborts: 2,
            ..Default::default()
        };
        assert!((s.abort_rate() - 0.2).abs() < 1e-9);
        assert_eq!(DbMetricsSnapshot::default().abort_rate(), 0.0);
    }
}
