//! Database-level metrics, used by the experiments and exposed through
//! [`crate::db::GraphDb::metrics`].

use std::sync::atomic::{AtomicU64, Ordering};

/// Internal atomic counters.
#[derive(Debug, Default)]
pub struct DbMetrics {
    begins: AtomicU64,
    commits: AtomicU64,
    read_only_commits: AtomicU64,
    rollbacks: AtomicU64,
    conflict_aborts: AtomicU64,
    reads: AtomicU64,
    writes: AtomicU64,
    gc_runs: AtomicU64,
    versions_reclaimed: AtomicU64,
    chunk_refills: AtomicU64,
    candidate_buffer_peak: AtomicU64,
    shard_key_buffer_peak: AtomicU64,
    cursor_restarts: AtomicU64,
    wal_syncs: AtomicU64,
    group_commit_batches: AtomicU64,
    group_commit_batch_size_max: AtomicU64,
    store_apply_shard_conflicts: AtomicU64,
    store_apply_concurrency_peak: AtomicU64,
    wal_abort_records: AtomicU64,
    predicate_pushdowns: AtomicU64,
    decode_filter_fallbacks: AtomicU64,
    property_decodes: AtomicU64,
    ordered_index_streams: AtomicU64,
    topk_early_exits: AtomicU64,
    intersection_pushdowns: AtomicU64,
    intersection_leg_skips: AtomicU64,
    write_retries: AtomicU64,
    write_retry_backoff_us: AtomicU64,
    checkpoint_epochs: AtomicU64,
    checkpoint_pages_flushed: AtomicU64,
    checkpoint_concurrent_commits: AtomicU64,
    verify_runs: AtomicU64,
    pages_verified: AtomicU64,
    verify_divergences: AtomicU64,
}

/// A point-in-time snapshot of [`DbMetrics`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DbMetricsSnapshot {
    /// Transactions started.
    pub begins: u64,
    /// Transactions committed (including read-only ones).
    pub commits: u64,
    /// Read-only commits (no write set).
    pub read_only_commits: u64,
    /// Transactions rolled back explicitly or on drop.
    pub rollbacks: u64,
    /// Transactions aborted because of write-write conflicts, deadlocks or
    /// lock timeouts.
    pub conflict_aborts: u64,
    /// Entity reads served.
    pub reads: u64,
    /// Entity writes buffered.
    pub writes: u64,
    /// Garbage-collection runs.
    pub gc_runs: u64,
    /// Versions reclaimed by garbage collection.
    pub versions_reclaimed: u64,
    /// Chunk refills performed by the streaming read cursors.
    pub chunk_refills: u64,
    /// Largest number of candidate IDs any single cursor refill buffered —
    /// the knob the chunked redesign bounds: with chunk size `c`, this
    /// never exceeds `c` no matter how large the scanned label, posting
    /// list or relationship chain is.
    pub candidate_buffer_peak: u64,
    /// Largest MVCC cache-shard key page a whole-graph scan buffered in
    /// one refill. Whole-graph scans (`all_nodes`, `all_relationships`)
    /// page each shard through sorted range-resume pages, so this peak is
    /// bounded by the scan's chunk size — not by the largest shard, no
    /// matter how skewed the key distribution is.
    pub shard_key_buffer_peak: u64,
    /// Times a chain cursor had to restart from the head because a
    /// concurrent commit rewired the chain under it.
    pub cursor_restarts: u64,
    /// WAL `fsync`s issued by the commit pipeline. Under group commit this
    /// is the number that proves batching: with concurrent committers it
    /// stays strictly below the committed-transaction count, because one
    /// leader sync covers every committer parked on the batcher.
    pub wal_syncs: u64,
    /// Group-commit batches completed (leader sync rounds). Equal to
    /// `wal_syncs` when every sync goes through the batcher.
    pub group_commit_batches: u64,
    /// Largest number of commit records any single group-commit sync made
    /// durable at once.
    pub group_commit_batch_size_max: u64,
    /// Store-apply shard acquisitions that found the shard already held by
    /// another in-flight commit (overlapping footprints queueing).
    pub store_apply_shard_conflicts: u64,
    /// Largest number of commits simultaneously inside their stage-C store
    /// flush-through. Above 1 proves disjoint-footprint commits really
    /// applied to the persistent store concurrently (E13).
    pub store_apply_concurrency_peak: u64,
    /// Abort (invalidation) records appended to the WAL for commits failed
    /// after their record reached the log — each one is a transaction that
    /// recovery replay must skip.
    pub wal_abort_records: u64,
    /// Property predicates (equality or range) the query planner compiled
    /// into a versioned-index source — executed as postings/range-postings
    /// scans, with **zero** per-candidate property decoding.
    pub predicate_pushdowns: u64,
    /// Property predicate stages the planner had to execute as
    /// decode-based filters (no usable index range, planner estimate
    /// favoured the other source, opaque predicate closure, or pushdown
    /// disabled). Together with `predicate_pushdowns` this proves which
    /// path a filtered scan ran.
    pub decode_filter_fallbacks: u64,
    /// Per-candidate property materialisations performed by decode-based
    /// filter stages. The E14 acceptance gauge: a pushed-down predicate
    /// performs none of these, a decode fallback pays one per candidate
    /// scanned.
    pub property_decodes: u64,
    /// Queries whose `order_by`/`top_k` the planner served straight off
    /// the index's sorted key walk — no sort buffer was allocated. A query
    /// that had to buffer-and-sort instead does not count here.
    pub ordered_index_streams: u64,
    /// Index-streamed top-k queries that stopped paging the source before
    /// it was exhausted — the early-exit the ordered walk makes possible.
    pub topk_early_exits: u64,
    /// Queries whose multi-predicate conjunction compiled to a
    /// sorted-posting intersection (one driving range cursor plus
    /// membership legs) instead of an index scan + decode-filter chain.
    pub intersection_pushdowns: u64,
    /// Driver candidates an intersection discarded via a cheap posting
    /// membership probe — each one a candidate the decode-filter chain
    /// would have paid a `property_decodes` for.
    pub intersection_leg_skips: u64,
    /// Conflict retries performed by [`crate::GraphDb::write_with_retry`]
    /// (one per aborted-and-retried attempt, across all callers).
    pub write_retries: u64,
    /// Total microseconds [`crate::GraphDb::write_with_retry`] spent
    /// sleeping in its jittered backoff. Together with `write_retries`
    /// this exposes how much wall-clock contention costs writers.
    pub write_retry_backoff_us: u64,
    /// Fuzzy checkpoints completed (each advances the checkpoint epoch
    /// and the WAL retention watermark).
    pub checkpoint_epochs: u64,
    /// Dirty store pages written back by checkpoint flush cursors.
    pub checkpoint_pages_flushed: u64,
    /// Commits that completed *while* a checkpoint was running — the
    /// headline proof that checkpoints no longer quiesce the commit
    /// pipeline.
    pub checkpoint_concurrent_commits: u64,
    /// WAL segment files created (rotation) over the database's lifetime.
    pub wal_segments_created: u64,
    /// WAL segment files deleted by the retention watermark after a
    /// checkpoint covered them.
    pub wal_segments_deleted: u64,
    /// Bytes of WAL currently retained across all segment files. Bounded
    /// by checkpointing: after a checkpoint releases old segments this
    /// drops back to the active suffix.
    pub wal_retained_bytes: u64,
    /// Online-verifier runs completed ([`crate::GraphDb::verify`]).
    pub verify_runs: u64,
    /// Store pages whose trailer checksum the verifier examined, summed
    /// over all runs.
    pub pages_verified: u64,
    /// Findings the verifier reported, summed over all runs and classes
    /// (bad page CRC, dangling chain pointer, index↔store divergence,
    /// orphaned posting).
    pub verify_divergences: u64,
    /// Store pages that failed their trailer checksum on fault-in. Owned
    /// by the storage layer and merged in at [`crate::GraphDb::metrics`]
    /// (zero in a bare [`DbMetrics::snapshot`]).
    pub page_checksum_failures: u64,
    /// Checksum-failed pages recovery rebuilt from WAL replay (torn
    /// writes fully covered by the log). Storage-owned, merged in at
    /// [`crate::GraphDb::metrics`].
    pub torn_pages_recovered: u64,
}

/// Applies a macro to every counter of [`DbMetricsSnapshot`], by name.
/// Both halves of the text codec expand from this one list, and an
/// exhaustive destructuring check below makes a snapshot field that is
/// missing from the list a compile error instead of a counter that
/// silently falls out of the wire format.
macro_rules! for_each_counter {
    ($m:ident) => {
        $m! {
            begins,
            commits,
            read_only_commits,
            rollbacks,
            conflict_aborts,
            reads,
            writes,
            gc_runs,
            versions_reclaimed,
            chunk_refills,
            candidate_buffer_peak,
            shard_key_buffer_peak,
            cursor_restarts,
            wal_syncs,
            group_commit_batches,
            group_commit_batch_size_max,
            store_apply_shard_conflicts,
            store_apply_concurrency_peak,
            wal_abort_records,
            predicate_pushdowns,
            decode_filter_fallbacks,
            property_decodes,
            ordered_index_streams,
            topk_early_exits,
            intersection_pushdowns,
            intersection_leg_skips,
            write_retries,
            write_retry_backoff_us,
            checkpoint_epochs,
            checkpoint_pages_flushed,
            checkpoint_concurrent_commits,
            wal_segments_created,
            wal_segments_deleted,
            wal_retained_bytes,
            verify_runs,
            pages_verified,
            verify_divergences,
            page_checksum_failures,
            torn_pages_recovered
        }
    };
}

impl DbMetricsSnapshot {
    /// Abort rate over all completed transactions.
    pub fn abort_rate(&self) -> f64 {
        let finished = self.commits + self.rollbacks + self.conflict_aborts;
        if finished == 0 {
            0.0
        } else {
            self.conflict_aborts as f64 / finished as f64
        }
    }

    /// Encodes the snapshot in the stable plaintext metrics format: one
    /// `name value` line per counter, in a fixed order. This is the format
    /// the server's `METRICS` command emits (with its own `server_*` lines
    /// alongside) and the format scrapers should parse; it round-trips
    /// through [`DbMetricsSnapshot::from_text`].
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        macro_rules! emit {
            ($($field:ident),*) => {
                $(
                    out.push_str(stringify!($field));
                    out.push(' ');
                    out.push_str(&self.$field.to_string());
                    out.push('\n');
                )*
            };
        }
        for_each_counter!(emit);
        out
    }

    /// Parses the plaintext metrics format produced by
    /// [`DbMetricsSnapshot::to_text`]. Blank lines and `#` comment lines
    /// are skipped; unknown counter names are ignored (so a scraper built
    /// against this version keeps working when later versions add
    /// counters); counters absent from the text stay zero. A line that is
    /// not `name value` with an unsigned integer value is an error.
    pub fn from_text(text: &str) -> std::result::Result<Self, String> {
        let mut snapshot = DbMetricsSnapshot::default();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (name, value) = line
                .split_once(' ')
                .ok_or_else(|| format!("malformed metrics line {line:?}"))?;
            let value: u64 = value
                .trim()
                .parse()
                .map_err(|_| format!("non-integer value in metrics line {line:?}"))?;
            macro_rules! assign {
                ($($field:ident),*) => {
                    match name {
                        $(stringify!($field) => snapshot.$field = value,)*
                        _ => {}
                    }
                };
            }
            for_each_counter!(assign);
        }
        Ok(snapshot)
    }
}

// The exhaustiveness guard behind `for_each_counter!`: destructuring
// without `..` stops compiling the moment a new snapshot field is not in
// the list.
macro_rules! counter_list_guard {
    ($($field:ident),*) => {
        #[allow(dead_code)]
        fn _counter_list_is_exhaustive(s: DbMetricsSnapshot) {
            let DbMetricsSnapshot { $($field: _,)* } = s;
        }
    };
}
for_each_counter!(counter_list_guard);

impl DbMetrics {
    /// Creates zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn record_begin(&self) {
        self.begins.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_commit(&self, read_only: bool) {
        self.commits.fetch_add(1, Ordering::Relaxed);
        if read_only {
            self.read_only_commits.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub(crate) fn record_rollback(&self) {
        self.rollbacks.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_conflict_abort(&self) {
        self.conflict_aborts.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_read(&self) {
        self.reads.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_write(&self) {
        self.writes.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_gc(&self, versions_reclaimed: u64) {
        self.gc_runs.fetch_add(1, Ordering::Relaxed);
        self.versions_reclaimed
            .fetch_add(versions_reclaimed, Ordering::Relaxed);
    }

    pub(crate) fn record_chunk_refill(&self, buffered: usize) {
        self.chunk_refills.fetch_add(1, Ordering::Relaxed);
        self.candidate_buffer_peak
            .fetch_max(buffered as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_shard_page(&self, buffered: usize) {
        self.shard_key_buffer_peak
            .fetch_max(buffered as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_cursor_restarts(&self, restarts: u64) {
        if restarts > 0 {
            self.cursor_restarts.fetch_add(restarts, Ordering::Relaxed);
        }
    }

    /// Records one WAL sync that made `batch_size` commit records durable.
    pub(crate) fn record_group_sync(&self, batch_size: u64) {
        self.wal_syncs.fetch_add(1, Ordering::Relaxed);
        self.group_commit_batches.fetch_add(1, Ordering::Relaxed);
        self.group_commit_batch_size_max
            .fetch_max(batch_size, Ordering::Relaxed);
    }

    /// Records one contended store-apply shard acquisition.
    pub(crate) fn record_store_apply_conflict(&self) {
        self.store_apply_shard_conflicts
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Feeds the store-apply concurrency peak with the current number of
    /// commits inside their flush-through.
    pub(crate) fn record_store_apply_concurrency(&self, in_flight: u64) {
        self.store_apply_concurrency_peak
            .fetch_max(in_flight, Ordering::Relaxed);
    }

    /// Records one abort record appended to the WAL.
    pub(crate) fn record_wal_abort(&self) {
        self.wal_abort_records.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one property predicate compiled to an index source.
    pub(crate) fn record_predicate_pushdown(&self) {
        self.predicate_pushdowns.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one property predicate stage compiled to a decode filter.
    pub(crate) fn record_decode_filter_fallback(&self) {
        self.decode_filter_fallbacks.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one per-candidate property materialisation by a
    /// decode-based filter stage.
    pub(crate) fn record_property_decode(&self) {
        self.property_decodes.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one `order_by`/`top_k` served straight off the index's
    /// sorted key walk, with no sort buffer.
    pub(crate) fn record_ordered_index_stream(&self) {
        self.ordered_index_streams.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one index-streamed top-k that stopped paging its source
    /// before the source was exhausted.
    pub(crate) fn record_topk_early_exit(&self) {
        self.topk_early_exits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one multi-predicate conjunction compiled to a
    /// sorted-posting intersection.
    pub(crate) fn record_intersection_pushdown(&self) {
        self.intersection_pushdowns.fetch_add(1, Ordering::Relaxed);
    }

    /// Records driver candidates an intersection's membership legs
    /// discarded without decoding any property.
    pub(crate) fn record_intersection_leg_skips(&self, skipped: u64) {
        if skipped > 0 {
            self.intersection_leg_skips
                .fetch_add(skipped, Ordering::Relaxed);
        }
    }

    /// Feeds the candidate-buffer peak with the size of a sort-fallback
    /// buffer (no refill is counted — the rows were already paged).
    pub(crate) fn record_candidate_buffer(&self, buffered: usize) {
        self.candidate_buffer_peak
            .fetch_max(buffered as u64, Ordering::Relaxed);
    }

    /// Records one conflict retry of `write_with_retry` and the jittered
    /// backoff it is about to sleep.
    pub(crate) fn record_write_retry(&self, backoff_us: u64) {
        self.write_retries.fetch_add(1, Ordering::Relaxed);
        self.write_retry_backoff_us
            .fetch_add(backoff_us, Ordering::Relaxed);
    }

    /// Records one completed fuzzy checkpoint: the pages its flush cursor
    /// wrote back and the commits that completed while it ran.
    pub(crate) fn record_checkpoint(&self, pages_flushed: u64, concurrent_commits: u64) {
        self.checkpoint_epochs.fetch_add(1, Ordering::Relaxed);
        self.checkpoint_pages_flushed
            .fetch_add(pages_flushed, Ordering::Relaxed);
        self.checkpoint_concurrent_commits
            .fetch_add(concurrent_commits, Ordering::Relaxed);
    }

    /// Records one completed online-verifier run: the pages it examined
    /// and the findings it reported (all classes).
    pub(crate) fn record_verify(&self, pages: u64, divergences: u64) {
        self.verify_runs.fetch_add(1, Ordering::Relaxed);
        self.pages_verified.fetch_add(pages, Ordering::Relaxed);
        self.verify_divergences
            .fetch_add(divergences, Ordering::Relaxed);
    }

    /// Takes a snapshot of every counter. The `wal_segments_*` /
    /// `wal_retained_bytes` gauges are owned by the WAL itself — and the
    /// `page_checksum_failures` / `torn_pages_recovered` gauges by the
    /// storage layer — so they stay zero here;
    /// [`crate::GraphDb::metrics`] merges them in.
    pub fn snapshot(&self) -> DbMetricsSnapshot {
        DbMetricsSnapshot {
            begins: self.begins.load(Ordering::Relaxed),
            commits: self.commits.load(Ordering::Relaxed),
            read_only_commits: self.read_only_commits.load(Ordering::Relaxed),
            rollbacks: self.rollbacks.load(Ordering::Relaxed),
            conflict_aborts: self.conflict_aborts.load(Ordering::Relaxed),
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            gc_runs: self.gc_runs.load(Ordering::Relaxed),
            versions_reclaimed: self.versions_reclaimed.load(Ordering::Relaxed),
            chunk_refills: self.chunk_refills.load(Ordering::Relaxed),
            candidate_buffer_peak: self.candidate_buffer_peak.load(Ordering::Relaxed),
            shard_key_buffer_peak: self.shard_key_buffer_peak.load(Ordering::Relaxed),
            cursor_restarts: self.cursor_restarts.load(Ordering::Relaxed),
            wal_syncs: self.wal_syncs.load(Ordering::Relaxed),
            group_commit_batches: self.group_commit_batches.load(Ordering::Relaxed),
            group_commit_batch_size_max: self.group_commit_batch_size_max.load(Ordering::Relaxed),
            store_apply_shard_conflicts: self.store_apply_shard_conflicts.load(Ordering::Relaxed),
            store_apply_concurrency_peak: self.store_apply_concurrency_peak.load(Ordering::Relaxed),
            wal_abort_records: self.wal_abort_records.load(Ordering::Relaxed),
            predicate_pushdowns: self.predicate_pushdowns.load(Ordering::Relaxed),
            decode_filter_fallbacks: self.decode_filter_fallbacks.load(Ordering::Relaxed),
            property_decodes: self.property_decodes.load(Ordering::Relaxed),
            ordered_index_streams: self.ordered_index_streams.load(Ordering::Relaxed),
            topk_early_exits: self.topk_early_exits.load(Ordering::Relaxed),
            intersection_pushdowns: self.intersection_pushdowns.load(Ordering::Relaxed),
            intersection_leg_skips: self.intersection_leg_skips.load(Ordering::Relaxed),
            write_retries: self.write_retries.load(Ordering::Relaxed),
            write_retry_backoff_us: self.write_retry_backoff_us.load(Ordering::Relaxed),
            checkpoint_epochs: self.checkpoint_epochs.load(Ordering::Relaxed),
            checkpoint_pages_flushed: self.checkpoint_pages_flushed.load(Ordering::Relaxed),
            checkpoint_concurrent_commits: self
                .checkpoint_concurrent_commits
                .load(Ordering::Relaxed),
            wal_segments_created: 0,
            wal_segments_deleted: 0,
            wal_retained_bytes: 0,
            verify_runs: self.verify_runs.load(Ordering::Relaxed),
            pages_verified: self.pages_verified.load(Ordering::Relaxed),
            verify_divergences: self.verify_divergences.load(Ordering::Relaxed),
            page_checksum_failures: 0,
            torn_pages_recovered: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = DbMetrics::new();
        m.record_begin();
        m.record_begin();
        m.record_commit(false);
        m.record_commit(true);
        m.record_rollback();
        m.record_conflict_abort();
        m.record_read();
        m.record_write();
        m.record_gc(5);
        m.record_chunk_refill(3);
        m.record_chunk_refill(7);
        m.record_chunk_refill(2);
        m.record_shard_page(31);
        m.record_shard_page(12);
        m.record_cursor_restarts(0);
        m.record_cursor_restarts(2);
        m.record_group_sync(4);
        m.record_group_sync(9);
        m.record_group_sync(1);
        m.record_store_apply_conflict();
        m.record_store_apply_conflict();
        m.record_store_apply_concurrency(3);
        m.record_store_apply_concurrency(1);
        m.record_wal_abort();
        m.record_predicate_pushdown();
        m.record_decode_filter_fallback();
        m.record_decode_filter_fallback();
        m.record_property_decode();
        m.record_property_decode();
        m.record_property_decode();
        m.record_ordered_index_stream();
        m.record_topk_early_exit();
        m.record_intersection_pushdown();
        m.record_intersection_pushdown();
        m.record_intersection_leg_skips(0);
        m.record_intersection_leg_skips(4);
        m.record_candidate_buffer(9);
        m.record_write_retry(50);
        m.record_write_retry(120);
        m.record_checkpoint(40, 3);
        m.record_checkpoint(2, 0);
        let s = m.snapshot();
        assert_eq!(s.begins, 2);
        assert_eq!(s.commits, 2);
        assert_eq!(s.read_only_commits, 1);
        assert_eq!(s.rollbacks, 1);
        assert_eq!(s.conflict_aborts, 1);
        assert_eq!(s.reads, 1);
        assert_eq!(s.writes, 1);
        assert_eq!(s.gc_runs, 1);
        assert_eq!(s.versions_reclaimed, 5);
        assert_eq!(s.chunk_refills, 3);
        assert_eq!(
            s.candidate_buffer_peak, 9,
            "peak is a max over refills and sort buffers, not a sum"
        );
        assert_eq!(s.shard_key_buffer_peak, 31);
        assert_eq!(s.cursor_restarts, 2);
        assert_eq!(s.wal_syncs, 3);
        assert_eq!(s.group_commit_batches, 3);
        assert_eq!(s.group_commit_batch_size_max, 9, "max, not sum");
        assert_eq!(s.store_apply_shard_conflicts, 2);
        assert_eq!(s.store_apply_concurrency_peak, 3, "peak is a max");
        assert_eq!(s.wal_abort_records, 1);
        assert_eq!(s.predicate_pushdowns, 1);
        assert_eq!(s.decode_filter_fallbacks, 2);
        assert_eq!(s.property_decodes, 3);
        assert_eq!(s.ordered_index_streams, 1);
        assert_eq!(s.topk_early_exits, 1);
        assert_eq!(s.intersection_pushdowns, 2);
        assert_eq!(s.intersection_leg_skips, 4);
        assert_eq!(s.write_retries, 2);
        assert_eq!(s.write_retry_backoff_us, 170, "backoff is a sum");
        assert_eq!(s.checkpoint_epochs, 2);
        assert_eq!(s.checkpoint_pages_flushed, 42, "pages are a sum");
        assert_eq!(s.checkpoint_concurrent_commits, 3);
        assert_eq!(s.wal_segments_created, 0, "WAL gauges merge at GraphDb");
    }

    /// Gives every counter a distinct non-zero value, so a counter the
    /// text codec dropped or mixed up cannot round-trip.
    fn distinct_snapshot() -> DbMetricsSnapshot {
        let mut s = DbMetricsSnapshot::default();
        let mut next = 1u64;
        macro_rules! fill {
            ($($field:ident),*) => {
                $(
                    s.$field = next;
                    next += 1;
                )*
            };
        }
        for_each_counter!(fill);
        s
    }

    #[test]
    fn text_encoding_round_trips_every_counter() {
        let s = distinct_snapshot();
        let text = s.to_text();
        let parsed = DbMetricsSnapshot::from_text(&text).unwrap();
        assert_eq!(parsed, s);
        // Stable shape: one `name value` line per counter, no extras.
        for line in text.lines() {
            let (name, value) = line.split_once(' ').expect("name value");
            assert!(!name.is_empty());
            value.parse::<u64>().expect("integer value");
        }
    }

    #[test]
    fn text_parsing_skips_comments_and_unknown_counters() {
        let text = "# scraped 2026-08-08\n\ncommits 7\nserver_sessions_active 3\nreads 2\n";
        let parsed = DbMetricsSnapshot::from_text(text).unwrap();
        assert_eq!(parsed.commits, 7);
        assert_eq!(parsed.reads, 2);
        assert_eq!(parsed.begins, 0, "absent counters stay zero");
    }

    #[test]
    fn text_parsing_rejects_malformed_lines() {
        assert!(DbMetricsSnapshot::from_text("commits").is_err());
        assert!(DbMetricsSnapshot::from_text("commits seven").is_err());
        assert!(DbMetricsSnapshot::from_text("commits -3").is_err());
    }

    #[test]
    fn abort_rate() {
        let s = DbMetricsSnapshot {
            commits: 8,
            conflict_aborts: 2,
            ..Default::default()
        };
        assert!((s.abort_rate() - 0.2).abs() < 1e-9);
        assert_eq!(DbMetricsSnapshot::default().abort_rate(), 0.0);
    }
}
