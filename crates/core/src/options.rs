//! The transaction builder: isolation level, read-only fast path and
//! per-transaction conflict-strategy overrides.

use std::sync::Arc;

use graphsi_txn::ConflictStrategy;

use crate::config::IsolationLevel;
use crate::db::GraphDbInner;
use crate::transaction::Transaction;

/// Configures and begins one [`Transaction`]; created by
/// [`crate::GraphDb::txn`].
///
/// ```
/// use graphsi_core::{ConflictStrategy, DbConfig, GraphDb, IsolationLevel};
///
/// let dir = graphsi_core::test_support::TempDir::new("doc-options");
/// let db = GraphDb::open(dir.path(), DbConfig::default()).unwrap();
///
/// // A read-only snapshot: never touches the lock manager.
/// let reader = db.txn().read_only().begin();
///
/// // A snapshot-isolation writer with an explicit conflict strategy.
/// let writer = db
///     .txn()
///     .isolation(IsolationLevel::SnapshotIsolation)
///     .conflict_strategy(ConflictStrategy::FirstCommitterWins)
///     .begin();
/// # drop((reader, writer));
/// ```
#[must_use = "finish the builder with `.begin()`"]
pub struct TxnOptions {
    db: Arc<GraphDbInner>,
    isolation: IsolationLevel,
    read_only: bool,
    conflict_strategy: Option<ConflictStrategy>,
    scan_chunk_size: Option<usize>,
}

impl TxnOptions {
    pub(crate) fn new(db: Arc<GraphDbInner>) -> Self {
        let isolation = db.config.isolation;
        TxnOptions {
            db,
            isolation,
            read_only: false,
            conflict_strategy: None,
            scan_chunk_size: None,
        }
    }

    /// Sets the isolation level (defaults to the database's configured
    /// level).
    pub fn isolation(mut self, isolation: IsolationLevel) -> Self {
        self.isolation = isolation;
        self
    }

    /// Marks the transaction read-only. Read-only transactions read from a
    /// fixed snapshot, skip write-set allocation, never touch the lock
    /// manager (the paper's no-read-locks fast path applies even when the
    /// database default is read committed), and reject write operations
    /// with [`crate::DbError::ReadOnlyTransaction`].
    pub fn read_only(mut self) -> Self {
        self.read_only = true;
        self
    }

    /// Overrides the write-write conflict strategy for this transaction
    /// only (defaults to the database's configured strategy).
    pub fn conflict_strategy(mut self, strategy: ConflictStrategy) -> Self {
        self.conflict_strategy = Some(strategy);
        self
    }

    /// Overrides the streaming-cursor chunk size for this transaction only
    /// (defaults to [`crate::DbConfig::scan_chunk_size`]; clamped to at
    /// least 1). Every scan and expansion the transaction runs buffers at
    /// most this many candidate IDs per refill.
    pub fn scan_chunk_size(mut self, chunk: usize) -> Self {
        self.scan_chunk_size = Some(chunk.max(1));
        self
    }

    /// Begins the transaction. The returned [`Transaction`] owns a
    /// reference to the database and is `Send + 'static`.
    pub fn begin(self) -> Transaction {
        let (id, start_ts) = self.db.register_transaction();
        let strategy = self
            .conflict_strategy
            .unwrap_or(self.db.config.conflict_strategy);
        let chunk = self
            .scan_chunk_size
            .unwrap_or(self.db.config.scan_chunk_size)
            .max(1);
        Transaction::new(
            self.db,
            id,
            start_ts,
            self.isolation,
            strategy,
            self.read_only,
            chunk,
        )
    }
}

impl std::fmt::Debug for TxnOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TxnOptions")
            .field("isolation", &self.isolation)
            .field("read_only", &self.read_only)
            .field("conflict_strategy", &self.conflict_strategy)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DbConfig;
    use crate::db::GraphDb;
    use crate::error::DbError;
    use graphsi_storage::test_util::TempDir;

    #[test]
    fn builder_defaults_follow_the_config() {
        let dir = TempDir::new("options_defaults");
        let db = GraphDb::open(dir.path(), DbConfig::read_committed()).unwrap();
        let tx = db.txn().begin();
        assert_eq!(tx.isolation(), IsolationLevel::ReadCommitted);
        assert!(!tx.is_read_only());
        drop(tx);

        let tx = db
            .txn()
            .isolation(IsolationLevel::SnapshotIsolation)
            .begin();
        assert_eq!(tx.isolation(), IsolationLevel::SnapshotIsolation);
        drop(tx);
    }

    #[test]
    fn read_only_transactions_reject_writes() {
        let dir = TempDir::new("options_read_only");
        let db = GraphDb::open(dir.path(), DbConfig::default()).unwrap();
        let mut tx = db.txn().read_only().begin();
        assert!(tx.is_read_only());
        let err = tx.create_node(&["X"], &[]).unwrap_err();
        assert!(matches!(err, DbError::ReadOnlyTransaction));
        // The transaction stays usable for reads after a rejected write.
        assert!(tx.all_nodes_vec().unwrap().is_empty());
        tx.commit().unwrap();
    }

    #[test]
    fn per_transaction_conflict_strategy_overrides_config() {
        let dir = TempDir::new("options_strategy");
        let db = GraphDb::open(dir.path(), DbConfig::default()).unwrap();
        let mut setup = db.begin();
        let node = setup.create_node(&["S"], &[]).unwrap();
        setup.commit().unwrap();

        // First-committer-wins defers conflict detection to commit time:
        // both writers may buffer their writes, the second to commit loses.
        let mut t1 = db
            .txn()
            .conflict_strategy(graphsi_txn::ConflictStrategy::FirstCommitterWins)
            .begin();
        let mut t2 = db
            .txn()
            .conflict_strategy(graphsi_txn::ConflictStrategy::FirstCommitterWins)
            .begin();
        t1.set_node_property(node, "v", crate::PropertyValue::Int(1))
            .unwrap();
        t2.set_node_property(node, "v", crate::PropertyValue::Int(2))
            .unwrap();
        t1.commit().unwrap();
        let err = t2.commit().unwrap_err();
        assert!(err.is_conflict(), "second committer must lose: {err}");
    }
}
