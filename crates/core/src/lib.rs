//! # graphsi-core
//!
//! An embedded, Neo4j-style graph database with **snapshot isolation**,
//! reproducing *"Snapshot Isolation for Neo4j"* (Patiño-Martínez et al.,
//! EDBT 2016) from scratch in Rust.
//!
//! ## Architecture (paper §2 + §4)
//!
//! ```text
//!        GraphDb ── Arc-backed handle: transactions, commit pipeline,
//!        /   |   \             recovery, GC driver
//!   indexes  |    MVCC object cache (graphsi-mvcc): version chains,
//! (graphsi-  |    tombstones, threaded GC list
//!   index)   |
//!            transaction substrate (graphsi-txn): timestamps, locks,
//!            conflict strategies, active-transaction table
//!            |
//!        record stores (graphsi-storage) ── WAL (graphsi-wal)
//! ```
//!
//! * **Snapshot isolation** (default): reads are served from the versioned
//!   object cache at the transaction's start timestamp without any read
//!   locks; long write locks detect write-write conflicts with a
//!   first-updater-wins strategy; only the newest committed version is
//!   written to the persistent store.
//! * **Read committed** (the baseline stock Neo4j provides): short read
//!   locks, long write locks, reads always observe the latest committed
//!   state — exhibiting the unrepeatable-read and phantom anomalies the
//!   paper sets out to remove.
//!
//! [`GraphDb`] is a cheaply-cloneable handle and [`Transaction`] is
//! `Send + 'static`, so worker pools can run one transaction per thread.
//! Hot reads ([`Transaction::relationships`],
//! [`Transaction::nodes_with_label`], ...) are lazy, snapshot-consistent
//! iterators fed by chunked, GC-safe cursors — candidate IDs are paged at
//! most one chunk ([`DbConfig::scan_chunk_size`]) at a time — and
//! [`Transaction::query`] composes them into streaming pipelines
//! (label/property match → filter → multi-hop expand → distinct → limit);
//! `*_vec` variants collect eagerly.
//!
//! ## Quick start
//!
//! ```
//! use graphsi_core::{DbConfig, GraphDb, PropertyValue};
//!
//! let dir = graphsi_core::test_support::TempDir::new("doc-quickstart");
//! let db = GraphDb::open(dir.path(), DbConfig::default()).unwrap();
//!
//! // Write transaction.
//! let mut tx = db.begin();
//! let alice = tx
//!     .create_node(&["Person"], &[("name", PropertyValue::from("Alice"))])
//!     .unwrap();
//! let bob = tx
//!     .create_node(&["Person"], &[("name", PropertyValue::from("Bob"))])
//!     .unwrap();
//! tx.create_relationship(alice, bob, "KNOWS", &[]).unwrap();
//! tx.commit().unwrap();
//!
//! // Read-only transaction: a stable snapshot, zero lock-manager calls.
//! let tx = db.txn().read_only().begin();
//! assert_eq!(tx.nodes_with_label("Person").unwrap().count(), 2);
//! assert_eq!(tx.degree(alice, graphsi_core::Direction::Both).unwrap(), 1);
//! drop(tx);
//!
//! // Closure conveniences: retry write-write conflicts automatically.
//! db.write_with_retry(|tx| tx.set_node_property(alice, "age", PropertyValue::Int(34)))
//!     .unwrap();
//! let age = db.read(|tx| tx.node_property(alice, "age")).unwrap();
//! assert_eq!(age, Some(PropertyValue::Int(34)));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod commit;
pub(crate) mod commit_pipeline;
pub mod config;
pub mod db;
pub mod entity;
pub mod error;
pub mod iter;
pub mod lock_rank;
pub mod metrics;
pub mod options;
pub(crate) mod plan;
pub mod query;
pub mod transaction;
pub mod traversal;
pub mod verify;
pub mod write_set;

pub use commit::{CommitOp, CommitRecord};
pub use config::{DbConfig, IsolationLevel};
pub use db::{GcSummary, GraphDb, COMMIT_TS_PROPERTY, RESERVED_PREFIX};
pub use entity::{Direction, Node, NodeData, Relationship, RelationshipData};
pub use error::{DbError, Result};
pub use iter::{NeighborIter, NodeIdIter, RelIdIter, RelIter};
pub use metrics::{DbMetrics, DbMetricsSnapshot};
pub use options::TxnOptions;
pub use query::{QueryBuilder, QueryStream, Row, RowStream};
pub use transaction::Transaction;
pub use verify::{VerifyClass, VerifyFinding, VerifyReport};

// Re-export the identifiers and value types users need from the substrate
// crates so that applications can depend on `graphsi-core` alone.
pub use graphsi_mvcc::GcStrategy;
pub use graphsi_storage::{
    LabelToken, NodeId, PageFault, PropertyKeyToken, PropertyValue, RelTypeToken, RelationshipId,
    StoreTarget,
};
pub use graphsi_txn::{ConflictStrategy, LockStatsSnapshot, Timestamp, TxnId};
pub use graphsi_wal::SyncPolicy;

/// Helpers shared by tests, examples and benchmarks (temporary
/// directories, hang watchdogs).
pub mod test_support {
    pub use graphsi_storage::test_util::TempDir;

    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    /// A hang watchdog for multi-threaded tests: unless dropped (or
    /// [`Watchdog::disarm`]ed) within the deadline, a deadline thread
    /// prints a named diagnostic — including the lock-order witness's
    /// acquisition-order edges when the `lock-order` feature is on — and
    /// aborts the process. A wedged test thereby fails with the lock
    /// state that wedged it instead of sitting in a CI timeout.
    pub struct Watchdog {
        armed: Arc<AtomicBool>,
    }

    impl Watchdog {
        /// Arms a watchdog named `name` with the given deadline. The
        /// returned guard disarms it on drop, so a passing (or cleanly
        /// panicking) test never trips it.
        pub fn arm(name: &'static str, deadline: Duration) -> Watchdog {
            let armed = Arc::new(AtomicBool::new(true));
            let flag = Arc::clone(&armed);
            std::thread::spawn(move || {
                std::thread::sleep(deadline);
                if !flag.load(Ordering::SeqCst) {
                    return;
                }
                eprintln!("watchdog '{name}': test still running after {deadline:?}, aborting");
                #[cfg(feature = "lock-order")]
                {
                    eprintln!("watchdog '{name}': lock-order witness edges observed so far:");
                    for ((from, to), (from_site, to_site)) in parking_lot::order::edges() {
                        eprintln!(
                            "  [{rank_from}] {name_from} at {from_site} -> [{rank_to}] {name_to} at {to_site}",
                            rank_from = from.0,
                            name_from = from.1,
                            rank_to = to.0,
                            name_to = to.1,
                        );
                    }
                }
                std::process::abort();
            });
            Watchdog { armed }
        }

        /// Explicitly disarms the watchdog (equivalent to dropping it).
        pub fn disarm(self) {}
    }

    impl Drop for Watchdog {
        fn drop(&mut self) {
            self.armed.store(false, Ordering::SeqCst);
        }
    }
}
