//! # graphsi-core
//!
//! An embedded, Neo4j-style graph database with **snapshot isolation**,
//! reproducing *"Snapshot Isolation for Neo4j"* (Patiño-Martínez et al.,
//! EDBT 2016) from scratch in Rust.
//!
//! ## Architecture (paper §2 + §4)
//!
//! ```text
//!        GraphDb ── Arc-backed handle: transactions, commit pipeline,
//!        /   |   \             recovery, GC driver
//!   indexes  |    MVCC object cache (graphsi-mvcc): version chains,
//! (graphsi-  |    tombstones, threaded GC list
//!   index)   |
//!            transaction substrate (graphsi-txn): timestamps, locks,
//!            conflict strategies, active-transaction table
//!            |
//!        record stores (graphsi-storage) ── WAL (graphsi-wal)
//! ```
//!
//! * **Snapshot isolation** (default): reads are served from the versioned
//!   object cache at the transaction's start timestamp without any read
//!   locks; long write locks detect write-write conflicts with a
//!   first-updater-wins strategy; only the newest committed version is
//!   written to the persistent store.
//! * **Read committed** (the baseline stock Neo4j provides): short read
//!   locks, long write locks, reads always observe the latest committed
//!   state — exhibiting the unrepeatable-read and phantom anomalies the
//!   paper sets out to remove.
//!
//! [`GraphDb`] is a cheaply-cloneable handle and [`Transaction`] is
//! `Send + 'static`, so worker pools can run one transaction per thread.
//! Hot reads ([`Transaction::relationships`],
//! [`Transaction::nodes_with_label`], ...) are lazy, snapshot-consistent
//! iterators fed by chunked, GC-safe cursors — candidate IDs are paged at
//! most one chunk ([`DbConfig::scan_chunk_size`]) at a time — and
//! [`Transaction::query`] composes them into streaming pipelines
//! (label/property match → filter → multi-hop expand → distinct → limit);
//! `*_vec` variants collect eagerly.
//!
//! ## Quick start
//!
//! ```
//! use graphsi_core::{DbConfig, GraphDb, PropertyValue};
//!
//! let dir = graphsi_core::test_support::TempDir::new("doc-quickstart");
//! let db = GraphDb::open(dir.path(), DbConfig::default()).unwrap();
//!
//! // Write transaction.
//! let mut tx = db.begin();
//! let alice = tx
//!     .create_node(&["Person"], &[("name", PropertyValue::from("Alice"))])
//!     .unwrap();
//! let bob = tx
//!     .create_node(&["Person"], &[("name", PropertyValue::from("Bob"))])
//!     .unwrap();
//! tx.create_relationship(alice, bob, "KNOWS", &[]).unwrap();
//! tx.commit().unwrap();
//!
//! // Read-only transaction: a stable snapshot, zero lock-manager calls.
//! let tx = db.txn().read_only().begin();
//! assert_eq!(tx.nodes_with_label("Person").unwrap().count(), 2);
//! assert_eq!(tx.degree(alice, graphsi_core::Direction::Both).unwrap(), 1);
//! drop(tx);
//!
//! // Closure conveniences: retry write-write conflicts automatically.
//! db.write_with_retry(|tx| tx.set_node_property(alice, "age", PropertyValue::Int(34)))
//!     .unwrap();
//! let age = db.read(|tx| tx.node_property(alice, "age")).unwrap();
//! assert_eq!(age, Some(PropertyValue::Int(34)));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod commit;
pub(crate) mod commit_pipeline;
pub mod config;
pub mod db;
pub mod entity;
pub mod error;
pub mod iter;
pub mod lock_rank;
pub mod metrics;
pub mod options;
pub(crate) mod plan;
pub mod query;
pub mod transaction;
pub mod traversal;
pub mod write_set;

pub use commit::{CommitOp, CommitRecord};
pub use config::{DbConfig, IsolationLevel};
pub use db::{GcSummary, GraphDb, COMMIT_TS_PROPERTY, RESERVED_PREFIX};
pub use entity::{Direction, Node, NodeData, Relationship, RelationshipData};
pub use error::{DbError, Result};
pub use iter::{NeighborIter, NodeIdIter, RelIdIter, RelIter};
pub use metrics::{DbMetrics, DbMetricsSnapshot};
pub use options::TxnOptions;
pub use query::{QueryBuilder, QueryStream, Row, RowStream};
pub use transaction::Transaction;

// Re-export the identifiers and value types users need from the substrate
// crates so that applications can depend on `graphsi-core` alone.
pub use graphsi_mvcc::GcStrategy;
pub use graphsi_storage::{
    LabelToken, NodeId, PropertyKeyToken, PropertyValue, RelTypeToken, RelationshipId,
};
pub use graphsi_txn::{ConflictStrategy, LockStatsSnapshot, Timestamp, TxnId};
pub use graphsi_wal::SyncPolicy;

/// Helpers shared by tests, examples and benchmarks (temporary
/// directories).
pub mod test_support {
    pub use graphsi_storage::test_util::TempDir;
}
