//! Database configuration: isolation level, conflict strategy, cache and
//! durability knobs.

use std::time::Duration;

use graphsi_txn::ConflictStrategy;
use graphsi_wal::SyncPolicy;

/// The isolation level a transaction runs under.
///
/// * [`IsolationLevel::ReadCommitted`] reproduces stock Neo4j: short shared
///   (read) locks taken and released around every read, long exclusive
///   (write) locks held until commit, reads always observe the latest
///   committed state — and therefore suffer unrepeatable reads and
///   phantoms.
/// * [`IsolationLevel::SnapshotIsolation`] is the paper's contribution:
///   reads are served from the versioned object cache at the transaction's
///   start timestamp without any read locks; writes keep the long write
///   locks and detect write-write conflicts (first-updater-wins by
///   default).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum IsolationLevel {
    /// Neo4j's original isolation level (the baseline).
    ReadCommitted,
    /// The paper's multi-version snapshot isolation.
    #[default]
    SnapshotIsolation,
}

impl IsolationLevel {
    /// Short name used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            IsolationLevel::ReadCommitted => "read-committed",
            IsolationLevel::SnapshotIsolation => "snapshot-isolation",
        }
    }
}

impl std::fmt::Display for IsolationLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Configuration of a [`crate::db::GraphDb`] instance.
#[derive(Clone, Debug)]
pub struct DbConfig {
    /// Default isolation level for transactions started with
    /// [`crate::db::GraphDb::begin`].
    pub isolation: IsolationLevel,
    /// Write-write conflict strategy for snapshot-isolation transactions.
    pub conflict_strategy: ConflictStrategy,
    /// WAL sync policy.
    pub sync_policy: SyncPolicy,
    /// WAL segment rotation threshold: once the active segment file
    /// reaches this many bytes the group-commit leader seals it and
    /// switches appends to a freshly-created segment. Smaller segments
    /// mean finer-grained retention (a checkpoint can delete more of the
    /// log sooner, bounding recovery replay tighter) at the cost of more
    /// rotations; larger segments amortise rotation overhead.
    pub wal_segment_bytes: u64,
    /// Page-cache pages per record store.
    pub cache_pages_per_store: usize,
    /// Verify store-page trailer checksums when pages fault in (default
    /// on). With this off, only unambiguous torn file tails are still
    /// rejected; full-page corruption is left for
    /// [`crate::db::GraphDb::verify`] to find.
    pub verify_pages_on_read: bool,
    /// Shards of the versioned object caches.
    pub cache_shards: usize,
    /// How long a blocking lock acquisition (read-committed mode) waits
    /// before giving up.
    pub lock_timeout: Duration,
    /// If set, the threaded garbage collector runs automatically after
    /// every N commits.
    pub auto_gc_every_commits: Option<u64>,
    /// Chunk size of the streaming read cursors: how many candidate IDs a
    /// scan or expansion buffers per refill. Smaller chunks bound memory
    /// tighter; larger chunks amortise refill overhead. Can be overridden
    /// per transaction ([`crate::TxnOptions::scan_chunk_size`]) and per
    /// query ([`crate::QueryBuilder::chunk_size`]).
    pub scan_chunk_size: usize,
    /// Group commit: maximum number of committers one WAL sync may cover.
    /// A group-commit leader stops waiting for more committers to join its
    /// batch once this many are parked on the batcher. Only meaningful
    /// under [`SyncPolicy::OnDemand`] (under [`SyncPolicy::Always`] every
    /// append syncs itself).
    pub group_commit_max_batch: usize,
    /// Group commit: how long a leader waits for additional committers to
    /// join its batch before issuing the sync. `Duration::ZERO` (the
    /// default) syncs immediately — batching still emerges naturally while
    /// a sync is in flight, because committers that append during it park
    /// and are covered by the next leader's single sync. A small positive
    /// delay trades commit latency for larger batches (fewer fsyncs).
    pub group_commit_max_delay: Duration,
    /// Size of the stage-C store-apply shard lock table. Each commit's
    /// flush-through acquires only the shards its ops touch (node pages +
    /// relationship chains), so commits with disjoint footprints apply to
    /// the persistent store concurrently. `1` restores the old behaviour
    /// of one global store-apply lock.
    pub store_apply_shards: usize,
    /// Whether the query planner may push property predicates (equality
    /// and range forms) into the versioned property index as
    /// postings/range-postings scans. `false` forces every property
    /// predicate onto the decode-filter path — the baseline the E14
    /// experiment measures pushdown against. Overridable per query with
    /// [`crate::QueryBuilder::pushdown`].
    pub predicate_pushdown: bool,
    /// Whether the query planner may compile two or more pushdown-able
    /// property predicates into a sorted-posting merge-intersect (driver
    /// range cursor ∩ pre-drained leg build sides) instead of one index
    /// scan followed by decode-filter stages. Requires
    /// [`DbConfig::predicate_pushdown`] to matter. Overridable per query
    /// with [`crate::QueryBuilder::intersect`].
    pub predicate_intersection: bool,
}

impl Default for DbConfig {
    fn default() -> Self {
        DbConfig {
            isolation: IsolationLevel::SnapshotIsolation,
            conflict_strategy: ConflictStrategy::FirstUpdaterWins,
            sync_policy: SyncPolicy::OnDemand,
            wal_segment_bytes: DbConfig::DEFAULT_WAL_SEGMENT_BYTES,
            cache_pages_per_store: 256,
            verify_pages_on_read: true,
            cache_shards: 16,
            lock_timeout: Duration::from_millis(500),
            auto_gc_every_commits: None,
            scan_chunk_size: DbConfig::DEFAULT_SCAN_CHUNK_SIZE,
            group_commit_max_batch: DbConfig::DEFAULT_GROUP_COMMIT_MAX_BATCH,
            group_commit_max_delay: Duration::ZERO,
            store_apply_shards: DbConfig::DEFAULT_STORE_APPLY_SHARDS,
            predicate_pushdown: true,
            predicate_intersection: true,
        }
    }
}

impl DbConfig {
    /// Default [`DbConfig::scan_chunk_size`].
    pub const DEFAULT_SCAN_CHUNK_SIZE: usize = 256;

    /// Default [`DbConfig::group_commit_max_batch`].
    pub const DEFAULT_GROUP_COMMIT_MAX_BATCH: usize = 64;

    /// Default [`DbConfig::store_apply_shards`].
    pub const DEFAULT_STORE_APPLY_SHARDS: usize = 64;

    /// Default [`DbConfig::wal_segment_bytes`] (16 MiB).
    pub const DEFAULT_WAL_SEGMENT_BYTES: u64 = 16 * 1024 * 1024;

    /// Smallest accepted [`DbConfig::wal_segment_bytes`]. A segment must
    /// hold at least its own header plus a useful number of records;
    /// below this the rotation overhead dominates.
    pub const MIN_WAL_SEGMENT_BYTES: u64 = 4096;

    /// A configuration reproducing stock Neo4j (the read-committed
    /// baseline).
    pub fn read_committed() -> Self {
        DbConfig {
            isolation: IsolationLevel::ReadCommitted,
            ..Default::default()
        }
    }

    /// A configuration using the paper's snapshot isolation (the default).
    pub fn snapshot_isolation() -> Self {
        DbConfig::default()
    }

    /// Builder-style setter for the isolation level.
    pub fn with_isolation(mut self, isolation: IsolationLevel) -> Self {
        self.isolation = isolation;
        self
    }

    /// Builder-style setter for the conflict strategy.
    pub fn with_conflict_strategy(mut self, strategy: ConflictStrategy) -> Self {
        self.conflict_strategy = strategy;
        self
    }

    /// Builder-style setter for the WAL sync policy.
    pub fn with_sync_policy(mut self, policy: SyncPolicy) -> Self {
        self.sync_policy = policy;
        self
    }

    /// Builder-style setter for the WAL segment rotation threshold
    /// (clamped to at least [`DbConfig::MIN_WAL_SEGMENT_BYTES`]).
    pub fn with_wal_segment_bytes(mut self, bytes: u64) -> Self {
        self.wal_segment_bytes = bytes.max(Self::MIN_WAL_SEGMENT_BYTES);
        self
    }

    /// Builder-style setter for automatic GC frequency.
    pub fn with_auto_gc(mut self, every_commits: u64) -> Self {
        self.auto_gc_every_commits = Some(every_commits);
        self
    }

    /// Builder-style setter for the blocking-lock timeout.
    pub fn with_lock_timeout(mut self, timeout: Duration) -> Self {
        self.lock_timeout = timeout;
        self
    }

    /// Builder-style setter for the streaming-cursor chunk size (clamped to
    /// at least 1).
    pub fn with_scan_chunk_size(mut self, chunk: usize) -> Self {
        self.scan_chunk_size = chunk.max(1);
        self
    }

    /// Builder-style setter for the group-commit batch cap (clamped to at
    /// least 1).
    pub fn with_group_commit_max_batch(mut self, batch: usize) -> Self {
        self.group_commit_max_batch = batch.max(1);
        self
    }

    /// Builder-style setter for the group-commit batching delay.
    pub fn with_group_commit_max_delay(mut self, delay: Duration) -> Self {
        self.group_commit_max_delay = delay;
        self
    }

    /// Builder-style setter for the stage-C store-apply shard count
    /// (clamped to at least 1; 1 = one global store-apply lock).
    pub fn with_store_apply_shards(mut self, shards: usize) -> Self {
        self.store_apply_shards = shards.max(1);
        self
    }

    /// Builder-style setter for fault-in page-checksum verification.
    pub fn with_verify_pages_on_read(mut self, enabled: bool) -> Self {
        self.verify_pages_on_read = enabled;
        self
    }

    /// Builder-style setter for the page-cache capacity of each record
    /// store (clamped to at least 1). Tiny capacities force eviction
    /// write-backs, which the integrity crash-point tests use to land
    /// injected page faults on disk without a checkpoint.
    pub fn with_cache_pages_per_store(mut self, pages: usize) -> Self {
        self.cache_pages_per_store = pages.max(1);
        self
    }

    /// Builder-style setter for query-planner predicate pushdown.
    pub fn with_predicate_pushdown(mut self, enabled: bool) -> Self {
        self.predicate_pushdown = enabled;
        self
    }

    /// Builder-style setter for query-planner multi-predicate
    /// intersection.
    pub fn with_predicate_intersection(mut self, enabled: bool) -> Self {
        self.predicate_intersection = enabled;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let config = DbConfig::default();
        assert_eq!(config.isolation, IsolationLevel::SnapshotIsolation);
        assert_eq!(config.conflict_strategy, ConflictStrategy::FirstUpdaterWins);
    }

    #[test]
    fn builders_compose() {
        let config = DbConfig::read_committed()
            .with_auto_gc(100)
            .with_lock_timeout(Duration::from_millis(10))
            .with_sync_policy(SyncPolicy::Always)
            .with_conflict_strategy(ConflictStrategy::FirstCommitterWins);
        assert_eq!(config.isolation, IsolationLevel::ReadCommitted);
        assert_eq!(config.auto_gc_every_commits, Some(100));
        assert_eq!(config.lock_timeout, Duration::from_millis(10));
        assert_eq!(config.sync_policy, SyncPolicy::Always);
        assert_eq!(
            config.conflict_strategy,
            ConflictStrategy::FirstCommitterWins
        );
        let config = config.with_isolation(IsolationLevel::SnapshotIsolation);
        assert_eq!(config.isolation, IsolationLevel::SnapshotIsolation);
    }

    #[test]
    fn group_commit_builders() {
        let config = DbConfig::default();
        assert_eq!(
            config.group_commit_max_batch,
            DbConfig::DEFAULT_GROUP_COMMIT_MAX_BATCH
        );
        assert_eq!(config.group_commit_max_delay, Duration::ZERO);
        let config = config
            .with_group_commit_max_batch(0)
            .with_group_commit_max_delay(Duration::from_micros(250));
        assert_eq!(config.group_commit_max_batch, 1, "clamped to at least 1");
        assert_eq!(config.group_commit_max_delay, Duration::from_micros(250));
    }

    #[test]
    fn store_apply_shard_builders() {
        let config = DbConfig::default();
        assert_eq!(
            config.store_apply_shards,
            DbConfig::DEFAULT_STORE_APPLY_SHARDS
        );
        assert_eq!(
            config.with_store_apply_shards(0).store_apply_shards,
            1,
            "clamped to at least 1"
        );
        assert_eq!(
            DbConfig::default()
                .with_store_apply_shards(128)
                .store_apply_shards,
            128
        );
    }

    #[test]
    fn wal_segment_builders() {
        let config = DbConfig::default();
        assert_eq!(
            config.wal_segment_bytes,
            DbConfig::DEFAULT_WAL_SEGMENT_BYTES
        );
        assert_eq!(
            config.with_wal_segment_bytes(1).wal_segment_bytes,
            DbConfig::MIN_WAL_SEGMENT_BYTES,
            "clamped to the minimum"
        );
        assert_eq!(
            DbConfig::default()
                .with_wal_segment_bytes(1 << 20)
                .wal_segment_bytes,
            1 << 20
        );
    }

    #[test]
    fn predicate_pushdown_defaults_on() {
        assert!(DbConfig::default().predicate_pushdown);
        assert!(
            !DbConfig::default()
                .with_predicate_pushdown(false)
                .predicate_pushdown
        );
    }

    #[test]
    fn predicate_intersection_defaults_on() {
        assert!(DbConfig::default().predicate_intersection);
        assert!(
            !DbConfig::default()
                .with_predicate_intersection(false)
                .predicate_intersection
        );
    }

    #[test]
    fn verify_pages_defaults_on() {
        assert!(DbConfig::default().verify_pages_on_read);
        assert!(
            !DbConfig::default()
                .with_verify_pages_on_read(false)
                .verify_pages_on_read
        );
    }

    #[test]
    fn isolation_names() {
        assert_eq!(IsolationLevel::ReadCommitted.name(), "read-committed");
        assert_eq!(
            IsolationLevel::SnapshotIsolation.to_string(),
            "snapshot-isolation"
        );
    }
}
