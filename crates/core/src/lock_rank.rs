//! Static lock-order ranks for the locks this crate constructs.
//!
//! The whole workspace shares one global rank space, enforced at runtime
//! by the vendored `parking_lot` lock-order witness (`--features
//! lock-order`): a thread may only *block* on a lock whose rank is
//! strictly greater than every rank it already holds. The full
//! cross-crate map lives in the README ("Correctness tooling"); the
//! bands are:
//!
//! | band      | layer                                              |
//! |-----------|----------------------------------------------------|
//! | 100–199   | server (sessions table, pool queue, session inner) |
//! | 200–299   | sequencing + transaction substrate                 |
//! | 300–2348  | stage-C store-apply shard locks (base + index)     |
//! | 2500–2599 | overlay + MVCC cache + index postings              |
//! | 2600–2699 | group batcher, publication queue, WAL              |
//! | 2700–2799 | storage leaves (tokens, page caches, free lists)   |
//!
//! Ranks encode *acquisition order*, outermost first: the server holds a
//! session lock across a whole database call, so it ranks below
//! everything in core; the stage-C failure path appends an abort record
//! and joins a group sync while still holding its shard locks, so the
//! group batcher and the WAL rank above the shard band; the storage
//! locks are leaves that never wrap another acquisition.

/// Checkpoint mutex: serialises fuzzy checkpoints against each other.
/// Held across the whole checkpoint — which briefly takes the sequencing
/// lock, waits on the publication queue, flushes the page caches and
/// appends/syncs through the WAL — so it ranks below every lock those
/// steps acquire, but above the server's session locks (a session may
/// drive a checkpoint through a database call).
pub const CHECKPOINT: u32 = 195;

/// Stage-A sequencing lock ([`crate::db::GraphDb`] commit pipeline).
pub const PIPELINE_SEQ: u32 = 200;

/// Pending-validation key table, probed under the sequencing lock.
pub const PIPELINE_PENDING_KEYS: u32 = 250;

/// First stage-C store-apply shard lock; shard `i` ranks `base + i`, so
/// the canonical ascending acquisition of a footprint is rank-ascending
/// by construction. Leaves room for 2048 shards below the next band.
pub const STORE_SHARD_BASE: u32 = 300;

/// Relationship adjacency overlay (read while probing the rel cache).
pub const REL_OVERLAY: u32 = 2500;

/// Stage-B group-commit batcher; taken while still holding shard locks
/// on the stage-C failure path, hence above the shard band.
pub const PIPELINE_GROUP: u32 = 2600;

/// Publication queue; waited on under the sequencing lock by
/// checkpoints, taken bare by publishing committers.
pub const PIPELINE_PUBLISH: u32 = 2620;
