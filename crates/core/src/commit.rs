//! Commit records: the WAL payload describing one committed transaction,
//! and their application to the persistent store (both at commit time and
//! during recovery replay).
//!
//! The encoding is a small hand-rolled binary format (no external
//! serialisation dependency): a commit timestamp followed by a list of
//! operations, each carrying the token-level state the store needs.

use std::collections::BTreeMap;

use graphsi_storage::{
    GraphStore, LabelToken, NodeId, PropertyKeyToken, PropertyValue, RelTypeToken, RelationshipId,
};
use graphsi_txn::Timestamp;
use graphsi_wal::record::PAYLOAD_KIND_COMMIT;

use crate::error::{DbError, Result};

/// One operation of a committed transaction, in store-application order.
#[derive(Clone, Debug, PartialEq)]
pub enum CommitOp {
    /// Install a newly created node.
    CreateNode {
        /// Node ID.
        id: NodeId,
        /// Labels of the new node.
        labels: Vec<LabelToken>,
        /// Properties of the new node.
        properties: Vec<(PropertyKeyToken, PropertyValue)>,
    },
    /// Overwrite an existing node with its newest committed state.
    UpdateNode {
        /// Node ID.
        id: NodeId,
        /// New labels.
        labels: Vec<LabelToken>,
        /// New properties.
        properties: Vec<(PropertyKeyToken, PropertyValue)>,
    },
    /// Physically remove a node from the store.
    DeleteNode {
        /// Node ID.
        id: NodeId,
    },
    /// Install a newly created relationship.
    CreateRelationship {
        /// Relationship ID.
        id: RelationshipId,
        /// Source node.
        source: NodeId,
        /// Target node.
        target: NodeId,
        /// Relationship type.
        rel_type: RelTypeToken,
        /// Properties of the new relationship.
        properties: Vec<(PropertyKeyToken, PropertyValue)>,
    },
    /// Overwrite an existing relationship's properties.
    UpdateRelationship {
        /// Relationship ID.
        id: RelationshipId,
        /// New properties.
        properties: Vec<(PropertyKeyToken, PropertyValue)>,
    },
    /// Physically remove a relationship from the store.
    DeleteRelationship {
        /// Relationship ID.
        id: RelationshipId,
    },
}

/// The WAL payload of one committed transaction.
#[derive(Clone, Debug, PartialEq)]
pub struct CommitRecord {
    /// Commit timestamp assigned by the timestamp oracle.
    pub commit_ts: Timestamp,
    /// Operations in application order (creates before deletes of
    /// dependent entities; relationship deletions before node deletions).
    pub ops: Vec<CommitOp>,
}

impl CommitRecord {
    /// Serialises the record to bytes for the WAL. Fails with
    /// [`DbError::CommitRecordOverflow`] if any field exceeds the format's
    /// limits (e.g. more than 255 labels on one entity) — the limits are
    /// validated here rather than silently truncated, so a malformed record
    /// can never reach the log.
    pub fn encode(&self) -> Result<Vec<u8>> {
        Ok(frame_record(self.commit_ts, &encode_ops(&self.ops)?))
    }

    /// Deserialises a record previously produced by [`CommitRecord::encode`].
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        let mut cursor = Cursor { bytes, pos: 0 };
        let kind = cursor.u8()?;
        if kind != PAYLOAD_KIND_COMMIT {
            return Err(DbError::CorruptCommitRecord(format!(
                "payload kind {kind:#04x} is not a commit record"
            )));
        }
        let commit_ts = Timestamp(cursor.u64()?);
        let count = cursor.u32()? as usize;
        let mut ops = Vec::with_capacity(count.min(1024));
        for _ in 0..count {
            ops.push(decode_op(&mut cursor)?);
        }
        Ok(CommitRecord { commit_ts, ops })
    }
}

/// Maximum number of labels one entity can carry in a commit record (the
/// label count is encoded as a single byte).
pub const MAX_LABELS_PER_ENTITY: usize = u8::MAX as usize;

/// Maximum number of properties one entity can carry in a commit record
/// (the property count is encoded as a `u16`).
pub const MAX_PROPS_PER_ENTITY: usize = u16::MAX as usize;

/// Serialises a list of operations *without* the record header. The commit
/// pipeline encodes the (potentially large) op list outside its sequencing
/// critical section and frames it with the commit timestamp only once the
/// timestamp is assigned — see [`frame_record`].
pub fn encode_ops(ops: &[CommitOp]) -> Result<Vec<u8>> {
    let mut out = Vec::with_capacity(64);
    out.extend_from_slice(&(ops.len() as u32).to_le_bytes());
    for op in ops {
        encode_op(op, &mut out)?;
    }
    Ok(out)
}

/// Prepends the payload-kind tag and the commit-timestamp header to an op
/// body produced by [`encode_ops`], yielding the final WAL payload. The
/// kind byte lets recovery tell commit records from the pipeline's abort
/// records ([`graphsi_wal::AbortRecord`]) before decoding either.
pub fn frame_record(commit_ts: Timestamp, ops_body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(1 + 8 + ops_body.len());
    out.push(PAYLOAD_KIND_COMMIT);
    out.extend_from_slice(&commit_ts.raw().to_le_bytes());
    out.extend_from_slice(ops_body);
    out
}

/// Overwrites the commit-timestamp header of an already-framed payload.
/// The commit pipeline frames the payload with a placeholder *outside*
/// its sequencing lock and patches the real timestamp in place once it is
/// drawn, so the critical section never copies the record.
pub fn patch_commit_ts(payload: &mut [u8], commit_ts: Timestamp) {
    payload[1..9].copy_from_slice(&commit_ts.raw().to_le_bytes());
}

fn encode_op(op: &CommitOp, out: &mut Vec<u8>) -> Result<()> {
    match op {
        CommitOp::CreateNode {
            id,
            labels,
            properties,
        } => {
            out.push(1);
            out.extend_from_slice(&id.raw().to_le_bytes());
            encode_labels(labels, out)?;
            encode_props(properties, out)?;
        }
        CommitOp::UpdateNode {
            id,
            labels,
            properties,
        } => {
            out.push(2);
            out.extend_from_slice(&id.raw().to_le_bytes());
            encode_labels(labels, out)?;
            encode_props(properties, out)?;
        }
        CommitOp::DeleteNode { id } => {
            out.push(3);
            out.extend_from_slice(&id.raw().to_le_bytes());
        }
        CommitOp::CreateRelationship {
            id,
            source,
            target,
            rel_type,
            properties,
        } => {
            out.push(4);
            out.extend_from_slice(&id.raw().to_le_bytes());
            out.extend_from_slice(&source.raw().to_le_bytes());
            out.extend_from_slice(&target.raw().to_le_bytes());
            out.extend_from_slice(&rel_type.0.to_le_bytes());
            encode_props(properties, out)?;
        }
        CommitOp::UpdateRelationship { id, properties } => {
            out.push(5);
            out.extend_from_slice(&id.raw().to_le_bytes());
            encode_props(properties, out)?;
        }
        CommitOp::DeleteRelationship { id } => {
            out.push(6);
            out.extend_from_slice(&id.raw().to_le_bytes());
        }
    }
    Ok(())
}

fn encode_labels(labels: &[LabelToken], out: &mut Vec<u8>) -> Result<()> {
    if labels.len() > MAX_LABELS_PER_ENTITY {
        return Err(DbError::CommitRecordOverflow(format!(
            "{} labels on one entity (maximum {MAX_LABELS_PER_ENTITY})",
            labels.len()
        )));
    }
    out.push(labels.len() as u8);
    for l in labels {
        out.extend_from_slice(&l.0.to_le_bytes());
    }
    Ok(())
}

fn encode_props(props: &[(PropertyKeyToken, PropertyValue)], out: &mut Vec<u8>) -> Result<()> {
    if props.len() > MAX_PROPS_PER_ENTITY {
        return Err(DbError::CommitRecordOverflow(format!(
            "{} properties on one entity (maximum {MAX_PROPS_PER_ENTITY})",
            props.len()
        )));
    }
    out.extend_from_slice(&(props.len() as u16).to_le_bytes());
    for (key, value) in props {
        out.extend_from_slice(&key.0.to_le_bytes());
        match value {
            PropertyValue::Bool(b) => {
                out.push(0);
                out.push(u8::from(*b));
            }
            PropertyValue::Int(i) => {
                out.push(1);
                out.extend_from_slice(&i.to_le_bytes());
            }
            PropertyValue::Float(x) => {
                out.push(2);
                out.extend_from_slice(&x.to_bits().to_le_bytes());
            }
            PropertyValue::String(s) => {
                out.push(3);
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
        }
    }
    Ok(())
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn bad_width(want: usize) -> DbError {
    DbError::CorruptCommitRecord(format!("integer field is not {want} bytes wide"))
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8]> {
        if self.pos + n > self.bytes.len() {
            return Err(DbError::CorruptCommitRecord(format!(
                "truncated record at offset {}",
                self.pos
            )));
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16> {
        let bytes = self.take(2)?.try_into().map_err(|_| bad_width(2))?;
        Ok(u16::from_le_bytes(bytes))
    }

    fn u32(&mut self) -> Result<u32> {
        let bytes = self.take(4)?.try_into().map_err(|_| bad_width(4))?;
        Ok(u32::from_le_bytes(bytes))
    }

    fn u64(&mut self) -> Result<u64> {
        let bytes = self.take(8)?.try_into().map_err(|_| bad_width(8))?;
        Ok(u64::from_le_bytes(bytes))
    }
}

fn decode_op(cursor: &mut Cursor<'_>) -> Result<CommitOp> {
    let tag = cursor.u8()?;
    Ok(match tag {
        1 | 2 => {
            let id = NodeId::new(cursor.u64()?);
            let labels = decode_labels(cursor)?;
            let properties = decode_props(cursor)?;
            if tag == 1 {
                CommitOp::CreateNode {
                    id,
                    labels,
                    properties,
                }
            } else {
                CommitOp::UpdateNode {
                    id,
                    labels,
                    properties,
                }
            }
        }
        3 => CommitOp::DeleteNode {
            id: NodeId::new(cursor.u64()?),
        },
        4 => CommitOp::CreateRelationship {
            id: RelationshipId::new(cursor.u64()?),
            source: NodeId::new(cursor.u64()?),
            target: NodeId::new(cursor.u64()?),
            rel_type: RelTypeToken(cursor.u32()?),
            properties: decode_props(cursor)?,
        },
        5 => CommitOp::UpdateRelationship {
            id: RelationshipId::new(cursor.u64()?),
            properties: decode_props(cursor)?,
        },
        6 => CommitOp::DeleteRelationship {
            id: RelationshipId::new(cursor.u64()?),
        },
        other => {
            return Err(DbError::CorruptCommitRecord(format!(
                "unknown op tag {other}"
            )))
        }
    })
}

fn decode_labels(cursor: &mut Cursor<'_>) -> Result<Vec<LabelToken>> {
    let count = cursor.u8()? as usize;
    let mut labels = Vec::with_capacity(count);
    for _ in 0..count {
        labels.push(LabelToken(cursor.u32()?));
    }
    Ok(labels)
}

fn decode_props(cursor: &mut Cursor<'_>) -> Result<Vec<(PropertyKeyToken, PropertyValue)>> {
    let count = cursor.u16()? as usize;
    let mut props = Vec::with_capacity(count);
    for _ in 0..count {
        let key = PropertyKeyToken(cursor.u32()?);
        let vtag = cursor.u8()?;
        let value = match vtag {
            0 => PropertyValue::Bool(cursor.u8()? != 0),
            1 => PropertyValue::Int(cursor.u64()? as i64),
            2 => PropertyValue::Float(f64::from_bits(cursor.u64()?)),
            3 => {
                let len = cursor.u32()? as usize;
                let bytes = cursor.take(len)?;
                PropertyValue::String(
                    std::str::from_utf8(bytes)
                        .map_err(|_| {
                            DbError::CorruptCommitRecord("invalid UTF-8 in property".into())
                        })?
                        .to_owned(),
                )
            }
            other => {
                return Err(DbError::CorruptCommitRecord(format!(
                    "unknown value tag {other}"
                )))
            }
        };
        props.push((key, value));
    }
    Ok(props)
}

// ---------------------------------------------------------------------
// Store-apply shard footprints
// ---------------------------------------------------------------------

/// The shard a node's page *and* its relationship chain map to. One shard
/// space covers both: a chain splice rewrites the node record (head
/// pointer) as well as neighbouring relationship records, so node writes
/// and chain writes on the same node must collide on the same lock.
pub fn node_shard(id: NodeId, shard_count: usize) -> usize {
    // Fibonacci multiplicative hashing; distinct odd multipliers keep the
    // node and relationship key spaces from aliasing systematically.
    (id.raw().wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 17) as usize % shard_count.max(1)
}

/// The shard a relationship's own page maps to.
pub fn rel_shard(id: RelationshipId, shard_count: usize) -> usize {
    (id.raw().wrapping_mul(0xC2B2_AE3D_27D4_EB4F) >> 17) as usize % shard_count.max(1)
}

/// Extracts the store-apply shard footprint of a commit record's ops: the
/// sorted, deduplicated set of shard indexes covering every store record
/// the flush-through may read-modify-write. Two commits whose footprints
/// are disjoint can apply concurrently; overlapping ones queue on the
/// shared shards.
///
/// Per op this is:
///
/// * node create/update/delete — the node's shard (its record + property
///   chain);
/// * relationship create/update/delete — the relationship's own shard
///   *plus both endpoint nodes' shards*. The chain splices in
///   `GraphStore` are multi-record sequences: creating a relationship
///   rewrites the endpoint node records and the old chain-head
///   relationship records, deleting one rewrites the chain neighbours.
///
/// The safety argument has two halves. Node records and the spliced
/// relationship's own record are serialised by the shards themselves:
/// every writer of node `n`'s record holds `n`'s shard, and a
/// relationship op holds both endpoint shards, so it excludes every
/// splice that could rewrite its record. Chain-*neighbour* records are
/// the subtle half: a neighbour touched through `n`'s chain also sits on
/// its other endpoint `m`'s chain, and a concurrent splice over `m`
/// (holding only `m`'s shard) may rewrite the same record. Those
/// rewrites touch disjoint per-endpoint pointer pairs and are performed
/// as atomic single-call read-modify-writes under the record's page lock
/// (`RecordStore::update_in_use`), so they commute instead of losing an
/// update.
///
/// `rel_endpoints` resolves the endpoints of relationships whose ops do
/// not carry them (update/delete, which encode only the ID); the commit
/// path answers from the write set's before-images. If an endpoint cannot
/// be resolved the footprint degrades to *every* shard — correct, merely
/// serial.
pub fn record_footprint(
    ops: &[CommitOp],
    shard_count: usize,
    mut rel_endpoints: impl FnMut(RelationshipId) -> Option<(NodeId, NodeId)>,
) -> Vec<usize> {
    let shard_count = shard_count.max(1);
    let mut shards = std::collections::BTreeSet::new();
    for op in ops {
        match op {
            CommitOp::CreateNode { id, .. }
            | CommitOp::UpdateNode { id, .. }
            | CommitOp::DeleteNode { id } => {
                shards.insert(node_shard(*id, shard_count));
            }
            CommitOp::CreateRelationship {
                id, source, target, ..
            } => {
                shards.insert(rel_shard(*id, shard_count));
                shards.insert(node_shard(*source, shard_count));
                shards.insert(node_shard(*target, shard_count));
            }
            CommitOp::UpdateRelationship { id, .. } | CommitOp::DeleteRelationship { id } => {
                shards.insert(rel_shard(*id, shard_count));
                match rel_endpoints(*id) {
                    Some((source, target)) => {
                        shards.insert(node_shard(source, shard_count));
                        shards.insert(node_shard(target, shard_count));
                    }
                    None => return (0..shard_count).collect(),
                }
            }
        }
        if shards.len() == shard_count {
            break;
        }
    }
    shards.into_iter().collect()
}

/// Applies a commit record to the persistent store, installing the newest
/// committed version of every touched entity. The commit timestamp is
/// persisted as an extra, reserved property on each entity — exactly the
/// "additional property ... for keeping the commit timestamp" of §4 — so a
/// reopened database can seed cache base versions correctly.
///
/// With `idempotent` set (recovery replay) the function tolerates
/// operations whose effect is already present in the store.
pub fn apply_to_store(
    store: &GraphStore,
    record: &CommitRecord,
    commit_ts_key: PropertyKeyToken,
    idempotent: bool,
) -> Result<()> {
    // The reserved commit-ts property is appended to each entity's chain by
    // the store layer itself (`extra` parameter), so no op ever clones its
    // property list just to attach the timestamp.
    let ts_prop = (
        commit_ts_key,
        PropertyValue::Int(record.commit_ts.raw() as i64),
    );
    let extra = Some(&ts_prop);
    for op in &record.ops {
        match op {
            CommitOp::CreateNode {
                id,
                labels,
                properties,
            }
            | CommitOp::UpdateNode {
                id,
                labels,
                properties,
            } => {
                let exists = store.node_exists(*id)?;
                if exists {
                    store.update_node_with(*id, labels, properties, extra)?;
                } else {
                    if matches!(op, CommitOp::UpdateNode { .. }) && !idempotent {
                        return Err(DbError::NodeNotFound(*id));
                    }
                    store.create_node_with(*id, labels, properties, extra)?;
                    store.bump_high_ids(id.raw() + 1, 0);
                }
            }
            CommitOp::DeleteNode { id } => {
                if store.node_exists(*id)? {
                    store.delete_node(*id)?;
                } else if !idempotent {
                    return Err(DbError::NodeNotFound(*id));
                }
            }
            CommitOp::CreateRelationship {
                id,
                source,
                target,
                rel_type,
                properties,
            } => {
                if store.relationship_exists(*id)? {
                    // Already applied (recovery after a partial flush).
                    store.update_relationship_with(*id, properties, extra)?;
                } else {
                    store.create_relationship_with(
                        *id, *source, *target, *rel_type, properties, extra,
                    )?;
                    store.bump_high_ids(0, id.raw() + 1);
                }
            }
            CommitOp::UpdateRelationship { id, properties } => {
                if store.relationship_exists(*id)? {
                    store.update_relationship_with(*id, properties, extra)?;
                } else if !idempotent {
                    return Err(DbError::RelationshipNotFound(*id));
                }
            }
            CommitOp::DeleteRelationship { id } => {
                if store.relationship_exists(*id)? {
                    store.delete_relationship(*id)?;
                } else if !idempotent {
                    return Err(DbError::RelationshipNotFound(*id));
                }
            }
        }
    }
    Ok(())
}

/// Extracts the reserved commit-timestamp property from a stored property
/// list, returning the timestamp (defaulting to bootstrap for pre-SI data)
/// and the remaining user-visible properties.
pub fn split_commit_ts(
    properties: Vec<(PropertyKeyToken, PropertyValue)>,
    commit_ts_key: PropertyKeyToken,
) -> (Timestamp, BTreeMap<PropertyKeyToken, PropertyValue>) {
    let mut ts = Timestamp::BOOTSTRAP;
    let mut out = BTreeMap::new();
    for (key, value) in properties {
        if key == commit_ts_key {
            if let PropertyValue::Int(raw) = value {
                ts = Timestamp(raw as u64);
            }
        } else {
            out.insert(key, value);
        }
    }
    (ts, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphsi_storage::test_util::TempDir;
    use graphsi_storage::GraphStoreConfig;

    fn sample_record() -> CommitRecord {
        CommitRecord {
            commit_ts: Timestamp(42),
            ops: vec![
                CommitOp::CreateNode {
                    id: NodeId::new(0),
                    labels: vec![LabelToken(1), LabelToken(2)],
                    properties: vec![
                        (PropertyKeyToken(0), PropertyValue::Int(7)),
                        (PropertyKeyToken(1), PropertyValue::String("ada".into())),
                    ],
                },
                CommitOp::CreateNode {
                    id: NodeId::new(1),
                    labels: vec![],
                    properties: vec![(PropertyKeyToken(2), PropertyValue::Bool(true))],
                },
                CommitOp::CreateRelationship {
                    id: RelationshipId::new(0),
                    source: NodeId::new(0),
                    target: NodeId::new(1),
                    rel_type: RelTypeToken(3),
                    properties: vec![(PropertyKeyToken(3), PropertyValue::Float(0.5))],
                },
                CommitOp::UpdateNode {
                    id: NodeId::new(1),
                    labels: vec![LabelToken(9)],
                    properties: vec![],
                },
                CommitOp::DeleteRelationship {
                    id: RelationshipId::new(0),
                },
                CommitOp::DeleteNode { id: NodeId::new(1) },
            ],
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let record = sample_record();
        let bytes = record.encode().unwrap();
        let decoded = CommitRecord::decode(&bytes).unwrap();
        assert_eq!(decoded, record);
    }

    #[test]
    fn frame_record_matches_whole_record_encoding() {
        let record = sample_record();
        let body = encode_ops(&record.ops).unwrap();
        assert_eq!(
            frame_record(record.commit_ts, &body),
            record.encode().unwrap()
        );
    }

    #[test]
    fn truncated_record_is_rejected() {
        let bytes = sample_record().encode().unwrap();
        for cut in [0, 5, 11, bytes.len() / 2, bytes.len() - 1] {
            assert!(CommitRecord::decode(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn unknown_tag_is_rejected() {
        let mut bytes = sample_record().encode().unwrap();
        bytes[13] = 200; // first op tag (after kind byte, ts, op count)
        assert!(CommitRecord::decode(&bytes).is_err());
    }

    #[test]
    fn abort_payload_is_not_a_commit_record() {
        let abort = graphsi_wal::AbortRecord { commit_ts: 9 }.encode();
        assert!(CommitRecord::decode(&abort).is_err());
    }

    #[test]
    fn too_many_labels_is_an_encode_error_not_truncation() {
        // Regression: `labels.len() as u8` used to wrap past 255, producing
        // a corrupt-but-checksummed record (the decoder would read a tiny
        // label count and misparse everything after it).
        let at_limit = CommitRecord {
            commit_ts: Timestamp(1),
            ops: vec![CommitOp::CreateNode {
                id: NodeId::new(0),
                labels: (0..255).map(LabelToken).collect(),
                properties: vec![],
            }],
        };
        let bytes = at_limit.encode().unwrap();
        assert_eq!(CommitRecord::decode(&bytes).unwrap(), at_limit);

        let over_limit = CommitRecord {
            commit_ts: Timestamp(1),
            ops: vec![CommitOp::CreateNode {
                id: NodeId::new(0),
                labels: (0..256).map(LabelToken).collect(),
                properties: vec![],
            }],
        };
        let err = over_limit.encode().unwrap_err();
        assert!(
            matches!(err, DbError::CommitRecordOverflow(_)),
            "got {err:?}"
        );
        assert!(err.to_string().contains("256 labels"));
    }

    #[test]
    fn too_many_properties_is_an_encode_error() {
        let over_limit = CommitRecord {
            commit_ts: Timestamp(1),
            ops: vec![CommitOp::UpdateRelationship {
                id: RelationshipId::new(0),
                properties: (0..=u16::MAX as u32)
                    .map(|i| (PropertyKeyToken(i), PropertyValue::Bool(true)))
                    .collect(),
            }],
        };
        assert!(matches!(
            over_limit.encode(),
            Err(DbError::CommitRecordOverflow(_))
        ));
    }

    #[test]
    fn footprint_covers_rel_endpoints_and_is_sorted() {
        const SHARDS: usize = 64;
        let ops = vec![CommitOp::CreateRelationship {
            id: RelationshipId::new(3),
            source: NodeId::new(10),
            target: NodeId::new(20),
            rel_type: RelTypeToken(0),
            properties: vec![],
        }];
        let footprint = record_footprint(&ops, SHARDS, |_| None);
        let mut expected = vec![
            rel_shard(RelationshipId::new(3), SHARDS),
            node_shard(NodeId::new(10), SHARDS),
            node_shard(NodeId::new(20), SHARDS),
        ];
        expected.sort_unstable();
        expected.dedup();
        assert_eq!(footprint, expected);
        assert!(footprint.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn footprint_resolves_update_and_delete_endpoints() {
        const SHARDS: usize = 64;
        let ops = vec![
            CommitOp::UpdateRelationship {
                id: RelationshipId::new(5),
                properties: vec![],
            },
            CommitOp::DeleteRelationship {
                id: RelationshipId::new(6),
            },
        ];
        let footprint = record_footprint(&ops, SHARDS, |id| {
            Some((NodeId::new(id.raw() * 10), NodeId::new(id.raw() * 10 + 1)))
        });
        for shard in [
            rel_shard(RelationshipId::new(5), SHARDS),
            node_shard(NodeId::new(50), SHARDS),
            node_shard(NodeId::new(51), SHARDS),
            rel_shard(RelationshipId::new(6), SHARDS),
            node_shard(NodeId::new(60), SHARDS),
            node_shard(NodeId::new(61), SHARDS),
        ] {
            assert!(footprint.contains(&shard));
        }
    }

    #[test]
    fn unresolvable_endpoints_degrade_to_every_shard() {
        let ops = vec![CommitOp::DeleteRelationship {
            id: RelationshipId::new(1),
        }];
        let footprint = record_footprint(&ops, 8, |_| None);
        assert_eq!(footprint, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn disjoint_node_commits_usually_have_disjoint_footprints() {
        // Not a guarantee (hashing can collide) — but with 2 nodes over
        // 1024 shards a collision would point at a broken shard function.
        let a = record_footprint(
            &[CommitOp::UpdateNode {
                id: NodeId::new(1),
                labels: vec![],
                properties: vec![],
            }],
            1024,
            |_| None,
        );
        let b = record_footprint(
            &[CommitOp::UpdateNode {
                id: NodeId::new(2),
                labels: vec![],
                properties: vec![],
            }],
            1024,
            |_| None,
        );
        assert_ne!(a, b);
    }

    #[test]
    fn apply_and_reapply_idempotently() {
        let dir = TempDir::new("commit_apply");
        let store = GraphStore::open(dir.path(), GraphStoreConfig::default()).unwrap();
        let ts_key = PropertyKeyToken(1000);
        let record = CommitRecord {
            commit_ts: Timestamp(5),
            ops: vec![
                CommitOp::CreateNode {
                    id: NodeId::new(0),
                    labels: vec![LabelToken(0)],
                    properties: vec![(PropertyKeyToken(0), PropertyValue::Int(1))],
                },
                CommitOp::CreateNode {
                    id: NodeId::new(1),
                    labels: vec![],
                    properties: vec![],
                },
                CommitOp::CreateRelationship {
                    id: RelationshipId::new(0),
                    source: NodeId::new(0),
                    target: NodeId::new(1),
                    rel_type: RelTypeToken(0),
                    properties: vec![],
                },
            ],
        };
        apply_to_store(&store, &record, ts_key, false).unwrap();
        // Replaying the same record (recovery) must not duplicate anything.
        apply_to_store(&store, &record, ts_key, true).unwrap();
        assert_eq!(store.scan_node_ids().unwrap().len(), 2);
        assert_eq!(store.scan_relationship_ids().unwrap().len(), 1);
        assert_eq!(store.node_degree(NodeId::new(0)).unwrap(), 1);

        let stored = store.read_node(NodeId::new(0)).unwrap().unwrap();
        let (ts, props) = split_commit_ts(stored.properties, ts_key);
        assert_eq!(ts, Timestamp(5));
        assert_eq!(
            props.get(&PropertyKeyToken(0)),
            Some(&PropertyValue::Int(1))
        );
    }

    #[test]
    fn strict_apply_rejects_missing_entities() {
        let dir = TempDir::new("commit_strict");
        let store = GraphStore::open(dir.path(), GraphStoreConfig::default()).unwrap();
        let ts_key = PropertyKeyToken(1000);
        let record = CommitRecord {
            commit_ts: Timestamp(1),
            ops: vec![CommitOp::DeleteNode { id: NodeId::new(7) }],
        };
        assert!(apply_to_store(&store, &record, ts_key, false).is_err());
        assert!(apply_to_store(&store, &record, ts_key, true).is_ok());
    }

    #[test]
    fn split_commit_ts_defaults_to_bootstrap() {
        let ts_key = PropertyKeyToken(1000);
        let (ts, props) =
            split_commit_ts(vec![(PropertyKeyToken(0), PropertyValue::Int(1))], ts_key);
        assert_eq!(ts, Timestamp::BOOTSTRAP);
        assert_eq!(props.len(), 1);
    }
}
