//! Commit records: the WAL payload describing one committed transaction,
//! and their application to the persistent store (both at commit time and
//! during recovery replay).
//!
//! The encoding is a small hand-rolled binary format (no external
//! serialisation dependency): a commit timestamp followed by a list of
//! operations, each carrying the token-level state the store needs.

use std::collections::BTreeMap;

use graphsi_storage::{
    GraphStore, LabelToken, NodeId, PropertyKeyToken, PropertyValue, RelTypeToken, RelationshipId,
};
use graphsi_txn::Timestamp;

use crate::error::{DbError, Result};

/// One operation of a committed transaction, in store-application order.
#[derive(Clone, Debug, PartialEq)]
pub enum CommitOp {
    /// Install a newly created node.
    CreateNode {
        /// Node ID.
        id: NodeId,
        /// Labels of the new node.
        labels: Vec<LabelToken>,
        /// Properties of the new node.
        properties: Vec<(PropertyKeyToken, PropertyValue)>,
    },
    /// Overwrite an existing node with its newest committed state.
    UpdateNode {
        /// Node ID.
        id: NodeId,
        /// New labels.
        labels: Vec<LabelToken>,
        /// New properties.
        properties: Vec<(PropertyKeyToken, PropertyValue)>,
    },
    /// Physically remove a node from the store.
    DeleteNode {
        /// Node ID.
        id: NodeId,
    },
    /// Install a newly created relationship.
    CreateRelationship {
        /// Relationship ID.
        id: RelationshipId,
        /// Source node.
        source: NodeId,
        /// Target node.
        target: NodeId,
        /// Relationship type.
        rel_type: RelTypeToken,
        /// Properties of the new relationship.
        properties: Vec<(PropertyKeyToken, PropertyValue)>,
    },
    /// Overwrite an existing relationship's properties.
    UpdateRelationship {
        /// Relationship ID.
        id: RelationshipId,
        /// New properties.
        properties: Vec<(PropertyKeyToken, PropertyValue)>,
    },
    /// Physically remove a relationship from the store.
    DeleteRelationship {
        /// Relationship ID.
        id: RelationshipId,
    },
}

/// The WAL payload of one committed transaction.
#[derive(Clone, Debug, PartialEq)]
pub struct CommitRecord {
    /// Commit timestamp assigned by the timestamp oracle.
    pub commit_ts: Timestamp,
    /// Operations in application order (creates before deletes of
    /// dependent entities; relationship deletions before node deletions).
    pub ops: Vec<CommitOp>,
}

impl CommitRecord {
    /// Serialises the record to bytes for the WAL. Fails with
    /// [`DbError::CommitRecordOverflow`] if any field exceeds the format's
    /// limits (e.g. more than 255 labels on one entity) — the limits are
    /// validated here rather than silently truncated, so a malformed record
    /// can never reach the log.
    pub fn encode(&self) -> Result<Vec<u8>> {
        Ok(frame_record(self.commit_ts, &encode_ops(&self.ops)?))
    }

    /// Deserialises a record previously produced by [`CommitRecord::encode`].
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        let mut cursor = Cursor { bytes, pos: 0 };
        let commit_ts = Timestamp(cursor.u64()?);
        let count = cursor.u32()? as usize;
        let mut ops = Vec::with_capacity(count.min(1024));
        for _ in 0..count {
            ops.push(decode_op(&mut cursor)?);
        }
        Ok(CommitRecord { commit_ts, ops })
    }
}

/// Maximum number of labels one entity can carry in a commit record (the
/// label count is encoded as a single byte).
pub const MAX_LABELS_PER_ENTITY: usize = u8::MAX as usize;

/// Maximum number of properties one entity can carry in a commit record
/// (the property count is encoded as a `u16`).
pub const MAX_PROPS_PER_ENTITY: usize = u16::MAX as usize;

/// Serialises a list of operations *without* the record header. The commit
/// pipeline encodes the (potentially large) op list outside its sequencing
/// critical section and frames it with the commit timestamp only once the
/// timestamp is assigned — see [`frame_record`].
pub fn encode_ops(ops: &[CommitOp]) -> Result<Vec<u8>> {
    let mut out = Vec::with_capacity(64);
    out.extend_from_slice(&(ops.len() as u32).to_le_bytes());
    for op in ops {
        encode_op(op, &mut out)?;
    }
    Ok(out)
}

/// Prepends the commit-timestamp header to an op body produced by
/// [`encode_ops`], yielding the final WAL payload.
pub fn frame_record(commit_ts: Timestamp, ops_body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + ops_body.len());
    out.extend_from_slice(&commit_ts.raw().to_le_bytes());
    out.extend_from_slice(ops_body);
    out
}

/// Overwrites the commit-timestamp header of an already-framed payload.
/// The commit pipeline frames the payload with a placeholder *outside*
/// its sequencing lock and patches the real timestamp in place once it is
/// drawn, so the critical section never copies the record.
pub fn patch_commit_ts(payload: &mut [u8], commit_ts: Timestamp) {
    payload[..8].copy_from_slice(&commit_ts.raw().to_le_bytes());
}

fn encode_op(op: &CommitOp, out: &mut Vec<u8>) -> Result<()> {
    match op {
        CommitOp::CreateNode {
            id,
            labels,
            properties,
        } => {
            out.push(1);
            out.extend_from_slice(&id.raw().to_le_bytes());
            encode_labels(labels, out)?;
            encode_props(properties, out)?;
        }
        CommitOp::UpdateNode {
            id,
            labels,
            properties,
        } => {
            out.push(2);
            out.extend_from_slice(&id.raw().to_le_bytes());
            encode_labels(labels, out)?;
            encode_props(properties, out)?;
        }
        CommitOp::DeleteNode { id } => {
            out.push(3);
            out.extend_from_slice(&id.raw().to_le_bytes());
        }
        CommitOp::CreateRelationship {
            id,
            source,
            target,
            rel_type,
            properties,
        } => {
            out.push(4);
            out.extend_from_slice(&id.raw().to_le_bytes());
            out.extend_from_slice(&source.raw().to_le_bytes());
            out.extend_from_slice(&target.raw().to_le_bytes());
            out.extend_from_slice(&rel_type.0.to_le_bytes());
            encode_props(properties, out)?;
        }
        CommitOp::UpdateRelationship { id, properties } => {
            out.push(5);
            out.extend_from_slice(&id.raw().to_le_bytes());
            encode_props(properties, out)?;
        }
        CommitOp::DeleteRelationship { id } => {
            out.push(6);
            out.extend_from_slice(&id.raw().to_le_bytes());
        }
    }
    Ok(())
}

fn encode_labels(labels: &[LabelToken], out: &mut Vec<u8>) -> Result<()> {
    if labels.len() > MAX_LABELS_PER_ENTITY {
        return Err(DbError::CommitRecordOverflow(format!(
            "{} labels on one entity (maximum {MAX_LABELS_PER_ENTITY})",
            labels.len()
        )));
    }
    out.push(labels.len() as u8);
    for l in labels {
        out.extend_from_slice(&l.0.to_le_bytes());
    }
    Ok(())
}

fn encode_props(props: &[(PropertyKeyToken, PropertyValue)], out: &mut Vec<u8>) -> Result<()> {
    if props.len() > MAX_PROPS_PER_ENTITY {
        return Err(DbError::CommitRecordOverflow(format!(
            "{} properties on one entity (maximum {MAX_PROPS_PER_ENTITY})",
            props.len()
        )));
    }
    out.extend_from_slice(&(props.len() as u16).to_le_bytes());
    for (key, value) in props {
        out.extend_from_slice(&key.0.to_le_bytes());
        match value {
            PropertyValue::Bool(b) => {
                out.push(0);
                out.push(u8::from(*b));
            }
            PropertyValue::Int(i) => {
                out.push(1);
                out.extend_from_slice(&i.to_le_bytes());
            }
            PropertyValue::Float(x) => {
                out.push(2);
                out.extend_from_slice(&x.to_bits().to_le_bytes());
            }
            PropertyValue::String(s) => {
                out.push(3);
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
        }
    }
    Ok(())
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8]> {
        if self.pos + n > self.bytes.len() {
            return Err(DbError::CorruptCommitRecord(format!(
                "truncated record at offset {}",
                self.pos
            )));
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

fn decode_op(cursor: &mut Cursor<'_>) -> Result<CommitOp> {
    let tag = cursor.u8()?;
    Ok(match tag {
        1 | 2 => {
            let id = NodeId::new(cursor.u64()?);
            let labels = decode_labels(cursor)?;
            let properties = decode_props(cursor)?;
            if tag == 1 {
                CommitOp::CreateNode {
                    id,
                    labels,
                    properties,
                }
            } else {
                CommitOp::UpdateNode {
                    id,
                    labels,
                    properties,
                }
            }
        }
        3 => CommitOp::DeleteNode {
            id: NodeId::new(cursor.u64()?),
        },
        4 => CommitOp::CreateRelationship {
            id: RelationshipId::new(cursor.u64()?),
            source: NodeId::new(cursor.u64()?),
            target: NodeId::new(cursor.u64()?),
            rel_type: RelTypeToken(cursor.u32()?),
            properties: decode_props(cursor)?,
        },
        5 => CommitOp::UpdateRelationship {
            id: RelationshipId::new(cursor.u64()?),
            properties: decode_props(cursor)?,
        },
        6 => CommitOp::DeleteRelationship {
            id: RelationshipId::new(cursor.u64()?),
        },
        other => {
            return Err(DbError::CorruptCommitRecord(format!(
                "unknown op tag {other}"
            )))
        }
    })
}

fn decode_labels(cursor: &mut Cursor<'_>) -> Result<Vec<LabelToken>> {
    let count = cursor.u8()? as usize;
    let mut labels = Vec::with_capacity(count);
    for _ in 0..count {
        labels.push(LabelToken(cursor.u32()?));
    }
    Ok(labels)
}

fn decode_props(cursor: &mut Cursor<'_>) -> Result<Vec<(PropertyKeyToken, PropertyValue)>> {
    let count = cursor.u16()? as usize;
    let mut props = Vec::with_capacity(count);
    for _ in 0..count {
        let key = PropertyKeyToken(cursor.u32()?);
        let vtag = cursor.u8()?;
        let value = match vtag {
            0 => PropertyValue::Bool(cursor.u8()? != 0),
            1 => PropertyValue::Int(cursor.u64()? as i64),
            2 => PropertyValue::Float(f64::from_bits(cursor.u64()?)),
            3 => {
                let len = cursor.u32()? as usize;
                let bytes = cursor.take(len)?;
                PropertyValue::String(
                    std::str::from_utf8(bytes)
                        .map_err(|_| {
                            DbError::CorruptCommitRecord("invalid UTF-8 in property".into())
                        })?
                        .to_owned(),
                )
            }
            other => {
                return Err(DbError::CorruptCommitRecord(format!(
                    "unknown value tag {other}"
                )))
            }
        };
        props.push((key, value));
    }
    Ok(props)
}

/// Applies a commit record to the persistent store, installing the newest
/// committed version of every touched entity. The commit timestamp is
/// persisted as an extra, reserved property on each entity — exactly the
/// "additional property ... for keeping the commit timestamp" of §4 — so a
/// reopened database can seed cache base versions correctly.
///
/// With `idempotent` set (recovery replay) the function tolerates
/// operations whose effect is already present in the store.
pub fn apply_to_store(
    store: &GraphStore,
    record: &CommitRecord,
    commit_ts_key: PropertyKeyToken,
    idempotent: bool,
) -> Result<()> {
    // The reserved commit-ts property is appended to each entity's chain by
    // the store layer itself (`extra` parameter), so no op ever clones its
    // property list just to attach the timestamp.
    let ts_prop = (
        commit_ts_key,
        PropertyValue::Int(record.commit_ts.raw() as i64),
    );
    let extra = Some(&ts_prop);
    for op in &record.ops {
        match op {
            CommitOp::CreateNode {
                id,
                labels,
                properties,
            }
            | CommitOp::UpdateNode {
                id,
                labels,
                properties,
            } => {
                let exists = store.node_exists(*id)?;
                if exists {
                    store.update_node_with(*id, labels, properties, extra)?;
                } else {
                    if matches!(op, CommitOp::UpdateNode { .. }) && !idempotent {
                        return Err(DbError::NodeNotFound(*id));
                    }
                    store.create_node_with(*id, labels, properties, extra)?;
                    store.bump_high_ids(id.raw() + 1, 0);
                }
            }
            CommitOp::DeleteNode { id } => {
                if store.node_exists(*id)? {
                    store.delete_node(*id)?;
                } else if !idempotent {
                    return Err(DbError::NodeNotFound(*id));
                }
            }
            CommitOp::CreateRelationship {
                id,
                source,
                target,
                rel_type,
                properties,
            } => {
                if store.relationship_exists(*id)? {
                    // Already applied (recovery after a partial flush).
                    store.update_relationship_with(*id, properties, extra)?;
                } else {
                    store.create_relationship_with(
                        *id, *source, *target, *rel_type, properties, extra,
                    )?;
                    store.bump_high_ids(0, id.raw() + 1);
                }
            }
            CommitOp::UpdateRelationship { id, properties } => {
                if store.relationship_exists(*id)? {
                    store.update_relationship_with(*id, properties, extra)?;
                } else if !idempotent {
                    return Err(DbError::RelationshipNotFound(*id));
                }
            }
            CommitOp::DeleteRelationship { id } => {
                if store.relationship_exists(*id)? {
                    store.delete_relationship(*id)?;
                } else if !idempotent {
                    return Err(DbError::RelationshipNotFound(*id));
                }
            }
        }
    }
    Ok(())
}

/// Extracts the reserved commit-timestamp property from a stored property
/// list, returning the timestamp (defaulting to bootstrap for pre-SI data)
/// and the remaining user-visible properties.
pub fn split_commit_ts(
    properties: Vec<(PropertyKeyToken, PropertyValue)>,
    commit_ts_key: PropertyKeyToken,
) -> (Timestamp, BTreeMap<PropertyKeyToken, PropertyValue>) {
    let mut ts = Timestamp::BOOTSTRAP;
    let mut out = BTreeMap::new();
    for (key, value) in properties {
        if key == commit_ts_key {
            if let PropertyValue::Int(raw) = value {
                ts = Timestamp(raw as u64);
            }
        } else {
            out.insert(key, value);
        }
    }
    (ts, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphsi_storage::test_util::TempDir;
    use graphsi_storage::GraphStoreConfig;

    fn sample_record() -> CommitRecord {
        CommitRecord {
            commit_ts: Timestamp(42),
            ops: vec![
                CommitOp::CreateNode {
                    id: NodeId::new(0),
                    labels: vec![LabelToken(1), LabelToken(2)],
                    properties: vec![
                        (PropertyKeyToken(0), PropertyValue::Int(7)),
                        (PropertyKeyToken(1), PropertyValue::String("ada".into())),
                    ],
                },
                CommitOp::CreateNode {
                    id: NodeId::new(1),
                    labels: vec![],
                    properties: vec![(PropertyKeyToken(2), PropertyValue::Bool(true))],
                },
                CommitOp::CreateRelationship {
                    id: RelationshipId::new(0),
                    source: NodeId::new(0),
                    target: NodeId::new(1),
                    rel_type: RelTypeToken(3),
                    properties: vec![(PropertyKeyToken(3), PropertyValue::Float(0.5))],
                },
                CommitOp::UpdateNode {
                    id: NodeId::new(1),
                    labels: vec![LabelToken(9)],
                    properties: vec![],
                },
                CommitOp::DeleteRelationship {
                    id: RelationshipId::new(0),
                },
                CommitOp::DeleteNode { id: NodeId::new(1) },
            ],
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let record = sample_record();
        let bytes = record.encode().unwrap();
        let decoded = CommitRecord::decode(&bytes).unwrap();
        assert_eq!(decoded, record);
    }

    #[test]
    fn frame_record_matches_whole_record_encoding() {
        let record = sample_record();
        let body = encode_ops(&record.ops).unwrap();
        assert_eq!(
            frame_record(record.commit_ts, &body),
            record.encode().unwrap()
        );
    }

    #[test]
    fn truncated_record_is_rejected() {
        let bytes = sample_record().encode().unwrap();
        for cut in [0, 5, 11, bytes.len() / 2, bytes.len() - 1] {
            assert!(CommitRecord::decode(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn unknown_tag_is_rejected() {
        let mut bytes = sample_record().encode().unwrap();
        bytes[12] = 200; // first op tag
        assert!(CommitRecord::decode(&bytes).is_err());
    }

    #[test]
    fn too_many_labels_is_an_encode_error_not_truncation() {
        // Regression: `labels.len() as u8` used to wrap past 255, producing
        // a corrupt-but-checksummed record (the decoder would read a tiny
        // label count and misparse everything after it).
        let at_limit = CommitRecord {
            commit_ts: Timestamp(1),
            ops: vec![CommitOp::CreateNode {
                id: NodeId::new(0),
                labels: (0..255).map(LabelToken).collect(),
                properties: vec![],
            }],
        };
        let bytes = at_limit.encode().unwrap();
        assert_eq!(CommitRecord::decode(&bytes).unwrap(), at_limit);

        let over_limit = CommitRecord {
            commit_ts: Timestamp(1),
            ops: vec![CommitOp::CreateNode {
                id: NodeId::new(0),
                labels: (0..256).map(LabelToken).collect(),
                properties: vec![],
            }],
        };
        let err = over_limit.encode().unwrap_err();
        assert!(
            matches!(err, DbError::CommitRecordOverflow(_)),
            "got {err:?}"
        );
        assert!(err.to_string().contains("256 labels"));
    }

    #[test]
    fn too_many_properties_is_an_encode_error() {
        let over_limit = CommitRecord {
            commit_ts: Timestamp(1),
            ops: vec![CommitOp::UpdateRelationship {
                id: RelationshipId::new(0),
                properties: (0..=u16::MAX as u32)
                    .map(|i| (PropertyKeyToken(i), PropertyValue::Bool(true)))
                    .collect(),
            }],
        };
        assert!(matches!(
            over_limit.encode(),
            Err(DbError::CommitRecordOverflow(_))
        ));
    }

    #[test]
    fn apply_and_reapply_idempotently() {
        let dir = TempDir::new("commit_apply");
        let store = GraphStore::open(dir.path(), GraphStoreConfig::default()).unwrap();
        let ts_key = PropertyKeyToken(1000);
        let record = CommitRecord {
            commit_ts: Timestamp(5),
            ops: vec![
                CommitOp::CreateNode {
                    id: NodeId::new(0),
                    labels: vec![LabelToken(0)],
                    properties: vec![(PropertyKeyToken(0), PropertyValue::Int(1))],
                },
                CommitOp::CreateNode {
                    id: NodeId::new(1),
                    labels: vec![],
                    properties: vec![],
                },
                CommitOp::CreateRelationship {
                    id: RelationshipId::new(0),
                    source: NodeId::new(0),
                    target: NodeId::new(1),
                    rel_type: RelTypeToken(0),
                    properties: vec![],
                },
            ],
        };
        apply_to_store(&store, &record, ts_key, false).unwrap();
        // Replaying the same record (recovery) must not duplicate anything.
        apply_to_store(&store, &record, ts_key, true).unwrap();
        assert_eq!(store.scan_node_ids().unwrap().len(), 2);
        assert_eq!(store.scan_relationship_ids().unwrap().len(), 1);
        assert_eq!(store.node_degree(NodeId::new(0)).unwrap(), 1);

        let stored = store.read_node(NodeId::new(0)).unwrap().unwrap();
        let (ts, props) = split_commit_ts(stored.properties, ts_key);
        assert_eq!(ts, Timestamp(5));
        assert_eq!(
            props.get(&PropertyKeyToken(0)),
            Some(&PropertyValue::Int(1))
        );
    }

    #[test]
    fn strict_apply_rejects_missing_entities() {
        let dir = TempDir::new("commit_strict");
        let store = GraphStore::open(dir.path(), GraphStoreConfig::default()).unwrap();
        let ts_key = PropertyKeyToken(1000);
        let record = CommitRecord {
            commit_ts: Timestamp(1),
            ops: vec![CommitOp::DeleteNode { id: NodeId::new(7) }],
        };
        assert!(apply_to_store(&store, &record, ts_key, false).is_err());
        assert!(apply_to_store(&store, &record, ts_key, true).is_ok());
    }

    #[test]
    fn split_commit_ts_defaults_to_bootstrap() {
        let ts_key = PropertyKeyToken(1000);
        let (ts, props) =
            split_commit_ts(vec![(PropertyKeyToken(0), PropertyValue::Int(1))], ts_key);
        assert_eq!(ts, Timestamp::BOOTSTRAP);
        assert_eq!(props.len(), 1);
    }
}
