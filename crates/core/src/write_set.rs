//! The private write set of a transaction.
//!
//! "Versions of uncommitted data items should be kept private and not
//! accessible to other transactions, but they should [be] read by the
//! transaction that wrote them to guarantee that a transaction reads its
//! own writes." (the paper, §3)
//!
//! Every entity a transaction modifies gets an entry holding its
//! *pre-image* (the version visible in the transaction's snapshot, if the
//! entity existed) and its *post-image* (the pending new state, or `None`
//! for a deletion). Reads consult the write set first, giving
//! read-your-own-writes; at commit the entries drive version installation,
//! store updates and index maintenance.

use std::collections::HashMap;
use std::sync::Arc;

use graphsi_storage::{NodeId, RelationshipId};
use graphsi_txn::Timestamp;

use crate::entity::{NodeData, RelationshipData};

/// How a write-set entry came to be.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WriteKind {
    /// The entity is created by this transaction.
    Created,
    /// The entity existed and is modified by this transaction.
    Updated,
    /// The entity existed and is deleted by this transaction.
    Deleted,
    /// The entity was created *and* deleted inside this transaction; it
    /// never becomes visible to anyone else.
    CreatedThenDeleted,
}

/// A pending change to one entity.
#[derive(Clone, Debug)]
pub struct PendingWrite<T> {
    /// The snapshot state the transaction based its change on (`None` if
    /// the entity is created by this transaction).
    pub before: Option<Arc<T>>,
    /// Commit timestamp of the pre-image, used to seed the cache's base
    /// version at commit time.
    pub before_ts: Option<Timestamp>,
    /// The pending new state (`None` once the entity is deleted).
    pub after: Option<T>,
}

impl<T> PendingWrite<T> {
    /// Classifies the entry.
    pub fn kind(&self) -> WriteKind {
        match (&self.before, &self.after) {
            (None, Some(_)) => WriteKind::Created,
            (Some(_), Some(_)) => WriteKind::Updated,
            (Some(_), None) => WriteKind::Deleted,
            (None, None) => WriteKind::CreatedThenDeleted,
        }
    }

    /// Returns `true` if this entry leaves no externally visible change
    /// (created then deleted within the same transaction).
    pub fn is_noop(&self) -> bool {
        self.kind() == WriteKind::CreatedThenDeleted
    }
}

/// The complete write set of one transaction.
#[derive(Debug, Default)]
pub struct WriteSet {
    /// Pending node changes keyed by node ID.
    pub nodes: HashMap<NodeId, PendingWrite<NodeData>>,
    /// Pending relationship changes keyed by relationship ID.
    pub relationships: HashMap<RelationshipId, PendingWrite<RelationshipData>>,
}

impl WriteSet {
    /// Creates an empty write set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns `true` if the transaction has buffered no writes at all.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty() && self.relationships.is_empty()
    }

    /// Number of pending entity changes.
    pub fn len(&self) -> usize {
        self.nodes.len() + self.relationships.len()
    }

    /// Records the creation of a node.
    pub fn create_node(&mut self, id: NodeId, data: NodeData) {
        self.nodes.insert(
            id,
            PendingWrite {
                before: None,
                before_ts: None,
                after: Some(data),
            },
        );
    }

    /// Records an update of a node. The pre-image is captured only on the
    /// first write to the entity within this transaction.
    pub fn update_node(
        &mut self,
        id: NodeId,
        before: Option<(Arc<NodeData>, Timestamp)>,
        after: NodeData,
    ) {
        match self.nodes.get_mut(&id) {
            Some(entry) => entry.after = Some(after),
            None => {
                let (before, before_ts) = match before {
                    Some((data, ts)) => (Some(data), Some(ts)),
                    None => (None, None),
                };
                self.nodes.insert(
                    id,
                    PendingWrite {
                        before,
                        before_ts,
                        after: Some(after),
                    },
                );
            }
        }
    }

    /// Records the deletion of a node.
    pub fn delete_node(&mut self, id: NodeId, before: Option<(Arc<NodeData>, Timestamp)>) {
        match self.nodes.get_mut(&id) {
            Some(entry) => entry.after = None,
            None => {
                let (before, before_ts) = match before {
                    Some((data, ts)) => (Some(data), Some(ts)),
                    None => (None, None),
                };
                self.nodes.insert(
                    id,
                    PendingWrite {
                        before,
                        before_ts,
                        after: None,
                    },
                );
            }
        }
    }

    /// Records the creation of a relationship.
    pub fn create_relationship(&mut self, id: RelationshipId, data: RelationshipData) {
        self.relationships.insert(
            id,
            PendingWrite {
                before: None,
                before_ts: None,
                after: Some(data),
            },
        );
    }

    /// Records an update of a relationship.
    pub fn update_relationship(
        &mut self,
        id: RelationshipId,
        before: Option<(Arc<RelationshipData>, Timestamp)>,
        after: RelationshipData,
    ) {
        match self.relationships.get_mut(&id) {
            Some(entry) => entry.after = Some(after),
            None => {
                let (before, before_ts) = match before {
                    Some((data, ts)) => (Some(data), Some(ts)),
                    None => (None, None),
                };
                self.relationships.insert(
                    id,
                    PendingWrite {
                        before,
                        before_ts,
                        after: Some(after),
                    },
                );
            }
        }
    }

    /// Records the deletion of a relationship.
    pub fn delete_relationship(
        &mut self,
        id: RelationshipId,
        before: Option<(Arc<RelationshipData>, Timestamp)>,
    ) {
        match self.relationships.get_mut(&id) {
            Some(entry) => entry.after = None,
            None => {
                let (before, before_ts) = match before {
                    Some((data, ts)) => (Some(data), Some(ts)),
                    None => (None, None),
                };
                self.relationships.insert(
                    id,
                    PendingWrite {
                        before,
                        before_ts,
                        after: None,
                    },
                );
            }
        }
    }

    /// Pending state of a node, if this transaction touched it.
    /// `Some(None)` means the node is deleted in this transaction.
    #[allow(clippy::option_option)]
    pub fn node_state(&self, id: NodeId) -> Option<Option<&NodeData>> {
        self.nodes.get(&id).map(|w| w.after.as_ref())
    }

    /// Pending state of a relationship, if this transaction touched it.
    #[allow(clippy::option_option)]
    pub fn relationship_state(&self, id: RelationshipId) -> Option<Option<&RelationshipData>> {
        self.relationships.get(&id).map(|w| w.after.as_ref())
    }

    /// Relationships created or still alive in this write set that touch
    /// `node` (used for read-your-own-writes expansion).
    pub fn pending_relationships_of(
        &self,
        node: NodeId,
    ) -> Vec<(RelationshipId, &RelationshipData)> {
        self.relationships
            .iter()
            .filter_map(|(&id, w)| w.after.as_ref().map(|data| (id, data)))
            .filter(|(_, data)| data.touches(node))
            .collect()
    }

    /// Relationship IDs deleted by this transaction.
    pub fn deleted_relationships(&self) -> Vec<RelationshipId> {
        self.relationships
            .iter()
            .filter(|(_, w)| w.after.is_none())
            .map(|(&id, _)| id)
            .collect()
    }

    /// Node IDs deleted by this transaction.
    pub fn deleted_nodes(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|(_, w)| w.after.is_none())
            .map(|(&id, _)| id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphsi_storage::RelTypeToken;
    use std::collections::BTreeMap;

    fn node_data() -> NodeData {
        NodeData::default()
    }

    fn rel_data(src: u64, dst: u64) -> RelationshipData {
        RelationshipData::new(
            NodeId::new(src),
            NodeId::new(dst),
            RelTypeToken(0),
            BTreeMap::new(),
        )
    }

    #[test]
    fn kinds_are_classified() {
        let mut ws = WriteSet::new();
        assert!(ws.is_empty());
        ws.create_node(NodeId::new(1), node_data());
        assert_eq!(ws.nodes[&NodeId::new(1)].kind(), WriteKind::Created);

        ws.update_node(
            NodeId::new(2),
            Some((Arc::new(node_data()), Timestamp(3))),
            node_data(),
        );
        assert_eq!(ws.nodes[&NodeId::new(2)].kind(), WriteKind::Updated);

        ws.delete_node(NodeId::new(2), None);
        assert_eq!(ws.nodes[&NodeId::new(2)].kind(), WriteKind::Deleted);

        ws.delete_node(NodeId::new(1), None);
        assert_eq!(
            ws.nodes[&NodeId::new(1)].kind(),
            WriteKind::CreatedThenDeleted
        );
        assert!(ws.nodes[&NodeId::new(1)].is_noop());
        assert_eq!(ws.len(), 2);
    }

    #[test]
    fn first_write_captures_pre_image_once() {
        let mut ws = WriteSet::new();
        let before = Arc::new(NodeData::new(vec![], BTreeMap::new()));
        ws.update_node(
            NodeId::new(1),
            Some((Arc::clone(&before), Timestamp(7))),
            node_data(),
        );
        // A later update must not overwrite the captured pre-image.
        ws.update_node(NodeId::new(1), None, node_data());
        let entry = &ws.nodes[&NodeId::new(1)];
        assert!(entry.before.is_some());
        assert_eq!(entry.before_ts, Some(Timestamp(7)));
    }

    #[test]
    fn read_your_own_writes_state() {
        let mut ws = WriteSet::new();
        assert!(ws.node_state(NodeId::new(1)).is_none());
        ws.create_node(NodeId::new(1), node_data());
        assert!(matches!(ws.node_state(NodeId::new(1)), Some(Some(_))));
        ws.delete_node(NodeId::new(1), None);
        assert!(matches!(ws.node_state(NodeId::new(1)), Some(None)));
    }

    #[test]
    fn pending_relationships_filtered_by_node() {
        let mut ws = WriteSet::new();
        ws.create_relationship(RelationshipId::new(1), rel_data(1, 2));
        ws.create_relationship(RelationshipId::new(2), rel_data(2, 3));
        ws.create_relationship(RelationshipId::new(3), rel_data(4, 5));
        ws.delete_relationship(RelationshipId::new(2), None);
        let of_2 = ws.pending_relationships_of(NodeId::new(2));
        assert_eq!(of_2.len(), 1);
        assert_eq!(of_2[0].0, RelationshipId::new(1));
        assert_eq!(ws.deleted_relationships(), vec![RelationshipId::new(2)]);
    }

    #[test]
    fn deleted_nodes_listing() {
        let mut ws = WriteSet::new();
        ws.delete_node(NodeId::new(9), Some((Arc::new(node_data()), Timestamp(1))));
        assert_eq!(ws.deleted_nodes(), vec![NodeId::new(9)]);
    }
}
