//! The staged commit pipeline: WAL group commit with strictly in-order
//! snapshot publication.
//!
//! The paper's durable-commit protocol (WAL record → version install →
//! flush-through of the newest committed version → snapshot visibility)
//! used to run as one monolithic critical section, so commit throughput
//! was flat no matter how many writer threads were committing. The
//! pipeline splits it into three stages that overlap across threads:
//!
//! * **Stage A — sequencing** ([`CommitPipeline::sequence`]): a short
//!   lock under which a committer validates (first-committer-wins),
//!   draws its commit timestamp and appends its record to the WAL, so
//!   records land in the log in commit-timestamp order. The committer
//!   also registers itself with the publication queue before leaving the
//!   lock, fixing its position in the publication order.
//! * **Stage B — group durability** ([`CommitPipeline::wait_durable`]):
//!   concurrent committers park on a leader/follower batcher; one leader
//!   issues a single [`SegmentedWal::sync_appended`] covering every
//!   record appended so far, amortising the `fsync` across the whole
//!   batch. [`DbConfig::group_commit_max_batch`] and
//!   [`DbConfig::group_commit_max_delay`] bound how long a leader waits
//!   for more committers to join. After a successful batch the leader
//!   also drives WAL segment rotation
//!   ([`SegmentedWal::rotate_if_needed`]) — off the batcher lock, so a
//!   segment switch costs one extra fsync paid by the leader and no
//!   commit ever blocks on it.
//! * **Stage C — installation and publication**: after durability each
//!   committer installs its versions, applies its record to the store
//!   under the per-shard [`CommitPipeline::store_apply`] locks — the
//!   commit's ops are partitioned into a shard footprint
//!   ([`crate::commit::record_footprint`]) covering every node page and
//!   relationship chain the flush-through touches, the shard locks are
//!   taken in canonical ascending order, and commits with disjoint
//!   footprints flush through concurrently while overlapping ones queue
//!   per shard — and updates the indexes concurrently with other
//!   committers; [`CommitPipeline::publish`] then advances the visible
//!   timestamp as a low-water mark, strictly in commit-timestamp order,
//!   so no snapshot ever observes commit `N+1` without commit `N` even
//!   though post-sync work overlaps.
//!
//! Because versions are installed *after* the sequencing lock is
//! released, first-committer-wins validation consults the pipeline's
//! pending-commit table ([`CommitPipeline::pending_for`]) in
//! addition to the version cache: a commit that has drawn its timestamp
//! but not yet installed its versions is visible to validators through
//! that table, and is removed from it only once the cache can answer for
//! it.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex, MutexGuard};

use graphsi_txn::{LockKey, Timestamp};
use graphsi_wal::{AbortRangeRecord, SegmentedWal, SyncPolicy, WalError};

use crate::error::{DbError, Result};
use crate::lock_rank;
use crate::metrics::DbMetrics;

/// Stage-B state of the leader/follower group-sync batcher.
struct GroupState {
    /// Highest WAL LSN known durable.
    durable_lsn: u64,
    /// A leader is currently syncing (or gathering its batch).
    syncing: bool,
    /// Committers currently parked on the batcher (including the leader).
    waiters: usize,
    /// LSN ranges invalidated by failed syncs. A committer whose record
    /// falls in a range aborts with the range's reason instead of retrying
    /// a log the kernel already refused to flush — even if a *later*
    /// successful sync reports the LSN durable, because the matching
    /// [`graphsi_wal::AbortRangeRecord`] already invalidated the record.
    aborted: Vec<AbortedRange>,
}

/// One failed group sync's invalidated LSN range.
struct AbortedRange {
    from_lsn: u64,
    to_lsn: u64,
    reason: String,
}

/// One commit registered for publication (stage C).
struct PendingPublication {
    commit_ts: Timestamp,
    /// Versions installed, store applied, indexes updated — the visible
    /// watermark may advance past this commit.
    done: bool,
    /// The commit aborted after sequencing (sync or store-apply failure);
    /// the watermark skips it.
    withdrawn: bool,
}

/// The shared commit-pipeline state of one open database.
pub(crate) struct CommitPipeline {
    /// Stage A: serialises validation, timestamp assignment and WAL append.
    seq_lock: Mutex<()>,
    group: Mutex<GroupState>,
    group_cvar: Condvar,
    publish: Mutex<VecDeque<PendingPublication>>,
    publish_cvar: Condvar,
    /// Write-set keys of commits between sequencing and version install,
    /// with their commit timestamps, for first-committer-wins validation.
    pending_keys: Mutex<HashMap<LockKey, Timestamp>>,
    /// Per-shard locks serialising the flush-through of commit records to
    /// the persistent store. The store's relationship-chain splices are
    /// multi-record read-modify-write sequences, and under
    /// first-committer-wins two pipelined commits may touch the same
    /// node's chain (locks are advisory there) — so each commit acquires
    /// the shards of its footprint ([`crate::commit::record_footprint`])
    /// in canonical (ascending) order; commits with disjoint footprints
    /// flush through concurrently, overlapping ones queue per shard.
    store_shards: Vec<Mutex<()>>,
    /// Commits currently inside their store flush-through, for the
    /// `store_apply_concurrency_peak` metric.
    store_apply_in_flight: AtomicU64,
    /// The newest commit timestamp whose effects are fully installed and
    /// published. New transactions snapshot at this value.
    visible_ts: AtomicU64,
    max_batch: usize,
    max_delay: Duration,
}

/// Holds a commit's store-apply shard locks for the duration of its
/// flush-through; created by [`CommitPipeline::store_apply`].
pub(crate) struct StoreApplyGuard<'p> {
    pipeline: &'p CommitPipeline,
    /// Guards in ascending shard order; dropped together (reverse order —
    /// release order does not matter for correctness).
    _guards: Vec<MutexGuard<'p, ()>>,
}

impl Drop for StoreApplyGuard<'_> {
    fn drop(&mut self) {
        self.pipeline
            .store_apply_in_flight
            .fetch_sub(1, Ordering::Relaxed);
    }
}

impl CommitPipeline {
    /// Creates the pipeline. `durable_lsn` seeds the batcher's durable
    /// watermark — on open every LSN already in the log is durable (it was
    /// read back from disk), so the first post-recovery sync must not
    /// count replayed records as part of its batch. `store_shards` is the
    /// size of the stage-C store-apply lock table (1 = the old single
    /// lock).
    pub(crate) fn new(
        max_batch: usize,
        max_delay: Duration,
        durable_lsn: u64,
        store_shards: usize,
    ) -> Self {
        CommitPipeline {
            seq_lock: Mutex::with_rank((), lock_rank::PIPELINE_SEQ, "core.pipeline.seq"),
            group: Mutex::with_rank(
                GroupState {
                    durable_lsn,
                    syncing: false,
                    waiters: 0,
                    aborted: Vec::new(),
                },
                lock_rank::PIPELINE_GROUP,
                "core.pipeline.group",
            ),
            group_cvar: Condvar::new(),
            publish: Mutex::with_rank(
                VecDeque::new(),
                lock_rank::PIPELINE_PUBLISH,
                "core.pipeline.publish",
            ),
            publish_cvar: Condvar::new(),
            pending_keys: Mutex::with_rank(
                HashMap::new(),
                lock_rank::PIPELINE_PENDING_KEYS,
                "core.pipeline.pending_keys",
            ),
            store_shards: (0..store_shards.max(1))
                .map(|i| {
                    Mutex::with_rank(
                        (),
                        lock_rank::STORE_SHARD_BASE + i as u32,
                        "core.pipeline.store_shard",
                    )
                })
                .collect(),
            store_apply_in_flight: AtomicU64::new(0),
            visible_ts: AtomicU64::new(0),
            max_batch: max_batch.max(1),
            max_delay,
        }
    }

    /// Number of store-apply shards (the valid footprint index range).
    pub(crate) fn store_shard_count(&self) -> usize {
        self.store_shards.len()
    }

    // ------------------------------------------------------------------
    // Visible timestamp
    // ------------------------------------------------------------------

    /// The newest published (fully installed) commit timestamp.
    pub(crate) fn visible_timestamp(&self) -> Timestamp {
        Timestamp(self.visible_ts.load(Ordering::Acquire))
    }

    /// Sets the visible timestamp directly; recovery only (no commits are
    /// in flight while the database is opening).
    pub(crate) fn set_visible_timestamp(&self, ts: Timestamp) {
        self.visible_ts.store(ts.raw(), Ordering::Release);
    }

    // ------------------------------------------------------------------
    // Stage A — sequencing
    // ------------------------------------------------------------------

    /// Enters the sequencing critical section. While the guard is held the
    /// caller validates, draws its commit timestamp, appends to the WAL
    /// and calls [`CommitPipeline::register`]; the section must stay
    /// short — no fsync, no store writes.
    pub(crate) fn sequence(&self) -> MutexGuard<'_, ()> {
        self.seq_lock.lock()
    }

    /// The pending (sequenced but not yet installed) commit timestamps for
    /// a batch of keys, probed under one table lock. Must be consulted
    /// *before* the version cache: a pending commit leaves this table only
    /// after its versions are installed, so checking in that order can
    /// never miss it.
    pub(crate) fn pending_for(&self, keys: &[LockKey]) -> Vec<Option<Timestamp>> {
        let pending = self.pending_keys.lock();
        keys.iter().map(|key| pending.get(key).copied()).collect()
    }

    /// Registers a sequenced commit for in-order publication and makes its
    /// write-set keys visible to validators. Must be called while the
    /// [`CommitPipeline::sequence`] guard is held so queue order equals
    /// commit-timestamp order.
    ///
    /// **Every** drawn commit timestamp must be registered (a commit whose
    /// WAL append fails registers and immediately withdraws): the queue
    /// then always holds a contiguous commit-ts range, which is what lets
    /// [`CommitPipeline::publish`] and [`CommitPipeline::withdraw`] index
    /// an entry by its offset from the front in O(1) instead of scanning
    /// the in-flight window.
    pub(crate) fn register(&self, commit_ts: Timestamp, keys: &[LockKey]) {
        {
            let mut pending = self.pending_keys.lock();
            for &key in keys {
                pending.insert(key, commit_ts);
            }
        }
        self.publish.lock().push_back(PendingPublication {
            commit_ts,
            done: false,
            withdrawn: false,
        });
    }

    // ------------------------------------------------------------------
    // Stage B — group durability
    // ------------------------------------------------------------------

    /// Blocks until the WAL entry `lsn` is durable, joining (or leading) a
    /// group-commit batch. Exactly one parked committer acts as leader: it
    /// optionally waits up to the configured delay for more committers,
    /// then issues a single sync covering every record appended so far.
    /// Successful leaders also rotate the WAL segment when the active one
    /// has outgrown its threshold — off the batcher lock, so the switch's
    /// extra fsync never blocks a commit.
    pub(crate) fn wait_durable(
        &self,
        wal: &SegmentedWal,
        lsn: u64,
        metrics: &DbMetrics,
    ) -> Result<()> {
        if wal.sync_policy() == SyncPolicy::Always {
            // The append already synced itself: a degenerate batch of one.
            metrics.record_group_sync(1);
            // With no batch leader to ride on, rotation is driven here. A
            // failed rotation is not a commit failure — the record is
            // already durable; the next committer retries the switch.
            let _ = wal.rotate_if_needed();
            return Ok(());
        }
        let mut state = self.group.lock();
        state.waiters += 1;
        // A joiner may be what a gathering leader is waiting for.
        self.group_cvar.notify_all();
        loop {
            // Invalidation first: a record in an aborted range is dead even
            // if a later successful sync has made the bytes durable — the
            // range-abort record in the log (appended before any such sync
            // could start) tells recovery to skip it, so acknowledging it
            // now would *lose* the commit instead. Ranges only ever cover
            // records that were not durable when their sync failed, so
            // this can never fail a commit an earlier sync acknowledged.
            if let Some(range) = state
                .aborted
                .iter()
                .find(|r| r.from_lsn <= lsn && lsn <= r.to_lsn)
            {
                let err = group_sync_error(&range.reason);
                state.waiters -= 1;
                return Err(err);
            }
            if state.durable_lsn >= lsn {
                state.waiters -= 1;
                return Ok(());
            }
            if !state.syncing {
                // Become the leader: gather a batch, sync once, publish
                // the new durable watermark to every follower.
                state.syncing = true;
                if !self.max_delay.is_zero() {
                    let deadline = Instant::now() + self.max_delay;
                    while state.waiters < self.max_batch {
                        if self.group_cvar.wait_until(&mut state, deadline).timed_out() {
                            break;
                        }
                    }
                }
                let previous_durable = state.durable_lsn;
                // Bound a possible failure to records appended *before*
                // the attempt: anything appended during the failing fsync
                // was never part of it and deserves its own sync attempt.
                let attempt_upto = wal.last_appended_lsn();
                // The fsync runs without the batcher lock so followers of
                // the *next* batch can keep appending and parking.
                drop(state);
                let result = wal.sync_appended();
                state = self.group.lock();
                state.syncing = false;
                match result {
                    Ok(durable) => {
                        if durable > state.durable_lsn {
                            // Every LSN is one commit record, so the LSN
                            // span is the number of commits this one fsync
                            // made durable.
                            metrics.record_group_sync(durable - previous_durable);
                            state.durable_lsn = durable;
                        }
                        // Rotation rides the successful batch: release the
                        // batcher first so followers return and the next
                        // leader can be elected while this one pays the
                        // segment switch's fsyncs. A failed rotation only
                        // leaves the active segment oversized — the next
                        // batch retries.
                        self.group_cvar.notify_all();
                        drop(state);
                        let _ = wal.rotate_if_needed();
                        state = self.group.lock();
                    }
                    Err(e) => {
                        // Invalidate the whole failed batch — every record
                        // in (durable, attempt_upto] belongs to a committer
                        // this failure will abort — with one range-abort
                        // record, appended *while still holding the
                        // batcher*: no new leader can be elected (and so
                        // no later sync can durably persist the failed
                        // records) before their invalidation is in the
                        // log. If even this append fails, the in-memory
                        // range still aborts the committers; only the
                        // durable invalidation is lost (the documented
                        // double-failure stance).
                        let (from_lsn, to_lsn) = (previous_durable + 1, attempt_upto);
                        if to_lsn >= from_lsn {
                            if wal
                                .append(&AbortRangeRecord { from_lsn, to_lsn }.encode())
                                .is_ok()
                            {
                                metrics.record_wal_abort();
                            }
                            state.aborted.push(AbortedRange {
                                from_lsn,
                                to_lsn,
                                reason: e.to_string(),
                            });
                        }
                    }
                }
                self.group_cvar.notify_all();
                // Re-check from the top: our own LSN is covered on
                // success, or the failure branch picks up the error.
            } else {
                self.group_cvar.wait(&mut state);
            }
        }
    }

    // ------------------------------------------------------------------
    // Stage C — installation and publication
    // ------------------------------------------------------------------

    /// Removes a commit's keys from the pending-validation table. Call
    /// once its versions are installed in the cache (the cache answers
    /// validators from then on), or when the commit aborts.
    pub(crate) fn clear_pending(&self, keys: &[LockKey]) {
        let mut pending = self.pending_keys.lock();
        for key in keys {
            pending.remove(key);
        }
    }

    /// Acquires the store-apply locks of `footprint` (shard indexes,
    /// **sorted ascending and deduplicated** — the canonical acquisition
    /// order that makes multi-shard acquisition deadlock-free) and returns
    /// a guard holding them for the flush-through. Commits with disjoint
    /// footprints proceed concurrently; each contended shard is counted in
    /// `store_apply_shard_conflicts`, and the number of commits
    /// simultaneously inside their flush-through feeds
    /// `store_apply_concurrency_peak`.
    pub(crate) fn store_apply(
        &self,
        footprint: &[usize],
        metrics: &DbMetrics,
    ) -> StoreApplyGuard<'_> {
        debug_assert!(
            footprint.windows(2).all(|w| w[0] < w[1]),
            "footprint must be sorted and deduplicated"
        );
        let mut guards = Vec::with_capacity(footprint.len());
        for &shard in footprint {
            let lock = &self.store_shards[shard];
            match lock.try_lock() {
                Some(guard) => guards.push(guard),
                None => {
                    metrics.record_store_apply_conflict();
                    guards.push(lock.lock());
                }
            }
        }
        let in_flight = self.store_apply_in_flight.fetch_add(1, Ordering::Relaxed) + 1;
        metrics.record_store_apply_concurrency(in_flight);
        StoreApplyGuard {
            pipeline: self,
            _guards: guards,
        }
    }

    /// Marks a registered commit as fully installed and blocks until the
    /// visible timestamp has advanced to (at least) its commit timestamp —
    /// i.e. until every earlier commit has published too. This is the
    /// low-water mark that keeps publication gap-free in commit-ts order.
    pub(crate) fn publish(&self, commit_ts: Timestamp) {
        let mut queue = self.publish.lock();
        if let Some(entry) = Self::entry_mut(&mut queue, commit_ts) {
            entry.done = true;
        }
        self.advance_watermark(&mut queue);
        while self.visible_ts.load(Ordering::Acquire) < commit_ts.raw() {
            self.publish_cvar.wait(&mut queue);
        }
    }

    /// Withdraws a registered commit that aborted after sequencing (failed
    /// sync or store apply): the publication watermark skips it so later
    /// commits are not wedged behind a commit that will never publish.
    pub(crate) fn withdraw(&self, commit_ts: Timestamp) {
        let mut queue = self.publish.lock();
        if let Some(entry) = Self::entry_mut(&mut queue, commit_ts) {
            entry.withdrawn = true;
        }
        self.advance_watermark(&mut queue);
    }

    /// O(1) lookup of a registered commit's queue entry. Because every
    /// drawn commit timestamp is registered exactly once (see
    /// [`CommitPipeline::register`]) and entries only ever leave from the
    /// front, the queue holds a contiguous commit-ts range at all times:
    /// an entry's index is its timestamp's offset from the front. The old
    /// `iter_mut().find()` here made every `publish`/`withdraw` walk the
    /// in-flight window — O(in-flight²) aggregate under load.
    fn entry_mut<'q>(
        queue: &'q mut MutexGuard<'_, VecDeque<PendingPublication>>,
        commit_ts: Timestamp,
    ) -> Option<&'q mut PendingPublication> {
        let front_ts = queue.front()?.commit_ts;
        let idx = commit_ts.raw().checked_sub(front_ts.raw())? as usize;
        let entry = queue.get_mut(idx)?;
        debug_assert_eq!(
            entry.commit_ts, commit_ts,
            "publication queue lost commit-ts contiguity"
        );
        (entry.commit_ts == commit_ts).then_some(entry)
    }

    /// Pops the contiguous prefix of finished commits off the publication
    /// queue and advances the visible timestamp to the newest published
    /// one. Withdrawn commits are skipped without becoming visible.
    fn advance_watermark(&self, queue: &mut MutexGuard<'_, VecDeque<PendingPublication>>) {
        let mut newest_published = None;
        while let Some(front) = queue.front() {
            if front.withdrawn {
                queue.pop_front();
            } else if front.done {
                newest_published = Some(front.commit_ts);
                queue.pop_front();
            } else {
                break;
            }
        }
        if let Some(ts) = newest_published {
            // Monotone by construction: queue order is commit-ts order.
            self.visible_ts.store(ts.raw(), Ordering::Release);
        }
        // Wake publication waiters and checkpoint settle waits on any
        // change.
        self.publish_cvar.notify_all();
    }

    /// Blocks until every commit sequenced at or below `ts` has left the
    /// publication queue — published (store flush-through complete) or
    /// withdrawn. This is the fuzzy checkpoint's settle point: unlike the
    /// old full drain it waits only for a *prefix* of the in-flight
    /// window, so stages A–C keep admitting and committing while the
    /// checkpoint waits. Terminates because the queue is contiguous in
    /// commit-ts order and every registered commit eventually publishes
    /// or withdraws.
    pub(crate) fn wait_published_upto(&self, ts: Timestamp) {
        let mut queue = self.publish.lock();
        while queue.front().is_some_and(|front| front.commit_ts <= ts) {
            self.publish_cvar.wait(&mut queue);
        }
    }
}

/// Error reported to group-commit followers when their batch's sync
/// failed. The original `io::Error` cannot be cloned across waiters, so
/// they share its rendered form.
fn group_sync_error(reason: &str) -> DbError {
    DbError::Wal(WalError::io(
        "group commit sync failed",
        std::io::Error::other(reason.to_string()),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn pipeline() -> CommitPipeline {
        CommitPipeline::new(8, Duration::ZERO, 0, 4)
    }

    #[test]
    fn watermark_advances_only_through_contiguous_prefix() {
        let p = pipeline();
        p.register(Timestamp(1), &[]);
        p.register(Timestamp(2), &[]);
        p.register(Timestamp(3), &[]);
        // Finishing out of order publishes nothing until the prefix closes.
        let p = Arc::new(p);
        let p3 = Arc::clone(&p);
        let t3 = std::thread::spawn(move || p3.publish(Timestamp(3)));
        let p2 = Arc::clone(&p);
        let t2 = std::thread::spawn(move || p2.publish(Timestamp(2)));
        // Give the out-of-order publishers a moment to park; commits 2 and
        // 3 must stay invisible while 1 is unfinished.
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(p.visible_timestamp(), Timestamp(0));
        p.publish(Timestamp(1));
        t2.join().unwrap();
        t3.join().unwrap();
        assert_eq!(p.visible_timestamp(), Timestamp(3));
    }

    #[test]
    fn withdrawn_commits_are_skipped_without_becoming_visible() {
        let p = pipeline();
        p.register(Timestamp(1), &[]);
        p.register(Timestamp(2), &[]);
        p.withdraw(Timestamp(1));
        assert_eq!(
            p.visible_timestamp(),
            Timestamp(0),
            "a withdrawn commit never publishes"
        );
        p.publish(Timestamp(2));
        assert_eq!(p.visible_timestamp(), Timestamp(2));
    }

    #[test]
    fn pending_keys_cover_the_install_window() {
        let p = pipeline();
        let key = LockKey::node(7);
        let other = LockKey::node(8);
        assert_eq!(p.pending_for(&[key]), vec![None]);
        p.register(Timestamp(5), &[key]);
        assert_eq!(p.pending_for(&[key, other]), vec![Some(Timestamp(5)), None]);
        p.clear_pending(&[key]);
        assert_eq!(p.pending_for(&[key]), vec![None]);
        p.publish(Timestamp(5));
    }

    #[test]
    fn wait_published_upto_waits_only_for_its_prefix() {
        let p = Arc::new(pipeline());
        p.register(Timestamp(1), &[]);
        p.register(Timestamp(2), &[]);
        let settled = {
            let p = Arc::clone(&p);
            std::thread::spawn(move || p.wait_published_upto(Timestamp(1)))
        };
        // Commit 2 (beyond the prefix) staying in flight must not hold the
        // settle wait hostage once commit 1 withdraws.
        p.withdraw(Timestamp(1));
        settled.join().unwrap();
        assert_eq!(
            p.visible_timestamp(),
            Timestamp(0),
            "a withdrawn commit satisfies the settle wait without publishing"
        );
        p.publish(Timestamp(2));
        assert_eq!(p.visible_timestamp(), Timestamp(2));
    }

    #[test]
    fn disjoint_footprints_apply_concurrently_overlapping_ones_queue() {
        let p = Arc::new(pipeline());
        let metrics = Arc::new(DbMetrics::new());

        // Disjoint: thread holds shard 0 while we hold shard 1.
        let guard_a = p.store_apply(&[1], &metrics);
        let (p2, m2) = (Arc::clone(&p), Arc::clone(&metrics));
        let t = std::thread::spawn(move || {
            let _guard_b = p2.store_apply(&[0], &m2);
            // Both commits are in flight at this point.
        });
        t.join().unwrap();
        assert!(
            metrics.snapshot().store_apply_concurrency_peak >= 2,
            "disjoint footprints must overlap"
        );
        drop(guard_a);

        // Overlapping: the second acquisition must block until release.
        let before = metrics.snapshot().store_apply_shard_conflicts;
        let guard_a = p.store_apply(&[1, 2], &metrics);
        let blocked = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let t = {
            let (p2, m2) = (Arc::clone(&p), Arc::clone(&metrics));
            let blocked = Arc::clone(&blocked);
            std::thread::spawn(move || {
                let _guard_b = p2.store_apply(&[2, 3], &m2);
                blocked.store(true, std::sync::atomic::Ordering::SeqCst);
            })
        };
        // The thread records its conflict *before* parking on the
        // contended shard, so waiting for the counter is a deterministic
        // "it reached the lock" signal — no sleep-and-hope.
        let deadline = Instant::now() + Duration::from_secs(30);
        while metrics.snapshot().store_apply_shard_conflicts == before {
            assert!(
                Instant::now() < deadline,
                "thread never reached the contended shard"
            );
            std::thread::yield_now();
        }
        assert!(
            !blocked.load(std::sync::atomic::Ordering::SeqCst),
            "overlapping footprints must queue on the shared shard"
        );
        drop(guard_a);
        t.join().unwrap();
        assert!(blocked.load(std::sync::atomic::Ordering::SeqCst));
    }

    #[test]
    fn group_sync_batches_concurrent_commits() {
        use graphsi_storage::test_util::TempDir;
        let dir = TempDir::new("pipeline_group");
        let wal = Arc::new(
            SegmentedWal::open(dir.path().join("wal"), SyncPolicy::OnDemand, 1 << 20).unwrap(),
        );
        let p = Arc::new(CommitPipeline::new(16, Duration::from_millis(5), 0, 4));
        let metrics = Arc::new(DbMetrics::new());
        let mut handles = Vec::new();
        for t in 0..4u8 {
            let wal = Arc::clone(&wal);
            let p = Arc::clone(&p);
            let metrics = Arc::clone(&metrics);
            handles.push(std::thread::spawn(move || {
                for i in 0..25u8 {
                    let lsn = {
                        let _seq = p.sequence();
                        wal.append(&[t, i]).unwrap()
                    };
                    p.wait_durable(&wal, lsn, &metrics).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = metrics.snapshot();
        let data_entries = wal
            .scan()
            .unwrap()
            .entries
            .iter()
            .filter(|e| !graphsi_wal::is_bookkeeping(e))
            .count();
        assert_eq!(data_entries, 100);
        assert!(s.wal_syncs >= 1);
        assert!(
            s.wal_syncs < 100,
            "100 concurrent commits must share syncs, got {}",
            s.wal_syncs
        );
        assert_eq!(s.wal_syncs, s.group_commit_batches);
        assert!(s.group_commit_batch_size_max >= 2);
    }
}
