//! The staged commit pipeline: WAL group commit with strictly in-order
//! snapshot publication.
//!
//! The paper's durable-commit protocol (WAL record → version install →
//! flush-through of the newest committed version → snapshot visibility)
//! used to run as one monolithic critical section, so commit throughput
//! was flat no matter how many writer threads were committing. The
//! pipeline splits it into three stages that overlap across threads:
//!
//! * **Stage A — sequencing** ([`CommitPipeline::sequence`]): a short
//!   lock under which a committer validates (first-committer-wins),
//!   draws its commit timestamp and appends its record to the WAL, so
//!   records land in the log in commit-timestamp order. The committer
//!   also registers itself with the publication queue before leaving the
//!   lock, fixing its position in the publication order.
//! * **Stage B — group durability** ([`CommitPipeline::wait_durable`]):
//!   concurrent committers park on a leader/follower batcher; one leader
//!   issues a single [`Wal::sync_appended`] covering every record
//!   appended so far, amortising the `fsync` across the whole batch.
//!   [`DbConfig::group_commit_max_batch`] and
//!   [`DbConfig::group_commit_max_delay`] bound how long a leader waits
//!   for more committers to join.
//! * **Stage C — installation and publication**: after durability each
//!   committer installs its versions, applies its record to the store
//!   (under the narrow [`CommitPipeline::store_apply`] lock — see
//!   ROADMAP for the per-shard follow-on) and updates the indexes
//!   concurrently with other committers; [`CommitPipeline::publish`]
//!   then advances the visible timestamp as a low-water mark, strictly
//!   in commit-timestamp order, so no snapshot ever observes commit
//!   `N+1` without commit `N` even though post-sync work overlaps.
//!
//! Because versions are installed *after* the sequencing lock is
//! released, first-committer-wins validation consults the pipeline's
//! pending-commit table ([`CommitPipeline::pending_for`]) in
//! addition to the version cache: a commit that has drawn its timestamp
//! but not yet installed its versions is visible to validators through
//! that table, and is removed from it only once the cache can answer for
//! it.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex, MutexGuard};

use graphsi_txn::{LockKey, Timestamp};
use graphsi_wal::{SyncPolicy, Wal, WalError};

use crate::error::{DbError, Result};
use crate::metrics::DbMetrics;

/// Stage-B state of the leader/follower group-sync batcher.
struct GroupState {
    /// Highest WAL LSN known durable.
    durable_lsn: u64,
    /// A leader is currently syncing (or gathering its batch).
    syncing: bool,
    /// Committers currently parked on the batcher (including the leader).
    waiters: usize,
    /// A sync failed for all LSNs at or below `.0`; waiters covered by it
    /// abort with `.1` instead of retrying a log the kernel already
    /// refused to flush.
    failed: Option<(u64, String)>,
}

/// One commit registered for publication (stage C).
struct PendingPublication {
    commit_ts: Timestamp,
    /// Versions installed, store applied, indexes updated — the visible
    /// watermark may advance past this commit.
    done: bool,
    /// The commit aborted after sequencing (sync or store-apply failure);
    /// the watermark skips it.
    withdrawn: bool,
}

/// The shared commit-pipeline state of one open database.
pub(crate) struct CommitPipeline {
    /// Stage A: serialises validation, timestamp assignment and WAL append.
    seq_lock: Mutex<()>,
    group: Mutex<GroupState>,
    group_cvar: Condvar,
    publish: Mutex<VecDeque<PendingPublication>>,
    publish_cvar: Condvar,
    /// Write-set keys of commits between sequencing and version install,
    /// with their commit timestamps, for first-committer-wins validation.
    pending_keys: Mutex<HashMap<LockKey, Timestamp>>,
    /// Serialises the flush-through of commit records to the persistent
    /// store. Narrow by design: the store's relationship-chain splices are
    /// multi-record read-modify-write sequences, and under
    /// first-committer-wins two pipelined commits may touch the same
    /// node's chain (locks are advisory there). Sharding this lock is the
    /// ROADMAP's next step.
    store_apply_lock: Mutex<()>,
    /// The newest commit timestamp whose effects are fully installed and
    /// published. New transactions snapshot at this value.
    visible_ts: AtomicU64,
    max_batch: usize,
    max_delay: Duration,
}

impl CommitPipeline {
    /// Creates the pipeline. `durable_lsn` seeds the batcher's durable
    /// watermark — on open every LSN already in the log is durable (it was
    /// read back from disk), so the first post-recovery sync must not
    /// count replayed records as part of its batch.
    pub(crate) fn new(max_batch: usize, max_delay: Duration, durable_lsn: u64) -> Self {
        CommitPipeline {
            seq_lock: Mutex::new(()),
            group: Mutex::new(GroupState {
                durable_lsn,
                syncing: false,
                waiters: 0,
                failed: None,
            }),
            group_cvar: Condvar::new(),
            publish: Mutex::new(VecDeque::new()),
            publish_cvar: Condvar::new(),
            pending_keys: Mutex::new(HashMap::new()),
            store_apply_lock: Mutex::new(()),
            visible_ts: AtomicU64::new(0),
            max_batch: max_batch.max(1),
            max_delay,
        }
    }

    // ------------------------------------------------------------------
    // Visible timestamp
    // ------------------------------------------------------------------

    /// The newest published (fully installed) commit timestamp.
    pub(crate) fn visible_timestamp(&self) -> Timestamp {
        Timestamp(self.visible_ts.load(Ordering::Acquire))
    }

    /// Sets the visible timestamp directly; recovery only (no commits are
    /// in flight while the database is opening).
    pub(crate) fn set_visible_timestamp(&self, ts: Timestamp) {
        self.visible_ts.store(ts.raw(), Ordering::Release);
    }

    // ------------------------------------------------------------------
    // Stage A — sequencing
    // ------------------------------------------------------------------

    /// Enters the sequencing critical section. While the guard is held the
    /// caller validates, draws its commit timestamp, appends to the WAL
    /// and calls [`CommitPipeline::register`]; the section must stay
    /// short — no fsync, no store writes.
    pub(crate) fn sequence(&self) -> MutexGuard<'_, ()> {
        self.seq_lock.lock()
    }

    /// The pending (sequenced but not yet installed) commit timestamps for
    /// a batch of keys, probed under one table lock. Must be consulted
    /// *before* the version cache: a pending commit leaves this table only
    /// after its versions are installed, so checking in that order can
    /// never miss it.
    pub(crate) fn pending_for(&self, keys: &[LockKey]) -> Vec<Option<Timestamp>> {
        let pending = self.pending_keys.lock();
        keys.iter().map(|key| pending.get(key).copied()).collect()
    }

    /// Registers a sequenced commit for in-order publication and makes its
    /// write-set keys visible to validators. Must be called while the
    /// [`CommitPipeline::sequence`] guard is held so queue order equals
    /// commit-timestamp order.
    pub(crate) fn register(&self, commit_ts: Timestamp, keys: &[LockKey]) {
        {
            let mut pending = self.pending_keys.lock();
            for &key in keys {
                pending.insert(key, commit_ts);
            }
        }
        self.publish.lock().push_back(PendingPublication {
            commit_ts,
            done: false,
            withdrawn: false,
        });
    }

    // ------------------------------------------------------------------
    // Stage B — group durability
    // ------------------------------------------------------------------

    /// Blocks until the WAL entry `lsn` is durable, joining (or leading) a
    /// group-commit batch. Exactly one parked committer acts as leader: it
    /// optionally waits up to the configured delay for more committers,
    /// then issues a single sync covering every record appended so far.
    pub(crate) fn wait_durable(&self, wal: &Wal, lsn: u64, metrics: &DbMetrics) -> Result<()> {
        if wal.sync_policy() == SyncPolicy::Always {
            // The append already synced itself: a degenerate batch of one.
            metrics.record_group_sync(1);
            return Ok(());
        }
        let mut state = self.group.lock();
        state.waiters += 1;
        // A joiner may be what a gathering leader is waiting for.
        self.group_cvar.notify_all();
        loop {
            // Durability first: a record made durable by an *earlier*
            // successful sync is committed no matter what happened to
            // later batches, so it must never see their failure marker.
            if state.durable_lsn >= lsn {
                state.waiters -= 1;
                return Ok(());
            }
            if let Some((failed_upto, reason)) = &state.failed {
                if lsn <= *failed_upto {
                    let err = group_sync_error(reason);
                    state.waiters -= 1;
                    return Err(err);
                }
            }
            if !state.syncing {
                // Become the leader: gather a batch, sync once, publish
                // the new durable watermark to every follower.
                state.syncing = true;
                if !self.max_delay.is_zero() {
                    let deadline = Instant::now() + self.max_delay;
                    while state.waiters < self.max_batch {
                        if self.group_cvar.wait_until(&mut state, deadline).timed_out() {
                            break;
                        }
                    }
                }
                let previous_durable = state.durable_lsn;
                // Bound a possible failure to records appended *before*
                // the attempt: anything appended during the failing fsync
                // was never part of it and deserves its own sync attempt.
                let attempt_upto = wal.last_appended_lsn();
                // The fsync runs without the batcher lock so followers of
                // the *next* batch can keep appending and parking.
                drop(state);
                let result = wal.sync_appended();
                state = self.group.lock();
                state.syncing = false;
                match result {
                    Ok(durable) => {
                        if durable > state.durable_lsn {
                            // Every LSN is one commit record, so the LSN
                            // span is the number of commits this one fsync
                            // made durable.
                            metrics.record_group_sync(durable - previous_durable);
                            state.durable_lsn = durable;
                        }
                        state.failed = None;
                    }
                    Err(e) => {
                        state.failed = Some((attempt_upto, e.to_string()));
                    }
                }
                self.group_cvar.notify_all();
                // Re-check from the top: our own LSN is covered on
                // success, or the failure branch picks up the error.
            } else {
                self.group_cvar.wait(&mut state);
            }
        }
    }

    // ------------------------------------------------------------------
    // Stage C — installation and publication
    // ------------------------------------------------------------------

    /// Removes a commit's keys from the pending-validation table. Call
    /// once its versions are installed in the cache (the cache answers
    /// validators from then on), or when the commit aborts.
    pub(crate) fn clear_pending(&self, keys: &[LockKey]) {
        let mut pending = self.pending_keys.lock();
        for key in keys {
            pending.remove(key);
        }
    }

    /// Serialises the flush-through of commit records to the persistent
    /// store (stage C's narrow critical section).
    pub(crate) fn store_apply(&self) -> MutexGuard<'_, ()> {
        self.store_apply_lock.lock()
    }

    /// Marks a registered commit as fully installed and blocks until the
    /// visible timestamp has advanced to (at least) its commit timestamp —
    /// i.e. until every earlier commit has published too. This is the
    /// low-water mark that keeps publication gap-free in commit-ts order.
    pub(crate) fn publish(&self, commit_ts: Timestamp) {
        let mut queue = self.publish.lock();
        if let Some(entry) = queue.iter_mut().find(|e| e.commit_ts == commit_ts) {
            entry.done = true;
        }
        self.advance_watermark(&mut queue);
        while self.visible_ts.load(Ordering::Acquire) < commit_ts.raw() {
            self.publish_cvar.wait(&mut queue);
        }
    }

    /// Withdraws a registered commit that aborted after sequencing (failed
    /// sync or store apply): the publication watermark skips it so later
    /// commits are not wedged behind a commit that will never publish.
    pub(crate) fn withdraw(&self, commit_ts: Timestamp) {
        let mut queue = self.publish.lock();
        if let Some(entry) = queue.iter_mut().find(|e| e.commit_ts == commit_ts) {
            entry.withdrawn = true;
        }
        self.advance_watermark(&mut queue);
    }

    /// Pops the contiguous prefix of finished commits off the publication
    /// queue and advances the visible timestamp to the newest published
    /// one. Withdrawn commits are skipped without becoming visible.
    fn advance_watermark(&self, queue: &mut MutexGuard<'_, VecDeque<PendingPublication>>) {
        let mut newest_published = None;
        while let Some(front) = queue.front() {
            if front.withdrawn {
                queue.pop_front();
            } else if front.done {
                newest_published = Some(front.commit_ts);
                queue.pop_front();
            } else {
                break;
            }
        }
        if let Some(ts) = newest_published {
            // Monotone by construction: queue order is commit-ts order.
            self.visible_ts.store(ts.raw(), Ordering::Release);
        }
        // Wake publication waiters and checkpoint drains on any change.
        self.publish_cvar.notify_all();
    }

    /// Blocks until no commit is in flight between sequencing and
    /// publication. The caller must hold the [`CommitPipeline::sequence`]
    /// guard (blocking new entrants), so on return the WAL and the store
    /// are mutually consistent — the checkpoint's precondition.
    pub(crate) fn wait_drained(&self) {
        let mut queue = self.publish.lock();
        while !queue.is_empty() {
            self.publish_cvar.wait(&mut queue);
        }
    }
}

/// Error reported to group-commit followers when their batch's sync
/// failed. The original `io::Error` cannot be cloned across waiters, so
/// they share its rendered form.
fn group_sync_error(reason: &str) -> DbError {
    DbError::Wal(WalError::io(
        "group commit sync failed",
        std::io::Error::other(reason.to_string()),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn pipeline() -> CommitPipeline {
        CommitPipeline::new(8, Duration::ZERO, 0)
    }

    #[test]
    fn watermark_advances_only_through_contiguous_prefix() {
        let p = pipeline();
        p.register(Timestamp(1), &[]);
        p.register(Timestamp(2), &[]);
        p.register(Timestamp(3), &[]);
        // Finishing out of order publishes nothing until the prefix closes.
        let p = Arc::new(p);
        let p3 = Arc::clone(&p);
        let t3 = std::thread::spawn(move || p3.publish(Timestamp(3)));
        let p2 = Arc::clone(&p);
        let t2 = std::thread::spawn(move || p2.publish(Timestamp(2)));
        // Give the out-of-order publishers a moment to park; commits 2 and
        // 3 must stay invisible while 1 is unfinished.
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(p.visible_timestamp(), Timestamp(0));
        p.publish(Timestamp(1));
        t2.join().unwrap();
        t3.join().unwrap();
        assert_eq!(p.visible_timestamp(), Timestamp(3));
    }

    #[test]
    fn withdrawn_commits_are_skipped_without_becoming_visible() {
        let p = pipeline();
        p.register(Timestamp(1), &[]);
        p.register(Timestamp(2), &[]);
        p.withdraw(Timestamp(1));
        assert_eq!(
            p.visible_timestamp(),
            Timestamp(0),
            "a withdrawn commit never publishes"
        );
        p.publish(Timestamp(2));
        assert_eq!(p.visible_timestamp(), Timestamp(2));
    }

    #[test]
    fn pending_keys_cover_the_install_window() {
        let p = pipeline();
        let key = LockKey::node(7);
        let other = LockKey::node(8);
        assert_eq!(p.pending_for(&[key]), vec![None]);
        p.register(Timestamp(5), &[key]);
        assert_eq!(p.pending_for(&[key, other]), vec![Some(Timestamp(5)), None]);
        p.clear_pending(&[key]);
        assert_eq!(p.pending_for(&[key]), vec![None]);
        p.publish(Timestamp(5));
    }

    #[test]
    fn wait_drained_returns_once_queue_empties() {
        let p = Arc::new(pipeline());
        p.register(Timestamp(1), &[]);
        let drained = {
            let p = Arc::clone(&p);
            std::thread::spawn(move || {
                let _seq = p.sequence();
                p.wait_drained();
            })
        };
        p.publish(Timestamp(1));
        drained.join().unwrap();
        assert_eq!(p.visible_timestamp(), Timestamp(1));
    }

    #[test]
    fn group_sync_batches_concurrent_commits() {
        use graphsi_storage::test_util::TempDir;
        let dir = TempDir::new("pipeline_group");
        let wal = Arc::new(Wal::open(dir.path().join("wal.log"), SyncPolicy::OnDemand).unwrap());
        let p = Arc::new(CommitPipeline::new(16, Duration::from_millis(5), 0));
        let metrics = Arc::new(DbMetrics::new());
        let mut handles = Vec::new();
        for t in 0..4u8 {
            let wal = Arc::clone(&wal);
            let p = Arc::clone(&p);
            let metrics = Arc::clone(&metrics);
            handles.push(std::thread::spawn(move || {
                for i in 0..25u8 {
                    let lsn = {
                        let _seq = p.sequence();
                        wal.append(&[t, i]).unwrap()
                    };
                    p.wait_durable(&wal, lsn, &metrics).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = metrics.snapshot();
        assert_eq!(wal.scan().unwrap().entries.len(), 100);
        assert!(s.wal_syncs >= 1);
        assert!(
            s.wal_syncs < 100,
            "100 concurrent commits must share syncs, got {}",
            s.wal_syncs
        );
        assert_eq!(s.wal_syncs, s.group_commit_batches);
        assert!(s.group_commit_batch_size_max >= 2);
    }
}
