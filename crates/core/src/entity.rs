//! Entity state as kept in the versioned object cache, and the public
//! node/relationship views handed to API users.
//!
//! The cache stores token-based, immutable snapshots ([`NodeData`],
//! [`RelationshipData`]) wrapped in `Arc` so that many transactions can
//! share one version. The public [`Node`] / [`Relationship`] views resolve
//! tokens back to names for ergonomic use in applications, examples and
//! experiments.

use std::collections::BTreeMap;

use graphsi_storage::{
    LabelToken, NodeId, PropertyKeyToken, PropertyValue, RelTypeToken, RelationshipId,
};

/// The cached state of one node version.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct NodeData {
    /// Label tokens attached to the node.
    pub labels: Vec<LabelToken>,
    /// Properties of the node, keyed by property key token.
    pub properties: BTreeMap<PropertyKeyToken, PropertyValue>,
}

impl NodeData {
    /// Creates node data from labels and properties.
    pub fn new(
        labels: Vec<LabelToken>,
        properties: BTreeMap<PropertyKeyToken, PropertyValue>,
    ) -> Self {
        NodeData { labels, properties }
    }

    /// Returns `true` if the node carries `label`.
    pub fn has_label(&self, label: LabelToken) -> bool {
        self.labels.contains(&label)
    }

    /// Returns the value of `key`, if present.
    pub fn property(&self, key: PropertyKeyToken) -> Option<&PropertyValue> {
        self.properties.get(&key)
    }
}

/// The cached state of one relationship version.
#[derive(Clone, Debug, PartialEq)]
pub struct RelationshipData {
    /// Source node.
    pub source: NodeId,
    /// Target node.
    pub target: NodeId,
    /// Relationship type token.
    pub rel_type: RelTypeToken,
    /// Properties of the relationship, keyed by property key token.
    pub properties: BTreeMap<PropertyKeyToken, PropertyValue>,
}

impl RelationshipData {
    /// Creates relationship data.
    pub fn new(
        source: NodeId,
        target: NodeId,
        rel_type: RelTypeToken,
        properties: BTreeMap<PropertyKeyToken, PropertyValue>,
    ) -> Self {
        RelationshipData {
            source,
            target,
            rel_type,
            properties,
        }
    }

    /// Returns the node on the other end relative to `node`.
    pub fn other_node(&self, node: NodeId) -> NodeId {
        if self.source == node {
            self.target
        } else {
            self.source
        }
    }

    /// Returns `true` if `node` is one of the endpoints.
    pub fn touches(&self, node: NodeId) -> bool {
        self.source == node || self.target == node
    }

    /// Returns the value of `key`, if present.
    pub fn property(&self, key: PropertyKeyToken) -> Option<&PropertyValue> {
        self.properties.get(&key)
    }
}

/// Direction of relationship expansion relative to a node.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Direction {
    /// Relationships whose source is the node.
    Outgoing,
    /// Relationships whose target is the node.
    Incoming,
    /// Relationships touching the node in either direction.
    #[default]
    Both,
}

impl Direction {
    /// Does a relationship from `source` to `target` match this direction
    /// when expanding from `node`?
    pub fn matches(self, node: NodeId, source: NodeId, target: NodeId) -> bool {
        match self {
            Direction::Outgoing => source == node,
            Direction::Incoming => target == node,
            Direction::Both => source == node || target == node,
        }
    }
}

/// A node as returned by the public API: token names resolved to strings.
#[derive(Clone, Debug, PartialEq)]
pub struct Node {
    /// The node's ID.
    pub id: NodeId,
    /// Label names attached to the node.
    pub labels: Vec<String>,
    /// Properties keyed by name.
    pub properties: BTreeMap<String, PropertyValue>,
}

impl Node {
    /// Returns the value of the property `name`, if present.
    pub fn property(&self, name: &str) -> Option<&PropertyValue> {
        self.properties.get(name)
    }

    /// Returns `true` if the node carries the label `name`.
    pub fn has_label(&self, name: &str) -> bool {
        self.labels.iter().any(|l| l == name)
    }
}

/// A relationship as returned by the public API.
#[derive(Clone, Debug, PartialEq)]
pub struct Relationship {
    /// The relationship's ID.
    pub id: RelationshipId,
    /// Source node.
    pub source: NodeId,
    /// Target node.
    pub target: NodeId,
    /// Relationship type name.
    pub rel_type: String,
    /// Properties keyed by name.
    pub properties: BTreeMap<String, PropertyValue>,
}

impl Relationship {
    /// Returns the value of the property `name`, if present.
    pub fn property(&self, name: &str) -> Option<&PropertyValue> {
        self.properties.get(name)
    }

    /// Returns the node on the other end relative to `node`.
    pub fn other_node(&self, node: NodeId) -> NodeId {
        if self.source == node {
            self.target
        } else {
            self.source
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_data_accessors() {
        let mut props = BTreeMap::new();
        props.insert(PropertyKeyToken(1), PropertyValue::Int(5));
        let data = NodeData::new(vec![LabelToken(2)], props);
        assert!(data.has_label(LabelToken(2)));
        assert!(!data.has_label(LabelToken(3)));
        assert_eq!(
            data.property(PropertyKeyToken(1)),
            Some(&PropertyValue::Int(5))
        );
        assert_eq!(data.property(PropertyKeyToken(9)), None);
    }

    #[test]
    fn relationship_data_endpoints() {
        let data = RelationshipData::new(
            NodeId::new(1),
            NodeId::new(2),
            RelTypeToken(0),
            BTreeMap::new(),
        );
        assert_eq!(data.other_node(NodeId::new(1)), NodeId::new(2));
        assert_eq!(data.other_node(NodeId::new(2)), NodeId::new(1));
        assert!(data.touches(NodeId::new(1)));
        assert!(!data.touches(NodeId::new(3)));
    }

    #[test]
    fn direction_matching() {
        let (a, b) = (NodeId::new(1), NodeId::new(2));
        assert!(Direction::Outgoing.matches(a, a, b));
        assert!(!Direction::Outgoing.matches(b, a, b));
        assert!(Direction::Incoming.matches(b, a, b));
        assert!(Direction::Both.matches(a, a, b));
        assert!(Direction::Both.matches(b, a, b));
        assert!(!Direction::Both.matches(NodeId::new(9), a, b));
    }

    #[test]
    fn public_views() {
        let node = Node {
            id: NodeId::new(1),
            labels: vec!["Person".into()],
            properties: BTreeMap::from([("age".to_owned(), PropertyValue::Int(30))]),
        };
        assert!(node.has_label("Person"));
        assert!(!node.has_label("Robot"));
        assert_eq!(node.property("age"), Some(&PropertyValue::Int(30)));

        let rel = Relationship {
            id: RelationshipId::new(1),
            source: NodeId::new(1),
            target: NodeId::new(2),
            rel_type: "KNOWS".into(),
            properties: BTreeMap::new(),
        };
        assert_eq!(rel.other_node(NodeId::new(2)), NodeId::new(1));
        assert_eq!(rel.property("since"), None);
    }
}
